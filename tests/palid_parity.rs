//! PALID integration: the parallel driver must deliver the sequential
//! driver's quality, invariant to executor count.

use alid::data::metrics::avg_f1;
use alid::data::sift::{sift, SiftConfig};
use alid::prelude::*;

fn workload() -> (alid::data::LabeledDataset, AlidParams) {
    let ds = sift(&SiftConfig { words: 5, word_size: 30, noise: 400, seed: 55 });
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    (ds, params)
}

#[test]
fn palid_quality_matches_sequential_alid() {
    let (ds, params) = workload();
    let sequential =
        Peeler::new(&ds.data, params, CostModel::shared()).detect_all().dominant(0.75, 3);
    let parallel =
        palid_detect(&ds.data, &params, &PalidParams::with_executors(2), &CostModel::shared())
            .dominant(0.75, 3);
    let seq_f = avg_f1(&ds.truth, &sequential);
    let par_f = avg_f1(&ds.truth, &parallel);
    assert!(seq_f > 0.9, "sequential AVG-F {seq_f}");
    assert!(par_f > 0.9, "parallel AVG-F {par_f}");
    assert!((seq_f - par_f).abs() < 0.05, "quality diverged: {seq_f} vs {par_f}");
}

#[test]
fn palid_output_invariant_to_executor_count() {
    let (ds, params) = workload();
    let runs: Vec<Clustering> = [1usize, 2, 4]
        .iter()
        .map(|&e| {
            palid_detect(&ds.data, &params, &PalidParams::with_executors(e), &CostModel::shared())
        })
        .collect();
    for other in &runs[1..] {
        assert_eq!(runs[0].clusters.len(), other.clusters.len());
        for (a, b) in runs[0].clusters.iter().zip(&other.clusters) {
            assert_eq!(a.members, b.members);
        }
    }
}

#[test]
fn palid_reducer_produces_disjoint_clusters() {
    let (ds, params) = workload();
    let clustering =
        palid_detect(&ds.data, &params, &PalidParams::with_executors(3), &CostModel::shared());
    let mut seen = vec![false; ds.len()];
    for c in &clustering.clusters {
        for &m in &c.members {
            assert!(!seen[m as usize], "item {m} in two reduced clusters");
            seen[m as usize] = true;
        }
    }
}
