//! Exec-layer parity: every phase that runs on the shared execution
//! layer must produce byte-identical output for every worker count.
//! Parallelism in this workspace buys wall-clock time only — never a
//! different answer.

use alid::affinity::dense::DenseAffinity;
use alid::data::sift::{sift, SiftConfig};
use alid::prelude::*;

fn workload() -> (alid::data::LabeledDataset, AlidParams) {
    let ds = sift(&SiftConfig { words: 4, word_size: 25, noise: 150, seed: 23 });
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    (ds, params)
}

#[test]
fn palid_clustering_is_byte_identical_across_executor_counts() {
    let (ds, params) = workload();
    let one =
        palid_detect(&ds.data, &params, &PalidParams::with_executors(1), &CostModel::shared());
    for executors in [2usize, 4, 8] {
        let many = palid_detect(
            &ds.data,
            &params,
            &PalidParams::with_executors(executors),
            &CostModel::shared(),
        );
        assert_eq!(one.n, many.n);
        assert_eq!(one.clusters.len(), many.clusters.len(), "{executors} executors");
        for (a, b) in one.clusters.iter().zip(&many.clusters) {
            assert_eq!(a.members, b.members, "{executors} executors changed members");
            // Bit-for-bit: the mappers run the identical float program
            // per seed regardless of scheduling.
            let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
            let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(aw, bw, "{executors} executors changed weights");
            assert_eq!(
                a.density.to_bits(),
                b.density.to_bits(),
                "{executors} executors changed density"
            );
        }
    }
}

#[test]
fn dense_affinity_matrix_is_identical_across_policies() {
    let (ds, params) = workload();
    let kernel = params.kernel;
    let serial = DenseAffinity::build(&ds.data, &kernel, CostModel::shared());
    for workers in [1usize, 2, 3, 8] {
        let cost = CostModel::shared();
        let par = DenseAffinity::build_with(
            &ds.data,
            &kernel,
            std::sync::Arc::clone(&cost),
            ExecPolicy::workers(workers),
        );
        for i in 0..ds.data.len() {
            for j in 0..ds.data.len() {
                assert_eq!(
                    serial.get(i, j).to_bits(),
                    par.get(i, j).to_bits(),
                    "cell ({i},{j}) diverged at {workers} workers"
                );
            }
        }
        // Cost accounting is schedule-invariant too.
        let n = ds.data.len() as u64;
        assert_eq!(cost.snapshot().kernel_evals, n * (n - 1) / 2);
    }
}

#[test]
fn speculative_parallel_peeling_matches_sequential_on_sift() {
    let (ds, params) = workload();
    let sequential = Peeler::new(&ds.data, params, CostModel::shared()).detect_all();
    for workers in [2usize, 4] {
        let p = params.with_exec(ExecPolicy::workers(workers));
        let parallel = Peeler::new(&ds.data, p, CostModel::shared()).detect_all();
        assert_eq!(
            sequential.clusters.len(),
            parallel.clusters.len(),
            "{workers} workers changed the cluster count"
        );
        for (a, b) in sequential.clusters.iter().zip(&parallel.clusters) {
            assert_eq!(a.members, b.members, "{workers} workers changed members");
            let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
            let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(aw, bw, "{workers} workers changed weights");
            assert_eq!(a.density.to_bits(), b.density.to_bits());
        }
    }
}

#[test]
fn exec_policy_auto_reports_at_least_one_worker() {
    assert!(ExecPolicy::auto().worker_count() >= 1);
    assert!(ExecPolicy::default().is_sequential());
}
