//! Exec-layer parity: every phase that runs on the shared execution
//! layer must produce byte-identical output for every worker count.
//! Parallelism in this workspace buys wall-clock time only — never a
//! different answer.
//!
//! Each case computes its 1-worker baseline once and sweeps the
//! multi-worker counts `{2, 4, 8}` against it; CI sets
//! `ALID_TEST_WORKERS=<n>` (a count outside that set) to run the whole
//! suite a second time with an extra worker count, so regressions that
//! only bite off the single-CPU path cannot slip in silently.

use alid::affinity::dense::DenseAffinity;
use alid::affinity::sparse::SparseBuilder;
use alid::baselines::spectral::{sc_full_detect_all, sc_nystrom_detect_all, SpectralParams};
use alid::data::sift::{sift, SiftConfig};
use alid::prelude::*;

/// Multi-worker counts every parity case sweeps against its 1-worker
/// baseline: `{2, 4, 8}` plus an optional `ALID_TEST_WORKERS` extra
/// from the environment (1 itself would only compare the baseline with
/// itself, so it is not in the sweep).
fn parity_workers() -> Vec<usize> {
    let mut counts = vec![2usize, 4, 8];
    if let Ok(v) = std::env::var("ALID_TEST_WORKERS") {
        let extra: usize = v.parse().expect("ALID_TEST_WORKERS must be a positive integer");
        assert!(extra >= 1, "ALID_TEST_WORKERS must be at least 1");
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

fn workload() -> (alid::data::LabeledDataset, AlidParams) {
    let ds = sift(&SiftConfig { words: 4, word_size: 25, noise: 150, seed: 23 });
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    (ds, params)
}

#[test]
fn palid_clustering_is_byte_identical_across_executor_counts() {
    let (ds, params) = workload();
    let one =
        palid_detect(&ds.data, &params, &PalidParams::with_executors(1), &CostModel::shared());
    for executors in parity_workers() {
        let many = palid_detect(
            &ds.data,
            &params,
            &PalidParams::with_executors(executors),
            &CostModel::shared(),
        );
        assert_eq!(one.n, many.n);
        assert_eq!(one.clusters.len(), many.clusters.len(), "{executors} executors");
        for (a, b) in one.clusters.iter().zip(&many.clusters) {
            assert_eq!(a.members, b.members, "{executors} executors changed members");
            // Bit-for-bit: the mappers run the identical float program
            // per seed regardless of scheduling.
            let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
            let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(aw, bw, "{executors} executors changed weights");
            assert_eq!(
                a.density.to_bits(),
                b.density.to_bits(),
                "{executors} executors changed density"
            );
        }
    }
}

#[test]
fn dense_affinity_matrix_is_identical_across_policies() {
    let (ds, params) = workload();
    let kernel = params.kernel;
    let serial = DenseAffinity::build(&ds.data, &kernel, CostModel::shared());
    for workers in parity_workers() {
        let cost = CostModel::shared();
        let par = DenseAffinity::build_with(
            &ds.data,
            &kernel,
            std::sync::Arc::clone(&cost),
            ExecPolicy::workers(workers),
        );
        for i in 0..ds.data.len() {
            for j in 0..ds.data.len() {
                assert_eq!(
                    serial.get(i, j).to_bits(),
                    par.get(i, j).to_bits(),
                    "cell ({i},{j}) diverged at {workers} workers"
                );
            }
        }
        // Cost accounting is schedule-invariant too.
        let n = ds.data.len() as u64;
        assert_eq!(cost.snapshot().kernel_evals, n * (n - 1) / 2);
    }
}

#[test]
fn speculative_parallel_peeling_matches_sequential_on_sift() {
    let (ds, params) = workload();
    let sequential = Peeler::new(&ds.data, params, CostModel::shared()).detect_all();
    for workers in parity_workers() {
        let p = params.with_exec(ExecPolicy::workers(workers));
        let parallel = Peeler::new(&ds.data, p, CostModel::shared()).detect_all();
        assert_eq!(
            sequential.clusters.len(),
            parallel.clusters.len(),
            "{workers} workers changed the cluster count"
        );
        for (a, b) in sequential.clusters.iter().zip(&parallel.clusters) {
            assert_eq!(a.members, b.members, "{workers} workers changed members");
            let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
            let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(aw, bw, "{workers} workers changed weights");
            assert_eq!(a.density.to_bits(), b.density.to_bits());
        }
    }
}

/// The conflict-heavy workload shared with `bench_speculation`
/// (`alid_bench::fixtures::pair_chain`): interleaved-id pairs whose
/// read sets cover their id-neighbours while their clusters never do,
/// so any round speculating more than one seed conflicts —
/// speculation's worst case, and exactly where the adaptive width must
/// earn its keep.
fn interleaved_pairs_workload() -> (Dataset, AlidParams) {
    alid_bench::fixtures::pair_chain(12, 0.5)
}

#[test]
fn conflict_heavy_speculation_stays_byte_identical_and_reports_reruns() {
    let (ds, params) = interleaved_pairs_workload();
    let (sequential, seq_stats) =
        Peeler::new(&ds, params, CostModel::shared()).detect_all_with_stats();
    // The fixture really is the pair chain (a detection per pair).
    assert_eq!(sequential.clusters.len(), 12);
    for (b, c) in sequential.clusters.iter().enumerate() {
        assert_eq!(c.members, vec![b as u32, 12 + b as u32], "pair {b}");
    }
    assert!(seq_stats.rounds.is_empty() && seq_stats.wasted() == 0);
    // CI's extra pass also pins the adaptive schedule's *initial*
    // width to `ALID_TEST_WORKERS`, so the third workflow pass (set to
    // 8) exercises adaptation from a start that oversubscribes the
    // runner's cores.
    let mut specs = vec![
        SpeculationParams { adaptive: true, initial_width: 0 },
        SpeculationParams { adaptive: false, initial_width: 0 },
    ];
    if let Ok(v) = std::env::var("ALID_TEST_WORKERS") {
        let extra: usize = v.parse().expect("ALID_TEST_WORKERS must be a positive integer");
        specs.push(SpeculationParams { adaptive: true, initial_width: extra });
    }
    for workers in parity_workers() {
        for &spec in &specs {
            let p = params.with_exec(ExecPolicy::workers(workers)).with_speculation(spec);
            let (parallel, stats) =
                Peeler::new(&ds, p, CostModel::shared()).detect_all_with_stats();
            assert_eq!(
                sequential.clusters.len(),
                parallel.clusters.len(),
                "{workers} workers {spec:?} changed the cluster count"
            );
            for (a, b) in sequential.clusters.iter().zip(&parallel.clusters) {
                assert_eq!(a.members, b.members, "{workers} workers {spec:?}");
                let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
                let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
                assert_eq!(aw, bw, "{workers} workers {spec:?} changed weights");
                assert_eq!(a.density.to_bits(), b.density.to_bits(), "{workers} workers {spec:?}");
            }
            if workers == 1 {
                // `ALID_TEST_WORKERS=1` is a legal env value: a
                // single-worker policy is the sequential pass, which
                // speculates nothing and records no rounds.
                assert!(stats.rounds.is_empty(), "sequential pass recorded rounds: {stats:?}");
                assert_eq!(stats.wasted(), 0);
                continue;
            }
            // The telemetry must expose the conflicts the fixture
            // manufactures: every accepted pair invalidates the next
            // id's read set, so re-runs are guaranteed at any width > 1.
            assert!(stats.rerun > 0, "{workers} workers {spec:?}: no re-runs reported: {stats:?}");
            assert_eq!(
                stats.speculated,
                stats.accepted + stats.absorbed + stats.rerun,
                "{workers} workers {spec:?}: speculation accounting leaks"
            );
            assert_eq!(stats.accepted, 12, "{workers} workers {spec:?}");
            if !spec.adaptive {
                // Fixed-width rounds: every round that speculated more
                // than one seed must have conflicted — except the final
                // round, where the only remaining seeds are the last
                // pair itself (its second seed is absorbed, not
                // re-run).
                let last = stats.rounds.len() - 1;
                for (i, r) in stats.rounds.iter().enumerate() {
                    assert!(
                        i == last || r.speculated == 1 || r.rerun > 0,
                        "{workers} workers: fixed round {i} should conflict: {r:?}"
                    );
                }
                assert!(
                    stats.conflict_rate() > 0.85,
                    "{workers} workers: {}",
                    stats.conflict_rate()
                );
            }
        }
        // The adaptive schedule must waste strictly less work than the
        // fixed full-width schedule on this all-conflict workload (both
        // schedules are deterministic, so this is a stable comparison).
        let run = |adaptive: bool| {
            let p = params
                .with_exec(ExecPolicy::workers(workers))
                .with_speculation(SpeculationParams { adaptive, initial_width: 0 });
            Peeler::new(&ds, p, CostModel::shared()).detect_all_with_stats().1
        };
        if workers > 2 {
            assert!(
                run(true).wasted() < run(false).wasted(),
                "{workers} workers: adaptive width should cut wasted detections"
            );
        }
    }
}

#[test]
fn detect_up_to_is_a_byte_identical_prefix_for_any_policy() {
    let (ds, params) = workload();
    let all = Peeler::new(&ds.data, params, CostModel::shared()).detect_all();
    let cap = (all.clusters.len() / 2).max(1);
    assert!(cap < all.clusters.len(), "workload must have enough clusters to cap");
    let seq = Peeler::new(&ds.data, params, CostModel::shared()).detect_up_to(cap);
    assert_eq!(seq.clusters.len(), cap);
    for (a, b) in all.clusters.iter().zip(&seq.clusters) {
        assert_eq!(a.members, b.members, "sequential cap is not a prefix of the full pass");
    }
    for workers in parity_workers() {
        let p = params.with_exec(ExecPolicy::workers(workers));
        let par = Peeler::new(&ds.data, p, CostModel::shared()).detect_up_to(cap);
        assert_eq!(par.clusters.len(), cap, "{workers} workers");
        for (a, b) in seq.clusters.iter().zip(&par.clusters) {
            assert_eq!(a.members, b.members, "{workers} workers changed a capped member set");
            let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
            let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(aw, bw, "{workers} workers changed capped weights");
            assert_eq!(a.density.to_bits(), b.density.to_bits(), "{workers} workers");
        }
    }
}

#[test]
fn exec_policy_auto_reports_at_least_one_worker() {
    assert!(ExecPolicy::auto().worker_count() >= 1);
    assert!(ExecPolicy::default().is_sequential());
    assert_eq!(ExecPolicy::auto_or(Some(3)).worker_count(), 3);
    assert_eq!(ExecPolicy::auto_or(None), ExecPolicy::auto());
}

#[test]
fn sparse_build_is_byte_identical_across_worker_counts() {
    let (ds, params) = workload();
    let kernel = params.kernel;
    let make_lists = || {
        let index = LshIndex::build(&ds.data, params.lsh, &CostModel::shared());
        index.neighbor_lists(&ds.data)
    };
    let lists = make_lists();
    let build = |workers: usize| {
        let mut b = SparseBuilder::new(ds.data.len());
        b.add_neighbor_lists(&lists);
        let cost = CostModel::shared();
        let m = b.build_with(
            &ds.data,
            &kernel,
            std::sync::Arc::clone(&cost),
            ExecPolicy::workers(workers),
        );
        (m, cost)
    };
    let (serial, serial_cost) = build(1);
    for workers in parity_workers() {
        let (par, cost) = build(workers);
        assert_eq!(par.nnz(), serial.nnz(), "{workers} workers changed nnz");
        for i in 0..ds.data.len() {
            let (sc, sv) = serial.row(i);
            let (pc, pv) = par.row(i);
            assert_eq!(sc, pc, "row {i} columns diverged at {workers} workers");
            let sv: Vec<u64> = sv.iter().map(|v| v.to_bits()).collect();
            let pv: Vec<u64> = pv.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sv, pv, "row {i} values diverged at {workers} workers");
        }
        assert_eq!(
            cost.snapshot().kernel_evals,
            serial_cost.snapshot().kernel_evals,
            "{workers} workers changed the kernel-eval count"
        );
    }
}

#[test]
fn lsh_and_simhash_builds_are_byte_identical_across_worker_counts() {
    let (ds, params) = workload();
    let serial_lsh = LshIndex::build(&ds.data, params.lsh, &CostModel::shared());
    let serial_sim = SimHashIndex::build(&ds.data, SimHashParams::default(), &CostModel::shared());
    for workers in parity_workers() {
        let exec = ExecPolicy::workers(workers);
        let cost = CostModel::shared();
        let lsh = LshIndex::build_with(&ds.data, params.lsh, &cost, exec);
        assert_eq!(lsh.bucket_count(), serial_lsh.bucket_count(), "{workers} workers");
        let sim = SimHashIndex::build_with(&ds.data, SimHashParams::default(), &cost, exec);
        for probe in 0..ds.data.len() {
            assert_eq!(
                lsh.query(ds.data.get(probe)),
                serial_lsh.query(ds.data.get(probe)),
                "LSH query {probe} diverged at {workers} workers"
            );
            assert_eq!(
                sim.query(ds.data.get(probe)),
                serial_sim.query(ds.data.get(probe)),
                "SimHash query {probe} diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn spectral_baselines_are_byte_identical_across_worker_counts() {
    let (ds, params) = workload();
    let kernel = params.kernel;
    let mut base = SpectralParams::with_k(5);
    base.landmarks = 40;
    let full_seq = sc_full_detect_all(&ds.data, &kernel, &base, &CostModel::shared());
    let nys_seq = sc_nystrom_detect_all(&ds.data, &kernel, &base, &CostModel::shared());
    for workers in parity_workers() {
        let mut p = base;
        p.exec = ExecPolicy::workers(workers);
        let full = sc_full_detect_all(&ds.data, &kernel, &p, &CostModel::shared());
        let nys = sc_nystrom_detect_all(&ds.data, &kernel, &p, &CostModel::shared());
        assert_eq!(full.labels(), full_seq.labels(), "SC-FL diverged at {workers} workers");
        assert_eq!(nys.labels(), nys_seq.labels(), "SC-NYS diverged at {workers} workers");
    }
}

/// Replays the same arrival sequence through `StreamingAlid` under a
/// given policy; the mid-stream and final states must be worker-count
/// invariant because every sweep rides the speculative peel pass.
fn run_stream(params: AlidParams, workers: usize) -> StreamingAlid {
    let p = params.with_exec(ExecPolicy::workers(workers));
    let (ds, _) = workload();
    let mut s = StreamingAlid::new(ds.data.dim(), p, 16, CostModel::shared());
    for i in 0..ds.data.len().min(220) {
        s.push(ds.data.get(i));
    }
    s.sweep();
    s
}

#[test]
fn streaming_sweep_is_byte_identical_across_worker_counts() {
    let (_, params) = workload();
    let seq = run_stream(params, 1);
    for workers in parity_workers() {
        let par = run_stream(params, workers);
        assert_eq!(par.pending(), seq.pending(), "{workers} workers changed the buffer");
        assert_eq!(par.assignments(), seq.assignments(), "{workers} workers");
        assert_eq!(par.clusters().len(), seq.clusters().len(), "{workers} workers");
        for (a, b) in seq.clusters().iter().zip(par.clusters()) {
            assert_eq!(a.members, b.members, "{workers} workers changed members");
            let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
            let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(aw, bw, "{workers} workers changed weights");
            assert_eq!(a.density.to_bits(), b.density.to_bits(), "{workers} workers");
        }
    }
}

#[test]
fn streaming_aux_bytes_match_recomputed_ground_truth_after_1k_inserts() {
    let (ds, mut params) = workload();
    params.lsh.tables = 6;
    params.lsh.projections = 4;
    let cost = CostModel::shared();
    let mut s = StreamingAlid::new(ds.data.dim(), params, 64, std::sync::Arc::clone(&cost));
    let n = 1000;
    for i in 0..n {
        s.push(ds.data.get(i % ds.data.len()));
    }
    s.sweep();
    s.sweep();
    // Ground truth for the Section 4.3 hash-table memory: the index
    // started empty (0 bytes at build) and each of the n ingested items
    // holds one u32 bucket id per table plus one tombstone byte —
    // forever, because tombstoning (sweeps included) never evicts ids
    // from the bucket lists. Sweeps must not drift the counter.
    let per_insert = (params.lsh.tables * 4 + 1) as u64;
    assert_eq!(cost.snapshot().aux_bytes, n as u64 * per_insert);
}
