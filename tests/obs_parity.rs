//! Observability parity: instrumentation is telemetry, never control.
//!
//! The whole `alid-obs` design rests on one invariant — no
//! deterministic code path branches on a metric or a span, so turning
//! tracing on must leave every output byte-for-bit identical at every
//! worker count. This suite proves it end to end: the same workload
//! is clustered with tracing off and with tracing on (spans recording
//! into the ring buffer the whole time), at workers {1, 2, 4, 8}, and
//! the clusterings are compared bit-for-bit.
//!
//! The suite lives in its own test binary because the tracer is
//! process-global: sharing a process with unrelated tests would let
//! their spans interleave with (and obscure) the ones asserted here.

use alid::affinity::clustering::Clustering;
use alid::data::sift::{sift, SiftConfig};
use alid::prelude::*;

fn workload() -> (alid::data::LabeledDataset, AlidParams) {
    let ds = sift(&SiftConfig { words: 4, word_size: 25, noise: 100, seed: 23 });
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    (ds, params)
}

fn detect(ds: &Dataset, params: AlidParams, workers: usize) -> Clustering {
    let p = params.with_exec(ExecPolicy::workers(workers));
    Peeler::new(ds, p, CostModel::shared()).detect_all()
}

fn assert_bit_identical(a: &Clustering, b: &Clustering, tag: &str) {
    assert_eq!(a.n, b.n, "{tag}");
    assert_eq!(a.clusters.len(), b.clusters.len(), "{tag}: cluster count diverged");
    for (x, y) in a.clusters.iter().zip(&b.clusters) {
        assert_eq!(x.members, y.members, "{tag}: members diverged");
        let xw: Vec<u64> = x.weights.iter().map(|w| w.to_bits()).collect();
        let yw: Vec<u64> = y.weights.iter().map(|w| w.to_bits()).collect();
        assert_eq!(xw, yw, "{tag}: weights diverged");
        assert_eq!(x.density.to_bits(), y.density.to_bits(), "{tag}: density diverged");
    }
}

#[test]
fn tracing_on_and_off_are_byte_identical_at_every_worker_count() {
    let (ds, params) = workload();

    // Baselines first, with the tracer off.
    assert!(!alid::obs::trace::enabled(), "tracer must start disabled");
    let quiet: Vec<(usize, Clustering)> =
        [1usize, 2, 4, 8].iter().map(|&w| (w, detect(&ds.data, params, w))).collect();

    // Same runs with tracing live; a small ring forces eviction so
    // the overflow path runs inside the measured region too.
    alid::obs::trace::enable(512);
    for (workers, baseline) in &quiet {
        let traced = detect(&ds.data, params, *workers);
        assert_bit_identical(baseline, &traced, &format!("tracing on, {workers} workers"));
    }
    let events = alid::obs::trace::drain();
    assert!(!events.is_empty(), "traced runs must have recorded spans");
    assert!(
        events.iter().any(|e| e.name == "peel.round" || e.name == "exec.phase"),
        "expected peel/exec spans, got: {:?}",
        events.iter().map(|e| e.name).collect::<Vec<_>>()
    );
    alid::obs::trace::disable();

    // And once more after disabling: state left behind by the traced
    // runs must not leak into later results either.
    let after = detect(&ds.data, params, 4);
    let baseline = &quiet.iter().find(|(w, _)| *w == 4).expect("4-worker baseline").1;
    assert_bit_identical(baseline, &after, "tracing re-disabled, 4 workers");
}
