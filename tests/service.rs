//! Integration tests for the sharded serving layer: determinism under
//! re-runs and worker counts, snapshot recovery, cross-shard top-k
//! agreement, and the HTTP front end over loopback.
//!
//! Style follows `tests/exec_parity.rs`: every parity case computes a
//! baseline and compares bit-for-bit (`f64::to_bits` on every float),
//! sweeping worker counts `{1, 2, 4}` plus an optional
//! `ALID_TEST_WORKERS` extra from the environment.

use std::sync::Arc;
use std::time::Duration;

use alid::prelude::*;
use alid::service::http::{self, Client, HttpOptions};
use alid::service::{restore, snapshot_bytes};
use serde::Json;

fn service_workers() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    if let Ok(v) = std::env::var("ALID_TEST_WORKERS") {
        let extra: usize = v.parse().expect("ALID_TEST_WORKERS must be a positive integer");
        assert!(extra >= 1, "ALID_TEST_WORKERS must be at least 1");
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

fn params() -> AlidParams {
    let kernel = LaplacianKernel::l2(1.0);
    let mut p = AlidParams::new(kernel);
    p.first_roi_radius = kernel.distance_at(0.5);
    p.density_threshold = 0.7;
    p.min_cluster_size = 3;
    p.lsh.seed = 5;
    p
}

/// A mixed stream over four well-separated blobs (offset from the
/// origin so routing keeps each blob on one shard) plus scattered
/// noise, in a deterministic interleaved arrival order. Each blob
/// cycles through three positions spread by its own extent, so blobs
/// are tight enough that every member is infective against any
/// sub-blob (no schedule-dependent fragmentation) while the four
/// densities stay far apart — rank comparisons across shard counts
/// never sit on a float knife-edge.
fn stream_items(n: usize) -> Vec<Vec<f64>> {
    let centers = [[60.0, 0.0], [0.0, 60.0], [-60.0, 10.0], [45.0, -45.0]];
    (0..n)
        .map(|i| match i % 6 {
            5 => vec![i as f64 * 37.0 - 900.0, i as f64 * 53.0 + 400.0], // noise
            c => {
                let center = centers[c % 4];
                let extent = 0.02 + 0.02 * (c % 4) as f64;
                vec![center[0] + (i % 3) as f64 * extent, center[1] - (i % 3) as f64 * extent]
            }
        })
        .collect()
}

fn build_service(shards: usize, workers: usize) -> Service {
    let exec = ExecPolicy::workers(workers);
    let mut p = params();
    p.exec = exec;
    Service::new(ServiceConfig::new(2, shards, p).with_batch(8).with_exec(exec))
}

fn ingest_all(svc: &Service, items: &[Vec<f64>]) {
    for v in items {
        match svc.ingest(v) {
            Admission::Enqueued { .. } => {}
            Admission::Busy { .. } => panic!("fixture must not hit backpressure"),
        }
        svc.drain();
    }
}

/// Full bit-level comparison of two services' externally observable
/// state: placements (via assignment of every id), per-shard cluster
/// members, weights, densities and buffers.
fn assert_services_identical(a: &Service, b: &Service, tag: &str) {
    assert_eq!(a.len(), b.len(), "{tag}: item counts differ");
    assert_eq!(a.shard_count(), b.shard_count(), "{tag}");
    assert_eq!(a.depths(), b.depths(), "{tag}: shard depths differ");
    for id in 0..a.len() as u64 {
        assert_eq!(a.assignment(id), b.assignment(id), "{tag}: assignment of item {id}");
    }
    let (sa, sb) = (a.summaries(), b.summaries());
    assert_eq!(sa.len(), sb.len(), "{tag}: cluster counts differ");
    for (ca, cb) in sa.iter().zip(&sb) {
        assert_eq!(ca.cluster, cb.cluster, "{tag}");
        assert_eq!(ca.size, cb.size, "{tag}");
        assert_eq!(ca.density.to_bits(), cb.density.to_bits(), "{tag}: density bits");
    }
}

/// (1) Same stream + same shard count ⇒ identical outcome across
/// re-runs and across worker counts.
#[test]
fn same_stream_same_shards_is_reproducible_across_runs_and_workers() {
    let items = stream_items(120);
    for shards in [2usize, 4] {
        let baseline = build_service(shards, 1);
        ingest_all(&baseline, &items);
        // Re-run at the same worker count: byte-identical.
        let rerun = build_service(shards, 1);
        ingest_all(&rerun, &items);
        assert_services_identical(&baseline, &rerun, &format!("rerun, {shards} shards"));
        // Every other worker count: byte-identical too.
        for workers in service_workers() {
            let par = build_service(shards, workers);
            ingest_all(&par, &items);
            assert_services_identical(
                &baseline,
                &par,
                &format!("{workers} workers, {shards} shards"),
            );
        }
    }
}

/// (2) Snapshot mid-stream (queued items included), restore, continue
/// ⇒ bit-for-bit the uninterrupted run.
#[test]
fn snapshot_restore_continue_equals_uninterrupted() {
    let items = stream_items(140);
    let uninterrupted = build_service(3, 1);
    ingest_all(&uninterrupted, &items);

    let first = build_service(3, 1);
    ingest_all(&first, &items[..80]);
    // Leave a ragged edge: some items admitted but not yet applied.
    for v in &items[80..90] {
        let _ = first.ingest(v);
    }
    let bytes = snapshot_bytes(&first);
    drop(first);
    for workers in service_workers() {
        let resumed = restore(&bytes, ExecPolicy::workers(workers)).expect("restore");
        resumed.drain();
        ingest_all(&resumed, &items[90..]);
        assert_services_identical(
            &uninterrupted,
            &resumed,
            &format!("restored continuation at {workers} workers"),
        );
    }
}

/// (2b) Snapshot + journal replay ≡ uninterrupted run, bit for bit,
/// at workers {1, 4, 8}. The journaled run is "killed" after its last
/// ingest (dropped without a final snapshot), recovered from the
/// mid-stream snapshot plus the journal tail, and its snapshot bytes
/// must equal those of a run that never stopped. The comparator is
/// journaled too (same mutation history ⇒ same logical journal
/// position), so the equality covers the full snapshot including the
/// position stamp.
#[test]
fn snapshot_plus_journal_recovery_is_bit_identical() {
    use alid::service::{
        recover_and_open, restore_with_meta, snapshot_bytes_with_meta, JournalConfig,
    };
    let items = stream_items(140);
    let mut dirs = Vec::new();
    let tmp = |tag: &str| {
        let d = std::env::temp_dir().join(format!("alid_it_journal_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    };
    for workers in [1usize, 4, 8] {
        // Uninterrupted journaled run: the ground truth.
        let full_dir = tmp(&format!("full_{workers}"));
        let mut full = build_service(3, workers);
        let j =
            recover_and_open(JournalConfig { dir: full_dir.clone(), compact_every: 0 }, &full, 0)
                .expect("open ground-truth journal");
        full.set_journal(j);
        ingest_all(&full, &items);
        let want = snapshot_bytes(&full);

        // Journaled run, killed mid-stream after a snapshot at item 90.
        let dir = tmp(&format!("crash_{workers}"));
        let mut live = build_service(3, workers);
        let j = recover_and_open(JournalConfig { dir: dir.clone(), compact_every: 0 }, &live, 0)
            .expect("open journal");
        live.set_journal(j);
        ingest_all(&live, &items[..90]);
        let (snap, _) = snapshot_bytes_with_meta(&live);
        ingest_all(&live, &items[90..]);
        drop(live); // crash: the post-snapshot tail lives only in the journal

        let (mut resumed, meta) =
            restore_with_meta(&snap, ExecPolicy::workers(workers)).expect("restore");
        let j = recover_and_open(
            JournalConfig { dir: dir.clone(), compact_every: 0 },
            &resumed,
            meta.journal_pos,
        )
        .expect("replay");
        resumed.set_journal(j);
        assert_eq!(
            snapshot_bytes(&resumed),
            want,
            "recovered run diverged from uninterrupted at {workers} workers"
        );
        assert_services_identical(&full, &resumed, &format!("journal recovery, {workers} workers"));
        dirs.push(full_dir);
        dirs.push(dir);
    }
    for d in dirs {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// (3) On shard-separable data the cross-shard top-k merge agrees
/// with a single-shard run: the same dominant clusters (compared as
/// global member sets) at the same densities, with the strictly
/// densest cluster winning rank 1 everywhere.
#[test]
fn cross_shard_top_k_agrees_with_single_shard_on_separable_data() {
    // Pure blobs, no noise: every cluster is tight, far from the
    // others, and routed wholly to one shard.
    let items: Vec<Vec<f64>> = stream_items(120)
        .into_iter()
        .filter(|v| v[0].abs() <= 100.0 && v[1].abs() <= 100.0)
        .collect();
    // Canonical cross-shard view: clusters as (quantized density,
    // global member ids), sorted density-descending with member-set
    // tie-breaks. Quantizing at 1e-4 absorbs the schedule-dependent
    // tail of the incremental attach update (sweeps fire at
    // shard-local arrival counts, so exact density bits differ by
    // design) while keeping every real density gap intact; clusters
    // of pure duplicates tie *exactly* at (m-1)/m, which is why rank
    // order alone is not a sound comparison.
    let canonical = |svc: &Service| -> Vec<(i64, Vec<u64>)> {
        let mut clusters: Vec<(i64, Vec<u64>)> = svc
            .top_k(usize::MAX)
            .iter()
            .map(|summary| {
                let mut members: Vec<u64> = (0..svc.len() as u64)
                    .filter(|&id| svc.assignment(id) == Some(Some(summary.cluster)))
                    .collect();
                members.sort_unstable();
                ((summary.density * 1e4).round() as i64, members)
            })
            .collect();
        clusters.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        clusters
    };
    let single = build_service(1, 1);
    ingest_all(&single, &items);
    single.sweep();
    let reference = canonical(&single);
    assert!(reference.len() >= 4, "all four blobs detected: {reference:?}");
    assert!(
        reference[0].0 > reference[1].0,
        "fixture needs a strictly densest cluster: {reference:?}"
    );
    for shards in [2usize, 4, 8] {
        let sharded = build_service(shards, 1);
        ingest_all(&sharded, &items);
        sharded.sweep();
        let merged = canonical(&sharded);
        assert_eq!(
            reference, merged,
            "top-k merge at {shards} shards disagrees with the single-shard run"
        );
        // The maximum-density reduction rule puts the same winner on
        // top regardless of sharding.
        let top_single = &reference[0].1;
        let top_merged: Vec<u64> = {
            let top = &sharded.top_k(1)[0];
            let mut m: Vec<u64> = (0..sharded.len() as u64)
                .filter(|&id| sharded.assignment(id) == Some(Some(top.cluster)))
                .collect();
            m.sort_unstable();
            m
        };
        assert_eq!(top_single, &top_merged, "{shards} shards: different top-1 cluster");
    }
}

/// Builds a service over the straddle fixture's router seed and
/// detection params, ingests everything and flushes the tail.
fn straddle_service(
    fx: &alid_bench::fixtures::StraddleFixture,
    shards: usize,
    workers: usize,
) -> Service {
    let exec = ExecPolicy::workers(workers);
    let mut p = fx.params;
    p.exec = exec;
    let mut cfg = ServiceConfig::new(2, shards, p).with_batch(8).with_exec(exec);
    cfg.router_seed = fx.router_seed;
    let svc = Service::new(cfg);
    ingest_all(&svc, &fx.items);
    svc.sweep();
    svc
}

/// Member sets of a merged view, canonicalized for cross-shard-count
/// comparison.
fn canonical_members(view: &MergedView) -> Vec<Vec<u64>> {
    let mut sets: Vec<Vec<u64>> = view.clusters.iter().map(|c| c.members.clone()).collect();
    sets.sort();
    sets
}

fn assert_views_bit_identical(a: &MergedView, b: &MergedView, tag: &str) {
    assert_eq!(a.stats, b.stats, "{tag}: reduce stats differ");
    assert_eq!(a.clusters.len(), b.clusters.len(), "{tag}");
    for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
        assert_eq!(ca.rep, cb.rep, "{tag}");
        assert_eq!(ca.fragments, cb.fragments, "{tag}");
        assert_eq!(ca.members, cb.members, "{tag}");
        assert_eq!(ca.density.to_bits(), cb.density.to_bits(), "{tag}: density bits");
    }
}

/// (4) The tentpole acceptance: a tight cluster split across the
/// router's first hyperplane shows up as ≥ 2 raw fragments, while
/// the merged view is member-set-identical to the single-shard run —
/// for shard counts {1, 2, 4, 8}, bit-identical across reruns and
/// worker counts.
#[test]
fn merged_view_joins_straddling_fragments_across_shard_counts() {
    let fx = alid_bench::fixtures::straddling_cluster();
    let single = straddle_service(&fx, 1, 1);
    let reference = canonical_members(&single.merged_view());
    assert!(
        reference.contains(&fx.straddler),
        "single shard must hold the straddler whole: {reference:?}"
    );
    assert!(reference.contains(&fx.control), "control cluster intact: {reference:?}");
    for shards in [2usize, 4, 8] {
        let svc = straddle_service(&fx, shards, 1);
        // Raw view: the straddler is fragmented across shards.
        let refs: std::collections::BTreeSet<_> = fx
            .straddler
            .iter()
            .map(|&id| {
                svc.assignment(id).expect("known id").expect("straddler members are explained")
            })
            .collect();
        assert!(refs.len() >= 2, "{shards} shards: the raw view must fragment, got {refs:?}");
        let shards_used: std::collections::BTreeSet<u32> = refs.iter().map(|r| r.shard).collect();
        assert!(shards_used.len() >= 2, "{shards} shards: fragments live on one shard");
        // Merged view: member-set-identical to the single-shard run.
        let view = svc.merged_view();
        assert_eq!(canonical_members(&view), reference, "{shards} shards");
        let joined = view
            .clusters
            .iter()
            .find(|c| c.members == fx.straddler)
            .expect("the straddler is one merged cluster");
        assert!(joined.is_merged(), "{shards} shards: join must be flagged");
        assert_eq!(
            joined.fragments.len(),
            refs.len(),
            "{shards} shards: the join covers every fragment"
        );
        assert!(view.stats.clusters_merged >= 1, "{shards} shards: {:?}", view.stats);
        assert!(view.stats.pairs_tested >= 1 && view.stats.groups_rerun >= 1);
        // Bit-identical across reruns and every worker count.
        for workers in service_workers() {
            let again = straddle_service(&fx, shards, workers);
            assert_views_bit_identical(
                &view,
                &again.merged_view(),
                &format!("{shards} shards, {workers} workers"),
            );
        }
    }
}

/// (5) snapshot → restore → `/clusters?view=merged` agrees with the
/// uninterrupted run, bit for bit, with items still queued at the
/// cut.
#[test]
fn merged_view_survives_snapshot_restore() {
    let fx = alid_bench::fixtures::straddling_cluster();
    let uninterrupted = straddle_service(&fx, 4, 1);
    let expected = uninterrupted.merged_view();

    let mut p = fx.params;
    p.exec = ExecPolicy::workers(1);
    let mut cfg = ServiceConfig::new(2, 4, p).with_batch(8).with_exec(ExecPolicy::workers(1));
    cfg.router_seed = fx.router_seed;
    let first = Service::new(cfg);
    for v in &fx.items[..10] {
        first.ingest(v);
        first.drain();
    }
    // A ragged edge: admitted but unapplied items cross the snapshot.
    for v in &fx.items[10..14] {
        first.ingest(v);
    }
    let bytes = snapshot_bytes(&first);
    drop(first);
    for workers in service_workers() {
        let resumed = restore(&bytes, ExecPolicy::workers(workers)).expect("restore");
        resumed.drain();
        for v in &fx.items[14..] {
            resumed.ingest(v);
            resumed.drain();
        }
        resumed.sweep();
        assert_views_bit_identical(
            &expected,
            &resumed.merged_view(),
            &format!("restored continuation at {workers} workers"),
        );
    }
}

/// The HTTP front end serves the same bytes the library produces, and
/// its snapshot endpoint round-trips through `restore`.
#[test]
fn http_front_end_matches_library_and_round_trips_snapshots() {
    let items = stream_items(60);
    // Library-side reference.
    let reference = build_service(2, 1);
    ingest_all(&reference, &items);

    // HTTP-side run over loopback.
    let served = Arc::new(build_service(2, 1));
    let path = std::env::temp_dir().join(format!("alid_it_snap_{}.bin", std::process::id()));
    let server = http::start(
        Arc::clone(&served),
        "127.0.0.1:0",
        HttpOptions { http_workers: 2, snapshot_path: Some(path.clone()) },
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();
    http::wait_ready(&addr, Duration::from_secs(10)).expect("ready");
    let mut client = Client::connect(&addr).expect("connect");
    for chunk in items.chunks(7) {
        let body = Json::object([(
            "items",
            Json::Arr(
                chunk
                    .iter()
                    .map(|v| Json::Arr(v.iter().map(|&x| Json::Num(x)).collect()))
                    .collect(),
            ),
        )]);
        let (status, resp) = client.request("POST", "/ingest", Some(&body)).expect("ingest");
        assert_eq!(status, 200, "{resp:?}");
    }
    // The served instance must equal the library run bit-for-bit: the
    // JSON number round-trip through the HTTP pipe is exact.
    assert_services_identical(&reference, &served, "http vs library");

    // The merged view over HTTP serves the library's reduction — same
    // rank order, sizes and exact density bits (the JSON float
    // round-trip is shortest-exact).
    let (status, m) = client.request("GET", "/clusters?view=merged", None).expect("merged");
    assert_eq!(status, 200, "{m:?}");
    let lib = served.merged_view();
    let clusters = m.get("clusters").and_then(Json::as_arr).expect("clusters array");
    assert_eq!(clusters.len(), lib.clusters.len());
    for (j, c) in clusters.iter().zip(lib.clusters.iter()) {
        assert_eq!(j.get("shard").and_then(Json::as_u64), Some(c.rep.shard as u64));
        assert_eq!(j.get("cluster").and_then(Json::as_u64), Some(c.rep.cluster as u64));
        assert_eq!(j.get("size").and_then(Json::as_u64), Some(c.size() as u64));
        assert_eq!(
            j.get("density").and_then(Json::as_f64).map(f64::to_bits),
            Some(c.density.to_bits()),
            "density bits must survive the HTTP pipe"
        );
        let frags = j.get("fragments").and_then(Json::as_arr).expect("fragments");
        assert_eq!(frags.len(), c.fragments.len());
    }
    let reduce = m.get("reduce").expect("reduce stats");
    assert_eq!(reduce.get("fragments").and_then(Json::as_u64), Some(lib.stats.fragments as u64));

    // Snapshot through the endpoint (to the server's configured
    // path), restore through the library.
    let (status, resp) = client.request("POST", "/snapshot", None).expect("snapshot");
    assert_eq!(status, 200, "{resp:?}");
    let bytes = std::fs::read(&path).expect("snapshot file");
    let restored = restore(&bytes, ExecPolicy::workers(1)).expect("restore");
    assert_services_identical(&reference, &restored, "restored http snapshot");
    let _ = std::fs::remove_file(&path);
    server.shutdown();
}

/// Admission answers under pressure are part of the contract: a full
/// shard queue yields `Busy` without consuming a global id, and the
/// stream continues correctly after the queue clears.
#[test]
fn backpressure_is_explicit_and_recoverable() {
    let mut p = params();
    p.exec = ExecPolicy::workers(1);
    let svc = Service::new(ServiceConfig::new(2, 1, p).with_batch(8).with_queue_capacity(4));
    let items = stream_items(12);
    let mut enqueued = 0;
    let mut busy = 0;
    for v in &items {
        match svc.ingest(v) {
            Admission::Enqueued { .. } => enqueued += 1,
            Admission::Busy { .. } => busy += 1,
        }
    }
    assert_eq!(enqueued, 4, "only the queue capacity is admitted without draining");
    assert_eq!(busy, 8);
    assert_eq!(svc.len(), 4, "busy items consume no ids");
    svc.drain();
    for v in &items[4..8] {
        assert!(matches!(svc.ingest(v), Admission::Enqueued { .. }));
    }
}
