//! Failure injection and degenerate-input behaviour: the paper's
//! "ill-conditioned" LSH case (appendix, Case 3), duplicate points,
//! tiny inputs, and pathological parameters must all terminate with
//! sane output.

use alid::affinity::kernel::LpNorm;
use alid::data::metrics::avg_f1;
use alid::data::ndi::ndi_with;
use alid::prelude::*;
use std::sync::Arc;

#[test]
fn ill_conditioned_lsh_still_terminates() {
    // The appendix's Case 3: recall p ≈ 0 under improper LSH parameters
    // (here: absurdly many projections and a tiny segment length, so no
    // two items ever collide). Detection quality necessarily collapses,
    // but every run must terminate and peel everything exactly once.
    let ds = ndi_with(3, 30, 60, 41);
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    params.lsh = LshParams::new(2, 64, 1e-6, 3);
    let clustering = Peeler::new(&ds.data, params, Arc::new(CostModel::new())).detect_all();
    let total: usize = clustering.clusters.iter().map(|c| c.len()).sum();
    assert_eq!(total, ds.len(), "every item peeled exactly once");
    // With zero recall each item is its own cluster.
    assert!(clustering.clusters.iter().all(|c| c.len() == 1));
}

#[test]
fn exact_duplicate_points_are_handled() {
    // Affinity between distinct items at distance zero is exactly 1;
    // the dynamics and the ROI math must not blow up.
    let mut flat = Vec::new();
    for _ in 0..6 {
        flat.extend_from_slice(&[1.0, 2.0]); // six identical points
    }
    for i in 0..4 {
        flat.extend_from_slice(&[50.0 + i as f64, -30.0]);
    }
    let data = Dataset::from_flat(2, flat);
    let params = AlidParams::calibrated(&data, 0.5, 0.9).with_lsh_seed(9);
    let clustering = Peeler::new(&data, params, Arc::new(CostModel::new())).detect_all();
    let dominant = clustering.dominant(0.75, 3);
    assert_eq!(dominant.len(), 1);
    assert_eq!(dominant.clusters[0].members, vec![0, 1, 2, 3, 4, 5]);
    assert!(
        (dominant.clusters[0].density - 5.0 / 6.0).abs() < 1e-9,
        "six identical points: π = (m-1)/m exactly, got {}",
        dominant.clusters[0].density
    );
}

#[test]
fn single_item_dataset() {
    let data = Dataset::from_flat(3, vec![1.0, 2.0, 3.0]);
    let params = AlidParams::calibrated(&data, 1.0, 0.9);
    let clustering = Peeler::new(&data, params, Arc::new(CostModel::new())).detect_all();
    assert_eq!(clustering.len(), 1);
    assert_eq!(clustering.clusters[0].members, vec![0]);
    assert_eq!(clustering.clusters[0].density, 0.0);
    assert!(clustering.dominant(0.5, 2).is_empty());
}

#[test]
fn two_item_dataset() {
    let data = Dataset::from_flat(1, vec![0.0, 0.01]);
    let params = AlidParams::calibrated(&data, 0.05, 0.9).with_lsh_seed(1);
    let clustering = Peeler::new(&data, params, Arc::new(CostModel::new())).detect_all();
    let total: usize = clustering.clusters.iter().map(|c| c.len()).sum();
    assert_eq!(total, 2);
    // The pair forms one cluster with π = a/2 (2-clique cap).
    assert_eq!(clustering.clusters[0].members.len(), 2);
}

#[test]
fn manhattan_metric_works_end_to_end() {
    // Proposition 1 needs only the triangle inequality; run ALID under
    // L1 to exercise the generic-metric path.
    let ds = ndi_with(3, 36, 80, 43);
    let kernel = LaplacianKernel::new(
        -0.9f64.ln() / (ds.scale * 12.0), // L1 distances are ~sqrt(d) larger
        LpNorm::L1,
    );
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    params.lsh.seed = 5;
    let clustering = Peeler::new(&ds.data, params, Arc::new(CostModel::new())).detect_all();
    let dominant = clustering.dominant(0.7, 3);
    assert!(
        avg_f1(&ds.truth, &dominant) > 0.9,
        "L1 ALID should still recover clusters, got {}",
        avg_f1(&ds.truth, &dominant)
    );
}

#[test]
fn tiny_delta_still_converges() {
    // δ = 1 starves CIVS but must not prevent termination; clusters can
    // still assemble over the C iterations (slowly).
    let ds = ndi_with(2, 16, 20, 44);
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel).with_delta(1);
    params.first_roi_radius = kernel.distance_at(0.5);
    let clustering = Peeler::new(&ds.data, params, Arc::new(CostModel::new())).detect_all();
    let total: usize = clustering.clusters.iter().map(|c| c.len()).sum();
    assert_eq!(total, ds.len());
}

#[test]
fn max_one_iteration_cap_is_safe() {
    let ds = ndi_with(2, 16, 20, 45);
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel).with_iteration_caps(1, 1);
    params.first_roi_radius = kernel.distance_at(0.5);
    let clustering = Peeler::new(&ds.data, params, Arc::new(CostModel::new())).detect_all();
    let total: usize = clustering.clusters.iter().map(|c| c.len()).sum();
    assert_eq!(total, ds.len());
}
