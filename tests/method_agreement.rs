//! Cross-method agreement: on clean, well-separated instances every
//! affinity-based method must find the same dominant clusters — the
//! paper's premise that they optimise the same objective and differ
//! only in cost.

use alid::affinity::dense::DenseAffinity;
use alid::baselines::ap::{ap_detect_all, ApParams};
use alid::baselines::iid::{iid_detect_all, IidParams};
use alid::baselines::rd::{ds_detect_all, RdParams};
use alid::baselines::sea::{sea_detect_all, SeaParams};
use alid::data::metrics::avg_f1;
use alid::data::ndi::ndi_with;
use alid::prelude::*;

fn fixture() -> (alid::data::LabeledDataset, DenseAffinity) {
    let ds = ndi_with(4, 100, 200, 77);
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let graph = DenseAffinity::build(&ds.data, &kernel, CostModel::shared());
    (ds, graph)
}

#[test]
fn all_affinity_methods_reach_high_avg_f() {
    let (ds, graph) = fixture();
    let kernel = ds.suggested_kernel(0.9, 0.35);

    let iid = iid_detect_all(&graph, &IidParams::default()).dominant(0.75, 3);
    assert!(avg_f1(&ds.truth, &iid) > 0.95, "IID {}", avg_f1(&ds.truth, &iid));

    let dsm = ds_detect_all(&graph, &RdParams::default()).dominant(0.75, 3);
    assert!(avg_f1(&ds.truth, &dsm) > 0.95, "DS {}", avg_f1(&ds.truth, &dsm));

    let sea = sea_detect_all(&graph, &SeaParams::default()).dominant(0.75, 3);
    assert!(avg_f1(&ds.truth, &sea) > 0.95, "SEA {}", avg_f1(&ds.truth, &sea));

    // AP needs an exemplar preference between the noise affinity level
    // and the intra-cluster affinity (the harness's tuned setting); the
    // canonical median preference sits at the noise level here and lets
    // noise glom onto the clusters. Within the working band, isolated
    // resonances exist where a cluster shatters into sub-exemplar
    // groups on a particular noise realization (0.625 is one for this
    // fixture), so the test pins a mid-band value clear of them.
    let ap_params = ApParams { preference: Some(0.55), ..Default::default() };
    let ap = ap_detect_all(&graph, &ap_params, &CostModel::new()).dominant(0.75, 3);
    assert!(avg_f1(&ds.truth, &ap) > 0.9, "AP {}", avg_f1(&ds.truth, &ap));

    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    let alid = Peeler::new(&ds.data, params, CostModel::shared()).detect_all().dominant(0.75, 3);
    assert!(avg_f1(&ds.truth, &alid) > 0.95, "ALID {}", avg_f1(&ds.truth, &alid));
}

#[test]
fn iid_and_ds_find_identical_supports() {
    // Same StQP, different dynamics: the converged dominant clusters
    // must coincide as a *set*. (Detection order may differ — from the
    // barycenter, IID and RD can descend into equally dense basins in
    // different order, and peeling order follows.)
    let (_, graph) = fixture();
    let mut iid = iid_detect_all(&graph, &IidParams::default()).dominant(0.75, 3);
    let mut dsm = ds_detect_all(&graph, &RdParams::default()).dominant(0.75, 3);
    assert_eq!(iid.len(), dsm.len());
    iid.clusters.sort_by(|a, b| a.members.cmp(&b.members));
    dsm.clusters.sort_by(|a, b| a.members.cmp(&b.members));
    for (a, b) in iid.clusters.iter().zip(&dsm.clusters) {
        assert_eq!(a.members, b.members);
        assert!((a.density - b.density).abs() < 1e-6);
    }
}

#[test]
fn alid_matches_iid_supports_on_clean_data() {
    let (ds, graph) = fixture();
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let iid = iid_detect_all(&graph, &IidParams::default()).dominant(0.75, 3);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    let mut alid =
        Peeler::new(&ds.data, params, CostModel::shared()).detect_all().dominant(0.75, 3);
    alid.sort_by_density();
    let mut iid = iid;
    iid.sort_by_density();
    assert_eq!(alid.len(), iid.len());
    for (a, b) in alid.clusters.iter().zip(&iid.clusters) {
        assert_eq!(a.members, b.members, "ALID and IID supports diverged");
    }
}

#[test]
fn densities_agree_between_local_and_global_computation() {
    // The density ALID reports for a cluster must match the quadratic
    // form computed on the full matrix over the same weights.
    let (ds, graph) = fixture();
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    let alid = Peeler::new(&ds.data, params, CostModel::shared()).detect_all().dominant(0.75, 3);
    for c in &alid.clusters {
        let mut x = vec![0.0; ds.len()];
        for (&m, &w) in c.members.iter().zip(&c.weights) {
            x[m as usize] = w;
        }
        let pi = graph.quadratic_form(&x);
        assert!((pi - c.density).abs() < 1e-6, "reported {} vs full-matrix {}", c.density, pi);
    }
}
