//! Online-extension integration: the streaming driver consuming the
//! timestamped burst scenarios must recover the bursts that the batch
//! detector recovers on the same data.

use alid::core::streaming::StreamingAlid;
use alid::data::metrics::avg_f1;
use alid::data::stream::{generate_stream, Burst, StreamConfig};
use alid::prelude::*;
use std::sync::Arc;

fn params_for(scale: f64, seed: u64) -> AlidParams {
    let kernel = LaplacianKernel::calibrate(scale, 0.9, alid::affinity::kernel::LpNorm::L2);
    let mut p = AlidParams::new(kernel);
    p.first_roi_radius = kernel.distance_at(0.5);
    p.density_threshold = 0.75;
    p.min_cluster_size = 4;
    p.lsh.seed = seed;
    p
}

#[test]
fn streaming_matches_batch_on_burst_scenarios() {
    let sc = generate_stream(&StreamConfig::two_bursts(13));
    let params = params_for(sc.scale, 1);

    // Batch detection over the full stream.
    let batch =
        Peeler::new(&sc.data, params, Arc::new(CostModel::new())).detect_all().dominant(0.75, 4);
    let batch_f = avg_f1(&sc.truth, &batch);

    // Streaming ingestion, then a final sweep for the tail.
    let mut online = StreamingAlid::new(sc.data.dim(), params, 16, CostModel::shared());
    for row in sc.data.iter() {
        online.push(row);
    }
    online.sweep();
    let stream_f = avg_f1(&sc.truth, &online.snapshot().dominant(0.75, 4));

    assert!(batch_f > 0.95, "batch AVG-F {batch_f}");
    assert!(stream_f > 0.9, "streaming AVG-F {stream_f}");
    assert!((batch_f - stream_f).abs() < 0.1, "batch {batch_f} vs stream {stream_f}");
}

#[test]
fn clusters_are_detected_within_their_burst_window() {
    // The second burst must not be detectable before it arrives.
    let sc = generate_stream(&StreamConfig {
        dim: 12,
        total: 100,
        bursts: vec![
            Burst { start: 10, size: 10, spacing: 1 },
            Burst { start: 60, size: 10, spacing: 1 },
        ],
        jitter: 0.04,
        noise_span: 20.0,
        seed: 17,
    });
    let params = params_for(sc.scale, 2);
    let mut online = StreamingAlid::new(sc.data.dim(), params, 10, CostModel::shared());
    let mut clusters_at_t = Vec::with_capacity(sc.data.len());
    for row in sc.data.iter() {
        online.push(row);
        clusters_at_t.push(online.clusters().len());
    }
    online.sweep();
    // Nothing before the first burst completes.
    assert_eq!(clusters_at_t[9], 0, "no cluster before burst 1 data exists");
    // One cluster known well before burst 2 starts.
    assert!(clusters_at_t[55] >= 1, "burst 1 must be promoted by t=55, got {}", clusters_at_t[55]);
    // Both by the end.
    assert!(online.clusters().len() >= 2, "both bursts by the end");
}

#[test]
fn attachment_keeps_assignments_consistent() {
    let sc = generate_stream(&StreamConfig::two_bursts(29));
    let params = params_for(sc.scale, 3);
    let mut online = StreamingAlid::new(sc.data.dim(), params, 12, CostModel::shared());
    for row in sc.data.iter() {
        online.push(row);
    }
    online.sweep();
    // Every assignment points to a cluster that really contains the item.
    for (i, a) in online.assignments().iter().enumerate() {
        if let Some(c) = a {
            assert!(
                online.clusters()[*c].members.contains(&(i as u32)),
                "assignment of {i} inconsistent"
            );
        }
    }
    // Pending items are exactly the unassigned ones.
    let unassigned: Vec<u32> = online
        .assignments()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.is_none())
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(online.pending(), unassigned.as_slice());
}
