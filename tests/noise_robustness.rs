//! The Fig. 11 contrast as an invariant: as the noise degree rises,
//! affinity-based detection must degrade far more gracefully than
//! partitioning.

use alid::baselines::kmeans::{kmeans_detect_all, KmeansParams};
use alid::data::metrics::avg_f1;
use alid::data::ndi::sub_ndi;
use alid::prelude::*;
use std::sync::Arc;

fn alid_score(ds: &alid::data::LabeledDataset) -> f64 {
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    let clustering = Peeler::new(&ds.data, params, Arc::new(CostModel::new())).detect_all();
    avg_f1(&ds.truth, &clustering.dominant(0.75, 3))
}

fn kmeans_score(ds: &alid::data::LabeledDataset) -> f64 {
    let k = ds.truth.cluster_count() + 1;
    let clustering = kmeans_detect_all(&ds.data, &KmeansParams::with_k(k));
    avg_f1(&ds.truth, &clustering)
}

#[test]
fn alid_survives_heavy_noise_where_kmeans_degrades() {
    // Sub-NDI at ~8% scale, noise degree swept 0 -> 5.
    let scale = 0.08f64;
    let positive = (1420.0 * scale).round() as usize;
    let clean = sub_ndi(scale, Some(0), 99);
    let noisy = sub_ndi(scale, Some(positive * 5), 99);

    let alid_clean = alid_score(&clean);
    let alid_noisy = alid_score(&noisy);
    let km_clean = kmeans_score(&clean);
    let km_noisy = kmeans_score(&noisy);

    // Affinity-based detection stays essentially intact.
    assert!(alid_clean > 0.95, "ALID clean {alid_clean}");
    assert!(alid_noisy > 0.9, "ALID at noise degree 5: {alid_noisy}");
    // Partitioning starts fine but collapses under noise.
    assert!(km_clean > 0.7, "k-means clean {km_clean}");
    assert!(
        alid_noisy - km_noisy > 0.2,
        "expected a wide noise-resistance gap: ALID {alid_noisy} vs KM {km_noisy}"
    );
    // And k-means degrades much more than ALID does.
    assert!(
        (km_clean - km_noisy) > (alid_clean - alid_noisy),
        "k-means should lose more quality ({km_clean}->{km_noisy}) than ALID ({alid_clean}->{alid_noisy})"
    );
}

#[test]
fn noise_degree_is_what_the_generator_claims() {
    let scale = 0.1f64;
    let positive = (1420.0 * scale).round() as usize;
    for degree in [0usize, 2, 4] {
        let ds = sub_ndi(scale, Some(positive * degree), 7);
        let measured = ds.truth.noise_degree();
        assert!(
            (measured - degree as f64).abs() < 0.1,
            "asked degree {degree}, generator produced {measured}"
        );
    }
}
