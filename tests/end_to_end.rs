//! End-to-end integration: simulators -> ALID -> metrics, across crates.

use alid::data::metrics::{avg_f1, precision_recall};
use alid::data::nart::nart_with;
use alid::data::ndi::ndi_with;
use alid::data::sift::{sift, SiftConfig};
use alid::data::synthetic::{generate, Regime, SyntheticConfig};
use alid::prelude::*;
use std::sync::Arc;

fn detect(ds: &alid::data::LabeledDataset, seed: u64) -> (Clustering, u64) {
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    params.lsh.seed = seed;
    let cost = CostModel::shared();
    let clustering = Peeler::new(&ds.data, params, Arc::clone(&cost)).detect_all();
    (clustering.dominant(0.75, 3), cost.snapshot().kernel_evals)
}

#[test]
fn alid_recovers_nart_hot_events() {
    // Scale 0.2 keeps ~11 articles per event; much smaller events fall
    // below the π >= 0.75 dominance bar ((m-1)/m * 0.9 < 0.75 for m < 7).
    let ds = nart_with(0.2, Some(300), 31);
    let (dominant, _) = detect(&ds, 1);
    let score = avg_f1(&ds.truth, &dominant);
    assert!(score > 0.9, "NART AVG-F {score}");
    assert_eq!(dominant.len(), ds.truth.cluster_count());
}

#[test]
fn alid_recovers_ndi_duplicate_groups() {
    let ds = ndi_with(6, 120, 700, 32);
    let (dominant, _) = detect(&ds, 2);
    let score = avg_f1(&ds.truth, &dominant);
    assert!(score > 0.95, "NDI AVG-F {score}");
}

#[test]
fn alid_recovers_sift_visual_words() {
    let ds = sift(&SiftConfig { words: 6, word_size: 40, noise: 600, seed: 33 });
    let (dominant, _) = detect(&ds, 3);
    let score = avg_f1(&ds.truth, &dominant);
    assert!(score > 0.9, "SIFT AVG-F {score}");
    let (p, r) = precision_recall(&ds.truth, &dominant);
    assert!(p > 0.9 && r > 0.9, "precision {p} recall {r}");
}

#[test]
fn alid_recovers_synthetic_gaussians() {
    let cfg = SyntheticConfig::paper(1200, Regime::Bounded { p: 400 }, 34);
    let ds = generate(&cfg);
    let (dominant, _) = detect(&ds, 4);
    let score = avg_f1(&ds.truth, &dominant);
    assert!(score > 0.8, "synthetic AVG-F {score}");
}

#[test]
fn alid_never_materialises_the_matrix() {
    let ds = ndi_with(4, 80, 400, 35);
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    let cost = CostModel::shared();
    let _ = Peeler::new(&ds.data, params, Arc::clone(&cost)).detect_all();
    let snap = cost.snapshot();
    let full = (ds.len() * ds.len()) as u64;
    assert!(
        snap.kernel_evals < full / 4,
        "ALID computed {} of {} possible entries",
        snap.kernel_evals,
        full
    );
    assert!(
        snap.entries_peak < full / 20,
        "peak storage {} too close to n^2 = {}",
        snap.entries_peak,
        full
    );
    assert_eq!(snap.entries_current, 0, "all local matrices released");
}

#[test]
fn noise_only_dataset_yields_no_dominant_clusters() {
    // All noise, no planted structure.
    let ds = ndi_with(1, 2, 300, 36); // one trivial 2-cluster + noise
    let (dominant, _) = detect(&ds, 5);
    // The 2-item "cluster" is below min_size 3; noise must not produce
    // dominant clusters.
    assert!(dominant.is_empty(), "found {} phantom clusters", dominant.len());
}

#[test]
fn deterministic_across_runs() {
    let ds = sift(&SiftConfig { words: 3, word_size: 25, noise: 200, seed: 37 });
    let (a, _) = detect(&ds, 6);
    let (b, _) = detect(&ds, 6);
    assert_eq!(a.clusters.len(), b.clusters.len());
    for (x, y) in a.clusters.iter().zip(&b.clusters) {
        assert_eq!(x.members, y.members);
        assert!((x.density - y.density).abs() < 1e-12);
    }
}
