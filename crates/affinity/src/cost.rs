//! Deterministic cost accounting for affinity-matrix work.
//!
//! The paper's scalability results (Table 1, Figs. 7 and 9) are about
//! *growth orders*: how the time spent computing affinities and the space
//! spent storing them grow with the data-set size `n`. Wall-clock and RSS
//! depend on the machine; the number of kernel evaluations and the peak
//! number of simultaneously stored matrix entries do not. Every matrix
//! structure in this workspace therefore reports its work to a shared
//! [`CostModel`], and the experiment harness fits log-log slopes on these
//! counters (alongside wall-clock, which is also reported).
//!
//! Counters are atomic so PALID's parallel mappers can share one model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe work counters.
///
/// * `kernel_evals` — number of Laplacian-kernel evaluations, the paper's
///   unit of affinity-matrix *time*;
/// * `entries_current` / `entries_peak` — number of matrix entries
///   currently / maximally held in memory, the paper's unit of
///   affinity-matrix *space* (peak matters: ALID frees each `A_beta_alpha`
///   when a cluster is peeled off, Section 4.5);
/// * `aux_bytes` — auxiliary structure bytes (LSH tables, inverted lists)
///   that the paper's memory plots also include.
#[derive(Debug, Default)]
pub struct CostModel {
    kernel_evals: AtomicU64,
    entries_current: AtomicU64,
    entries_peak: AtomicU64,
    aux_bytes: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Total kernel evaluations so far.
    pub kernel_evals: u64,
    /// Matrix entries currently allocated.
    pub entries_current: u64,
    /// Peak simultaneous matrix entries.
    pub entries_peak: u64,
    /// Auxiliary bytes (hash tables, inverted lists).
    pub aux_bytes: u64,
}

impl CostSnapshot {
    /// Peak memory in bytes: matrix entries at 8 bytes each plus
    /// auxiliary structures.
    pub fn peak_bytes(&self) -> u64 {
        self.entries_peak * 8 + self.aux_bytes
    }

    /// Peak memory in mebibytes (the unit of Figs. 7(e)-(h) and 9).
    pub fn peak_mib(&self) -> f64 {
        self.peak_bytes() as f64 / (1024.0 * 1024.0)
    }
}

impl CostModel {
    /// A fresh model with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh model behind an `Arc`, the usual way structures share it.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Records `n` kernel evaluations.
    #[inline]
    pub fn record_kernel_evals(&self, n: u64) {
        self.kernel_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Records that `n` matrix entries were allocated, updating the peak.
    #[inline]
    pub fn alloc_entries(&self, n: u64) {
        let now = self.entries_current.fetch_add(n, Ordering::Relaxed) + n;
        self.entries_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Records that `n` matrix entries were released.
    ///
    /// # Panics
    /// Panics in debug builds if more entries are freed than were
    /// allocated (an accounting bug in the caller).
    #[inline]
    pub fn free_entries(&self, n: u64) {
        let before = self.entries_current.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(before >= n, "freed {n} entries but only {before} were allocated");
    }

    /// Records auxiliary bytes. Growth-only except for explicit bucket
    /// compaction, which returns bytes via [`Self::release_aux_bytes`].
    #[inline]
    pub fn record_aux_bytes(&self, n: u64) {
        self.aux_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records that `n` auxiliary bytes were physically freed (tombstone
    /// compaction dropping retired ids from index buckets). Saturating,
    /// so a caller overshooting its own accounting clamps to zero rather
    /// than wrapping the memory plots to 2^64.
    #[inline]
    pub fn release_aux_bytes(&self, n: u64) {
        let _ = self
            .aux_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| Some(cur.saturating_sub(n)));
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            kernel_evals: self.kernel_evals.load(Ordering::Relaxed),
            entries_current: self.entries_current.load(Ordering::Relaxed),
            entries_peak: self.entries_peak.load(Ordering::Relaxed),
            aux_bytes: self.aux_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero. Only sound when no structure is
    /// currently holding entries; intended for harness reuse between runs.
    pub fn reset(&self) {
        self.kernel_evals.store(0, Ordering::Relaxed);
        self.entries_current.store(0, Ordering::Relaxed);
        self.entries_peak.store(0, Ordering::Relaxed);
        self.aux_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = CostModel::new();
        c.record_kernel_evals(3);
        c.record_kernel_evals(4);
        assert_eq!(c.snapshot().kernel_evals, 7);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let c = CostModel::new();
        c.alloc_entries(10);
        c.alloc_entries(5);
        c.free_entries(12);
        c.alloc_entries(3);
        let s = c.snapshot();
        assert_eq!(s.entries_current, 6);
        assert_eq!(s.entries_peak, 15);
    }

    #[test]
    fn peak_bytes_combines_entries_and_aux() {
        let c = CostModel::new();
        c.alloc_entries(4);
        c.record_aux_bytes(100);
        assert_eq!(c.snapshot().peak_bytes(), 4 * 8 + 100);
    }

    #[test]
    fn release_aux_bytes_subtracts_and_saturates() {
        let c = CostModel::new();
        c.record_aux_bytes(100);
        c.release_aux_bytes(40);
        assert_eq!(c.snapshot().aux_bytes, 60);
        c.release_aux_bytes(1000);
        assert_eq!(c.snapshot().aux_bytes, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = CostModel::new();
        c.record_kernel_evals(1);
        c.alloc_entries(1);
        c.record_aux_bytes(1);
        c.reset();
        assert_eq!(c.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn shared_model_is_thread_safe() {
        let c = CostModel::shared();
        // Four exec-layer workers hammer one shared model concurrently.
        alid_exec::ExecPolicy::workers(4).for_each_index(4, |_| {
            for _ in 0..1000 {
                c.record_kernel_evals(1);
                c.alloc_entries(1);
            }
        });
        let snap = c.snapshot();
        assert_eq!(snap.kernel_evals, 4000);
        assert_eq!(snap.entries_current, 4000);
        assert!(snap.entries_peak <= 4000 && snap.entries_peak > 0);
    }

    #[test]
    fn mib_conversion() {
        let c = CostModel::new();
        c.alloc_entries(131072); // 1 MiB of f64
        assert!((c.snapshot().peak_mib() - 1.0).abs() < 1e-12);
    }
}
