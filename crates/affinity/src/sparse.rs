//! Sparse CSR affinity matrices built from neighbour lists.
//!
//! Section 5.1 studies what happens when the canonical methods (AP, IID,
//! SEA) are run on an LSH-*sparsified* matrix: only affinities between
//! hash-collision neighbours are computed and stored, everything else is
//! forced to zero. The *sparse degree* — the fraction of zero entries —
//! is the x-axis companion of Fig. 6. This module provides the symmetric
//! CSR matrix those baselines run on.

use std::sync::Arc;

use crate::cost::CostModel;
use crate::fx::FxHashSet;
use crate::kernel::LaplacianKernel;
use crate::vector::Dataset;

/// Accumulates an undirected edge set, then materialises a CSR matrix.
#[derive(Debug)]
pub struct SparseBuilder {
    n: usize,
    edges: FxHashSet<(u32, u32)>,
}

impl SparseBuilder {
    /// A builder for an `n x n` matrix with no edges yet.
    pub fn new(n: usize) -> Self {
        Self { n, edges: FxHashSet::default() }
    }

    /// Adds the undirected edge `{i, j}`; self-loops are ignored
    /// (diagonal is zero per Eq. 1).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, i: u32, j: u32) {
        assert!((i as usize) < self.n && (j as usize) < self.n, "edge endpoint out of range");
        if i == j {
            return;
        }
        let key = if i < j { (i, j) } else { (j, i) };
        self.edges.insert(key);
    }

    /// Adds every pair from a neighbour list (item `i` adjacent to each
    /// of `neighbors[i]`), symmetrising automatically.
    pub fn add_neighbor_lists(&mut self, neighbors: &[Vec<u32>]) {
        assert_eq!(neighbors.len(), self.n, "one neighbour list per item");
        for (i, list) in neighbors.iter().enumerate() {
            for &j in list {
                self.add_edge(i as u32, j);
            }
        }
    }

    /// Number of undirected edges so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Evaluates the kernel on every edge and builds the CSR matrix.
    ///
    /// Cost: one kernel evaluation per undirected edge; `2|E|` stored
    /// entries (both triangles, as a solver holds them).
    pub fn build(
        self,
        ds: &Dataset,
        kernel: &LaplacianKernel,
        cost: Arc<CostModel>,
    ) -> SparseAffinity {
        assert_eq!(ds.len(), self.n, "data set size mismatch");
        let n = self.n;
        // Count per-row degrees (both directions).
        let mut deg = vec![0usize; n];
        for &(i, j) in &self.edges {
            deg[i as usize] += 1;
            deg[j as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        for d in &deg {
            row_ptr.push(row_ptr.last().expect("non-empty") + d);
        }
        let nnz = *row_ptr.last().expect("non-empty");
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut fill = row_ptr.clone();
        for &(i, j) in &self.edges {
            let v = kernel.eval(ds.get(i as usize), ds.get(j as usize));
            let pi = fill[i as usize];
            col_idx[pi] = j;
            values[pi] = v;
            fill[i as usize] += 1;
            let pj = fill[j as usize];
            col_idx[pj] = i;
            values[pj] = v;
            fill[j as usize] += 1;
        }
        // Sort each row by column for deterministic iteration and
        // binary-search access.
        for i in 0..n {
            let lo = row_ptr[i];
            let hi = row_ptr[i + 1];
            let mut pairs: Vec<(u32, f64)> =
                col_idx[lo..hi].iter().copied().zip(values[lo..hi].iter().copied()).collect();
            pairs.sort_unstable_by_key(|&(c, _)| c);
            for (off, (c, v)) in pairs.into_iter().enumerate() {
                col_idx[lo + off] = c;
                values[lo + off] = v;
            }
        }
        cost.record_kernel_evals(self.edges.len() as u64);
        cost.alloc_entries(nnz as u64);
        SparseAffinity { n, row_ptr, col_idx, values, cost }
    }
}

/// Symmetric CSR affinity matrix with zero diagonal.
#[derive(Debug)]
pub struct SparseAffinity {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    cost: Arc<CostModel>,
}

impl SparseAffinity {
    /// Matrix order `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored (non-zero) entries, both triangles.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The fraction of zero entries over the full `n x n` matrix — the
    /// "sparse degree (SD)" of Section 5.1.
    pub fn sparse_degree(&self) -> f64 {
        let total = self.n as f64 * self.n as f64;
        1.0 - self.nnz() as f64 / total
    }

    /// Row `i`: parallel slices of column indices (ascending) and values.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `a_ij` (zero if the edge is not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        }
    }

    /// Degree (stored neighbours) of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// `out = A x`.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        for (i, o) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *o = acc;
        }
    }

    /// `A x` visiting only rows adjacent to the support of `x` — the
    /// sparse analogue of support-restricted mat-vec. Returns the result
    /// for all `n` rows (non-adjacent rows are zero).
    pub fn matvec_support(&self, x: &[f64], support: &[usize], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n);
        out.fill(0.0);
        for &j in support {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(j);
            for (&c, &v) in cols.iter().zip(vals) {
                out[c as usize] += v * xj;
            }
        }
    }

    /// `π(x) = xᵀ A x`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        let mut total = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            total += xi * acc;
        }
        total
    }

    /// Average intra-cluster affinity under uniform weights, over stored
    /// edges only.
    pub fn uniform_density(&self, members: &[u32]) -> f64 {
        let m = members.len();
        if m < 2 {
            return 0.0;
        }
        let member_set: FxHashSet<u32> = members.iter().copied().collect();
        let mut acc = 0.0;
        for &i in members {
            let (cols, vals) = self.row(i as usize);
            for (&c, &v) in cols.iter().zip(vals) {
                if member_set.contains(&c) {
                    acc += v;
                }
            }
        }
        acc / (m as f64 * m as f64)
    }

    /// The shared cost model.
    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }
}

impl Drop for SparseAffinity {
    fn drop(&mut self) {
        self.cost.free_entries(self.col_idx.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseAffinity;
    use crate::kernel::LpNorm;

    fn fixture() -> (Dataset, LaplacianKernel) {
        let ds = Dataset::from_flat(1, vec![0.0, 1.0, 2.0, 4.0]);
        (ds, LaplacianKernel::new(0.5, LpNorm::L2))
    }

    fn full_builder(n: usize) -> SparseBuilder {
        let mut b = SparseBuilder::new(n);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                b.add_edge(i, j);
            }
        }
        b
    }

    #[test]
    fn full_sparse_matches_dense() {
        let (ds, k) = fixture();
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        let sparse = full_builder(4).build(&ds, &k, CostModel::shared());
        for i in 0..4 {
            for j in 0..4 {
                assert!((sparse.get(i, j) - dense.get(i, j)).abs() < 1e-12);
            }
        }
        assert_eq!(sparse.nnz(), 12);
        assert!((sparse.sparse_degree() - 4.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_and_duplicates_are_ignored() {
        let (ds, k) = fixture();
        let mut b = SparseBuilder::new(4);
        b.add_edge(0, 0);
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        assert_eq!(b.edge_count(), 1);
        let m = b.build(&ds, &k, CostModel::shared());
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 0.0);
        assert!(m.get(1, 2) > 0.0);
        assert_eq!(m.get(1, 2), m.get(2, 1));
    }

    #[test]
    fn neighbor_lists_symmetrise() {
        let (ds, k) = fixture();
        let mut b = SparseBuilder::new(4);
        b.add_neighbor_lists(&[vec![1], vec![], vec![3], vec![2]]);
        let m = b.build(&ds, &k, CostModel::shared());
        assert!(m.get(1, 0) > 0.0);
        assert_eq!(m.degree(0), 1);
        assert_eq!(m.degree(2), 1);
    }

    #[test]
    fn matvec_matches_dense_on_full_graph() {
        let (ds, k) = fixture();
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        let sparse = full_builder(4).build(&ds, &k, CostModel::shared());
        let x = vec![0.1, 0.4, 0.3, 0.2];
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        dense.matvec(&x, &mut a);
        sparse.matvec(&x, &mut b);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
        assert!((dense.quadratic_form(&x) - sparse.quadratic_form(&x)).abs() < 1e-12);
    }

    #[test]
    fn matvec_support_equals_matvec() {
        let (ds, k) = fixture();
        let sparse = full_builder(4).build(&ds, &k, CostModel::shared());
        let x = vec![0.5, 0.0, 0.5, 0.0];
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        sparse.matvec(&x, &mut a);
        sparse.matvec_support(&x, &[0, 2], &mut b);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cost_accounting_and_release() {
        let (ds, k) = fixture();
        let cost = CostModel::shared();
        {
            let m = full_builder(4).build(&ds, &k, Arc::clone(&cost));
            assert_eq!(cost.snapshot().kernel_evals, 6);
            assert_eq!(cost.snapshot().entries_current, 12);
            drop(m);
        }
        assert_eq!(cost.snapshot().entries_current, 0);
    }

    #[test]
    fn uniform_density_counts_stored_edges_only() {
        let (ds, k) = fixture();
        let mut b = SparseBuilder::new(4);
        b.add_edge(0, 1);
        let m = b.build(&ds, &k, CostModel::shared());
        let d = m.uniform_density(&[0, 1, 2]);
        let expect = 2.0 * m.get(0, 1) / 9.0;
        assert!((d - expect).abs() < 1e-12);
    }

    #[test]
    fn rows_are_sorted() {
        let (ds, k) = fixture();
        let mut b = SparseBuilder::new(4);
        b.add_edge(3, 0);
        b.add_edge(3, 2);
        b.add_edge(3, 1);
        let m = b.build(&ds, &k, CostModel::shared());
        let (cols, _) = m.row(3);
        assert_eq!(cols, &[0, 1, 2]);
    }
}
