//! Sparse CSR affinity matrices built from neighbour lists.
//!
//! Section 5.1 studies what happens when the canonical methods (AP, IID,
//! SEA) are run on an LSH-*sparsified* matrix: only affinities between
//! hash-collision neighbours are computed and stored, everything else is
//! forced to zero. The *sparse degree* — the fraction of zero entries —
//! is the x-axis companion of Fig. 6. This module provides the symmetric
//! CSR matrix those baselines run on.

use std::sync::Arc;

use alid_exec::{ExecPolicy, SharedSlice, TuneState};

/// Chunk autotuner for the parallel edge-evaluation phase of
/// [`SparseBuilder::build_with`] — one handle for this call site,
/// shared by every sparse build in the process. Public for harness
/// telemetry (`bench_speculation` emits its snapshot).
pub static SPARSE_BUILD_TUNE: TuneState = TuneState::new();

use crate::block::BlockEval;
use crate::cost::CostModel;
use crate::fx::FxHashSet;
use crate::kernel::LaplacianKernel;
use crate::vector::Dataset;

/// Accumulates an undirected edge set, then materialises a CSR matrix.
#[derive(Debug)]
pub struct SparseBuilder {
    n: usize,
    edges: FxHashSet<(u32, u32)>,
}

impl SparseBuilder {
    /// A builder for an `n x n` matrix with no edges yet.
    pub fn new(n: usize) -> Self {
        Self { n, edges: FxHashSet::default() }
    }

    /// Adds the undirected edge `{i, j}`; self-loops are ignored
    /// (diagonal is zero per Eq. 1).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, i: u32, j: u32) {
        assert!((i as usize) < self.n && (j as usize) < self.n, "edge endpoint out of range");
        if i == j {
            return;
        }
        let key = if i < j { (i, j) } else { (j, i) };
        self.edges.insert(key);
    }

    /// Adds every pair from a neighbour list (item `i` adjacent to each
    /// of `neighbors[i]`), symmetrising automatically.
    pub fn add_neighbor_lists(&mut self, neighbors: &[Vec<u32>]) {
        assert_eq!(neighbors.len(), self.n, "one neighbour list per item");
        for (i, list) in neighbors.iter().enumerate() {
            for &j in list {
                self.add_edge(i as u32, j);
            }
        }
    }

    /// Number of undirected edges so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Evaluates the kernel on every edge and builds the CSR matrix.
    ///
    /// Cost: one kernel evaluation per undirected edge; `2|E|` stored
    /// entries (both triangles, as a solver holds them).
    pub fn build(
        self,
        ds: &Dataset,
        kernel: &LaplacianKernel,
        cost: Arc<CostModel>,
    ) -> SparseAffinity {
        self.build_with(ds, kernel, cost, ExecPolicy::sequential())
    }

    /// [`Self::build`] under an execution policy: kernel evaluations
    /// fan out over the edge set on the exec layer, one evaluation per
    /// edge with the value written to the edge's own slot, and CSR
    /// assembly then runs over the canonically sorted edge list — so
    /// every worker count (and every hash-set iteration order) yields
    /// the byte-identical matrix and cost trace.
    pub fn build_with(
        self,
        ds: &Dataset,
        kernel: &LaplacianKernel,
        cost: Arc<CostModel>,
        exec: ExecPolicy,
    ) -> SparseAffinity {
        assert_eq!(ds.len(), self.n, "data set size mismatch");
        let n = self.n;
        // Canonical edge order: makes the CSR fill (and therefore the
        // pre-sort entry layout) independent of FxHashSet iteration.
        // alid-lint: allow(no-unordered-iteration) -- drained into a Vec and canonically sorted on the next line
        let mut edge_list: Vec<(u32, u32)> = self.edges.into_iter().collect();
        edge_list.sort_unstable();
        // One kernel evaluation per edge, parallel over the edge set.
        // Workers steal whole spans of the sorted edge list; inside a
        // span, each run of edges sharing a source row `i` becomes one
        // blocked batch (row i vs the gathered `j` rows), so the kernel
        // runs SoA over flat memory instead of pair-at-a-time. The
        // per-edge values are independent of where spans (or runs) are
        // cut, so any worker count yields identical bytes.
        let mut edge_vals = vec![0.0f64; edge_list.len()];
        alid_exec::tune::export_tune("sparse_build", &SPARSE_BUILD_TUNE);
        {
            let shared = SharedSlice::new(&mut edge_vals);
            exec.for_each_span_tuned_with(
                &SPARSE_BUILD_TUNE,
                edge_list.len(),
                || (BlockEval::new(), Vec::<u32>::new(), Vec::<f64>::new()),
                |(scratch, ids, vals), span| {
                    let mut e = span.start;
                    while e < span.end {
                        let i = edge_list[e].0;
                        let mut run = e + 1;
                        while run < span.end && edge_list[run].0 == i {
                            run += 1;
                        }
                        ids.clear();
                        ids.extend(edge_list[e..run].iter().map(|&(_, j)| j));
                        vals.clear();
                        vals.resize(run - e, 0.0);
                        scratch.eval_indexed(kernel, ds, ids, ds.get(i as usize), vals);
                        for (off, &v) in vals.iter().enumerate() {
                            // SAFETY: slot e + off lies inside this
                            // worker's stolen span, and spans are
                            // disjoint.
                            unsafe { shared.write(e + off, v) };
                        }
                        e = run;
                    }
                },
            );
        }
        // Count per-row degrees (both directions).
        let mut deg = vec![0usize; n];
        for &(i, j) in &edge_list {
            deg[i as usize] += 1;
            deg[j as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        for d in &deg {
            row_ptr.push(row_ptr.last().expect("non-empty") + d);
        }
        let nnz = *row_ptr.last().expect("non-empty");
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut fill = row_ptr.clone();
        for (&(i, j), &v) in edge_list.iter().zip(&edge_vals) {
            let pi = fill[i as usize];
            col_idx[pi] = j;
            values[pi] = v;
            fill[i as usize] += 1;
            let pj = fill[j as usize];
            col_idx[pj] = i;
            values[pj] = v;
            fill[j as usize] += 1;
        }
        // Sort each row by column for deterministic iteration and
        // binary-search access.
        for i in 0..n {
            let lo = row_ptr[i];
            let hi = row_ptr[i + 1];
            let mut pairs: Vec<(u32, f64)> =
                col_idx[lo..hi].iter().copied().zip(values[lo..hi].iter().copied()).collect();
            pairs.sort_unstable_by_key(|&(c, _)| c);
            for (off, (c, v)) in pairs.into_iter().enumerate() {
                col_idx[lo + off] = c;
                values[lo + off] = v;
            }
        }
        cost.record_kernel_evals(edge_list.len() as u64);
        cost.alloc_entries(nnz as u64);
        SparseAffinity { n, row_ptr, col_idx, values, cost }
    }
}

/// Symmetric CSR affinity matrix with zero diagonal.
#[derive(Debug)]
pub struct SparseAffinity {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    cost: Arc<CostModel>,
}

impl SparseAffinity {
    /// Matrix order `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored (non-zero) entries, both triangles.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The fraction of zero entries over the full `n x n` matrix — the
    /// "sparse degree (SD)" of Section 5.1.
    pub fn sparse_degree(&self) -> f64 {
        let total = self.n as f64 * self.n as f64;
        1.0 - self.nnz() as f64 / total
    }

    /// Row `i`: parallel slices of column indices (ascending) and values.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `a_ij` (zero if the edge is not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        }
    }

    /// Degree (stored neighbours) of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// `out = A x`.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        for (i, o) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *o = acc;
        }
    }

    /// `A x` visiting only rows adjacent to the support of `x` — the
    /// sparse analogue of support-restricted mat-vec. Returns the result
    /// for all `n` rows (non-adjacent rows are zero).
    ///
    /// # Support contract
    /// `support` must contain every index `j` with `x[j] != 0.0`
    /// (supersets are fine). Entries are skipped by the exact IEEE-754
    /// compare `x[j] == 0.0`, which matches **both** `+0.0` and `-0.0`
    /// but **no** denormal: a subnormal weight, however tiny, is a real
    /// contribution and is accumulated. Skipping an exact ±0.0 weight
    /// is bit-exact — with `out` initialised to `+0.0`, adding
    /// `v * ±0.0` can never change any accumulator bit — so this test
    /// is a pure work filter, never an approximation, and parallel
    /// sparse builds cannot shift results by producing `-0.0` weights.
    pub fn matvec_support(&self, x: &[f64], support: &[usize], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n);
        out.fill(0.0);
        for &j in support {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(j);
            for (&c, &v) in cols.iter().zip(vals) {
                out[c as usize] += v * xj;
            }
        }
    }

    /// `π(x) = xᵀ A x`.
    ///
    /// Rows with `x[i] == 0.0` are skipped under the same exact-zero
    /// contract as [`Self::matvec_support`]: ±0.0 contributes an exact
    /// zero term either way (the row's inner product is scaled by
    /// `xi`), denormals are never skipped.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        let mut total = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            total += xi * acc;
        }
        total
    }

    /// Average intra-cluster affinity under uniform weights, over stored
    /// edges only.
    pub fn uniform_density(&self, members: &[u32]) -> f64 {
        let m = members.len();
        if m < 2 {
            return 0.0;
        }
        let member_set: FxHashSet<u32> = members.iter().copied().collect();
        let mut acc = 0.0;
        for &i in members {
            let (cols, vals) = self.row(i as usize);
            for (&c, &v) in cols.iter().zip(vals) {
                if member_set.contains(&c) {
                    acc += v;
                }
            }
        }
        acc / (m as f64 * m as f64)
    }

    /// The shared cost model.
    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }
}

impl Drop for SparseAffinity {
    fn drop(&mut self) {
        self.cost.free_entries(self.col_idx.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseAffinity;
    use crate::kernel::LpNorm;

    fn fixture() -> (Dataset, LaplacianKernel) {
        let ds = Dataset::from_flat(1, vec![0.0, 1.0, 2.0, 4.0]);
        (ds, LaplacianKernel::new(0.5, LpNorm::L2))
    }

    fn full_builder(n: usize) -> SparseBuilder {
        let mut b = SparseBuilder::new(n);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                b.add_edge(i, j);
            }
        }
        b
    }

    #[test]
    fn full_sparse_matches_dense() {
        let (ds, k) = fixture();
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        let sparse = full_builder(4).build(&ds, &k, CostModel::shared());
        for i in 0..4 {
            for j in 0..4 {
                assert!((sparse.get(i, j) - dense.get(i, j)).abs() < 1e-12);
            }
        }
        assert_eq!(sparse.nnz(), 12);
        assert!((sparse.sparse_degree() - 4.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_and_duplicates_are_ignored() {
        let (ds, k) = fixture();
        let mut b = SparseBuilder::new(4);
        b.add_edge(0, 0);
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        assert_eq!(b.edge_count(), 1);
        let m = b.build(&ds, &k, CostModel::shared());
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 0.0);
        assert!(m.get(1, 2) > 0.0);
        assert_eq!(m.get(1, 2), m.get(2, 1));
    }

    #[test]
    fn neighbor_lists_symmetrise() {
        let (ds, k) = fixture();
        let mut b = SparseBuilder::new(4);
        b.add_neighbor_lists(&[vec![1], vec![], vec![3], vec![2]]);
        let m = b.build(&ds, &k, CostModel::shared());
        assert!(m.get(1, 0) > 0.0);
        assert_eq!(m.degree(0), 1);
        assert_eq!(m.degree(2), 1);
    }

    #[test]
    fn matvec_matches_dense_on_full_graph() {
        let (ds, k) = fixture();
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        let sparse = full_builder(4).build(&ds, &k, CostModel::shared());
        let x = vec![0.1, 0.4, 0.3, 0.2];
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        dense.matvec(&x, &mut a);
        sparse.matvec(&x, &mut b);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
        assert!((dense.quadratic_form(&x) - sparse.quadratic_form(&x)).abs() < 1e-12);
    }

    #[test]
    fn matvec_support_equals_matvec() {
        let (ds, k) = fixture();
        let sparse = full_builder(4).build(&ds, &k, CostModel::shared());
        let x = vec![0.5, 0.0, 0.5, 0.0];
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        sparse.matvec(&x, &mut a);
        sparse.matvec_support(&x, &[0, 2], &mut b);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cost_accounting_and_release() {
        let (ds, k) = fixture();
        let cost = CostModel::shared();
        {
            let m = full_builder(4).build(&ds, &k, Arc::clone(&cost));
            assert_eq!(cost.snapshot().kernel_evals, 6);
            assert_eq!(cost.snapshot().entries_current, 12);
            drop(m);
        }
        assert_eq!(cost.snapshot().entries_current, 0);
    }

    #[test]
    fn uniform_density_counts_stored_edges_only() {
        let (ds, k) = fixture();
        let mut b = SparseBuilder::new(4);
        b.add_edge(0, 1);
        let m = b.build(&ds, &k, CostModel::shared());
        let d = m.uniform_density(&[0, 1, 2]);
        let expect = 2.0 * m.get(0, 1) / 9.0;
        assert!((d - expect).abs() < 1e-12);
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let (ds, k) = fixture();
        let serial = full_builder(4).build(&ds, &k, CostModel::shared());
        for workers in [1usize, 2, 3, 8] {
            let cost = CostModel::shared();
            let par = full_builder(4).build_with(
                &ds,
                &k,
                Arc::clone(&cost),
                alid_exec::ExecPolicy::workers(workers),
            );
            assert_eq!(par.nnz(), serial.nnz(), "{workers} workers");
            for i in 0..4 {
                let (sc, sv) = serial.row(i);
                let (pc, pv) = par.row(i);
                assert_eq!(sc, pc, "row {i} columns diverged at {workers} workers");
                let sv: Vec<u64> = sv.iter().map(|v| v.to_bits()).collect();
                let pv: Vec<u64> = pv.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sv, pv, "row {i} values diverged at {workers} workers");
            }
            assert_eq!(cost.snapshot().kernel_evals, 6, "{workers} workers changed accounting");
        }
    }

    #[test]
    fn support_skip_handles_negative_zero_and_denormals() {
        let (ds, k) = fixture();
        let m = full_builder(4).build(&ds, &k, CostModel::shared());
        // -0.0 must behave exactly like +0.0: skipped, same bits out.
        let pos = vec![0.5, 0.0, 0.5, 0.0];
        let neg = vec![0.5, -0.0, 0.5, -0.0];
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        m.matvec_support(&pos, &[0, 1, 2, 3], &mut a);
        m.matvec_support(&neg, &[0, 1, 2, 3], &mut b);
        let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "-0.0 weights must be skipped exactly like +0.0");
        assert_eq!(m.quadratic_form(&pos).to_bits(), m.quadratic_form(&neg).to_bits());
        // A denormal weight is NOT zero: it must contribute, i.e. the
        // support-restricted product must still match the full matvec.
        let tiny = f64::MIN_POSITIVE / 4.0; // subnormal
        assert!(tiny > 0.0 && !tiny.is_normal());
        let x = vec![0.5, tiny, 0.5, 0.0];
        let mut full = vec![0.0; 4];
        let mut sup = vec![0.0; 4];
        m.matvec(&x, &mut full);
        m.matvec_support(&x, &[0, 1, 2], &mut sup);
        let fb: Vec<u64> = full.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u64> = sup.iter().map(|v| v.to_bits()).collect();
        assert_eq!(fb, sb, "denormal weights must not be skipped");
    }

    #[test]
    fn rows_are_sorted() {
        let (ds, k) = fixture();
        let mut b = SparseBuilder::new(4);
        b.add_edge(3, 0);
        b.add_edge(3, 2);
        b.add_edge(3, 1);
        let m = b.build(&ds, &k, CostModel::shared());
        let (cols, _) = m.row(3);
        assert_eq!(cols, &[0, 1, 2]);
    }
}
