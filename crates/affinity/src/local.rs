//! The lazily-computed local column group `A_beta_alpha` of Fig. 3.
//!
//! LID (Algorithm 1) never touches the full matrix: within a local range
//! `β` it only needs the columns `A_{β i}` of vertices `i` that the
//! dynamics actually select, plus on-the-fly products `A_{ψ α} x_α` when
//! CIVS extends the range (Eq. 17). This structure owns that column
//! cache, reports every kernel evaluation and every stored entry to the
//! [`CostModel`], and releases its storage when dropped — which is what
//! gives ALID its `O(a*(a*+δ))` space bound (Section 4.5).

use std::sync::Arc;

use crate::block::BlockEval;
use crate::cost::CostModel;
use crate::fx::FxHashMap;
use crate::kernel::LaplacianKernel;
use crate::vector::Dataset;

/// Column cache over a local index range `β` of the global affinity
/// graph.
#[derive(Debug)]
pub struct LocalAffinity<'a> {
    ds: &'a Dataset,
    kernel: LaplacianKernel,
    cost: Arc<CostModel>,
    /// Global indices of the local range, in insertion order.
    beta: Vec<u32>,
    /// Global index -> position in `beta`.
    pos: FxHashMap<u32, u32>,
    /// The rows of `β` packed contiguously (position-parallel to
    /// `beta`), so column pulls run the blocked kernel evaluator over
    /// flat memory instead of `|β|` scattered `get`s. A copy of input
    /// data, not of computed affinities — it does not count against the
    /// paper's stored-entry bound.
    beta_flat: Vec<f64>,
    /// Blocked-evaluation scratch reused across column pulls.
    scratch: BlockEval,
    /// Cached columns `A_{β i}`, keyed by *global* vertex id `i`. Each
    /// column is parallel to `beta`.
    columns: FxHashMap<u32, Box<[f64]>>,
    /// Floats currently cached (for cost release on drop).
    stored: u64,
}

impl<'a> LocalAffinity<'a> {
    /// Creates the view for local range `beta` (global indices, must be
    /// distinct).
    ///
    /// # Panics
    /// Panics if `beta` contains duplicates or indices out of range.
    pub fn new(
        ds: &'a Dataset,
        kernel: LaplacianKernel,
        cost: Arc<CostModel>,
        beta: Vec<u32>,
    ) -> Self {
        let mut pos = FxHashMap::default();
        pos.reserve(beta.len());
        for (p, &g) in beta.iter().enumerate() {
            assert!((g as usize) < ds.len(), "vertex {g} out of range {}", ds.len());
            let dup = pos.insert(g, p as u32);
            assert!(dup.is_none(), "duplicate vertex {g} in local range");
        }
        let mut beta_flat = Vec::with_capacity(beta.len() * ds.dim());
        for &g in &beta {
            beta_flat.extend_from_slice(ds.get(g as usize));
        }
        Self {
            ds,
            kernel,
            cost,
            beta,
            pos,
            beta_flat,
            scratch: BlockEval::new(),
            columns: FxHashMap::default(),
            stored: 0,
        }
    }

    /// The local range (global indices).
    #[inline]
    pub fn beta(&self) -> &[u32] {
        &self.beta
    }

    /// Size `b = |β|` of the local range.
    #[inline]
    pub fn len(&self) -> usize {
        self.beta.len()
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.beta.is_empty()
    }

    /// Global id of local position `p`.
    #[inline]
    pub fn global(&self, p: usize) -> u32 {
        self.beta[p]
    }

    /// Local position of global id `g`, if it belongs to `β`.
    #[inline]
    pub fn local(&self, g: u32) -> Option<u32> {
        self.pos.get(&g).copied()
    }

    /// The kernel in use.
    #[inline]
    pub fn kernel(&self) -> &LaplacianKernel {
        &self.kernel
    }

    /// The backing data set.
    #[inline]
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The shared cost model.
    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// Number of columns currently cached.
    pub fn cached_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column `A_{β g}` (affinity of global vertex `g` to every
    /// vertex of `β`), computing and caching it on first use.
    ///
    /// # Panics
    /// Panics if `g` is out of the data-set range (columns for vertices
    /// outside `β` are legal — CIVS probes them — but they must exist).
    pub fn column(&mut self, g: u32) -> &[f64] {
        assert!((g as usize) < self.ds.len(), "vertex {g} out of range");
        if !self.columns.contains_key(&g) {
            let vg = self.ds.get(g as usize);
            let mut col: Box<[f64]> = vec![0.0; self.beta.len()].into_boxed_slice();
            self.scratch.eval_rows(&self.kernel, self.ds.dim(), &self.beta_flat, vg, &mut col);
            // Eq. 1 zeroes the diagonal; the blocked pass evaluated
            // that slot along with the rest, so it is not an eval the
            // scalar path would have recorded either.
            if let Some(&p) = self.pos.get(&g) {
                col[p as usize] = 0.0;
            }
            let evals = col.len() as u64 - u64::from(self.pos.contains_key(&g));
            self.cost.record_kernel_evals(evals);
            self.cost.alloc_entries(col.len() as u64);
            self.stored += col.len() as u64;
            self.columns.insert(g, col);
        }
        &self.columns[&g]
    }

    /// Computes `A_{rows, alpha} · w` — the `(A_{ψ α} x̂_α)` rows of the
    /// CIVS update (Eq. 17). `rows` and `alpha` are global indices; `w`
    /// is parallel to `alpha`.
    ///
    /// A row whose column `A_{β r}` is already cached (and whose needed
    /// entries all lie inside `β`) is served **from the cache**: the
    /// symmetric kernel gives `A_{r a} = A_{a r} = column(r)[pos(a)]`,
    /// so nothing is re-evaluated and no fresh evals are recorded for
    /// it. Uncached rows run the blocked evaluator over the gathered
    /// `alpha` rows and record one eval per non-self pair, exactly like
    /// before.
    ///
    /// # Panics
    /// Panics if `alpha.len() != w.len()`.
    pub fn product_rows(&self, rows: &[u32], alpha: &[u32], w: &[f64]) -> Vec<f64> {
        assert_eq!(alpha.len(), w.len(), "support/weight length mismatch");
        // Cached columns are parallel to beta, so they can substitute
        // for fresh evaluation only when every alpha member sits in it.
        let alpha_pos: Option<Vec<usize>> =
            alpha.iter().map(|a| self.pos.get(a).map(|&p| p as usize)).collect();
        let mut gathered: Vec<f64> = Vec::new();
        let mut vals = vec![0.0; alpha.len()];
        let mut scratch = BlockEval::new();
        let mut out = Vec::with_capacity(rows.len());
        let mut evals = 0u64;
        for &r in rows {
            let cached = alpha_pos.as_ref().and_then(|ps| self.columns.get(&r).map(|c| (ps, c)));
            let mut acc = 0.0;
            if let Some((ps, col)) = cached {
                for ((&a, &wa), &p) in alpha.iter().zip(w).zip(ps) {
                    if a == r {
                        continue;
                    }
                    acc += wa * col[p];
                }
            } else {
                if gathered.is_empty() && !alpha.is_empty() {
                    for &a in alpha {
                        gathered.extend_from_slice(self.ds.get(a as usize));
                    }
                }
                let vr = self.ds.get(r as usize);
                scratch.eval_rows(&self.kernel, self.ds.dim(), &gathered, vr, &mut vals);
                for ((&a, &wa), &v) in alpha.iter().zip(w).zip(&vals) {
                    if a == r {
                        continue;
                    }
                    acc += wa * v;
                    evals += 1;
                }
            }
            out.push(acc);
        }
        self.cost.record_kernel_evals(evals);
        out
    }

    /// Density `π(x) = xᵀ A_{ββ} x` for a weight vector over `β`
    /// (computed from scratch; the dynamics normally track it
    /// incrementally). Exact — computes only the support block.
    pub fn density(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.beta.len());
        let sup: Vec<usize> = (0..x.len()).filter(|&i| x[i] > 0.0).collect();
        // Pack the support rows once so every upper-triangle pass runs
        // the blocked evaluator over one contiguous buffer.
        let dim = self.ds.dim();
        let mut packed = Vec::with_capacity(sup.len() * dim);
        for &i in &sup {
            packed.extend_from_slice(&self.beta_flat[i * dim..(i + 1) * dim]);
        }
        let mut scratch = BlockEval::new();
        let mut vals = vec![0.0; sup.len().saturating_sub(1)];
        let mut acc = 0.0;
        let mut evals = 0u64;
        for (a, &i) in sup.iter().enumerate() {
            let tail = sup.len() - a - 1;
            if tail == 0 {
                break;
            }
            let vi = self.ds.get(self.beta[i] as usize);
            scratch.eval_rows(&self.kernel, dim, &packed[(a + 1) * dim..], vi, &mut vals[..tail]);
            for (&v, &j) in vals[..tail].iter().zip(&sup[a + 1..]) {
                acc += x[i] * x[j] * v;
                evals += 1;
            }
        }
        self.cost.record_kernel_evals(evals);
        2.0 * acc
    }
}

impl Drop for LocalAffinity<'_> {
    fn drop(&mut self) {
        self.cost.free_entries(self.stored);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseAffinity;
    use crate::kernel::LpNorm;

    fn fixture() -> (Dataset, LaplacianKernel) {
        let ds = Dataset::from_flat(1, vec![0.0, 1.0, 2.0, 5.0]);
        (ds, LaplacianKernel::new(0.7, LpNorm::L2))
    }

    #[test]
    fn column_matches_dense_matrix() {
        let (ds, k) = fixture();
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        let mut local = LocalAffinity::new(&ds, k, CostModel::shared(), vec![0, 2, 3]);
        let col = local.column(2).to_vec();
        assert_eq!(col.len(), 3);
        assert!((col[0] - dense.get(0, 2)).abs() < 1e-12);
        assert_eq!(col[1], 0.0); // self-affinity
        assert!((col[2] - dense.get(3, 2)).abs() < 1e-12);
    }

    #[test]
    fn column_outside_beta_has_no_zero_diagonal() {
        let (ds, k) = fixture();
        let mut local = LocalAffinity::new(&ds, k, CostModel::shared(), vec![0, 1]);
        let col = local.column(3).to_vec();
        assert!(col.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn columns_are_cached() {
        let (ds, k) = fixture();
        let cost = CostModel::shared();
        let mut local = LocalAffinity::new(&ds, k, Arc::clone(&cost), vec![0, 1, 2]);
        local.column(1);
        let evals_once = cost.snapshot().kernel_evals;
        local.column(1);
        assert_eq!(cost.snapshot().kernel_evals, evals_once);
        assert_eq!(local.cached_columns(), 1);
    }

    #[test]
    fn cost_entries_released_on_drop() {
        let (ds, k) = fixture();
        let cost = CostModel::shared();
        {
            let mut local = LocalAffinity::new(&ds, k, Arc::clone(&cost), vec![0, 1, 2]);
            local.column(0);
            local.column(3);
            assert_eq!(cost.snapshot().entries_current, 6);
        }
        assert_eq!(cost.snapshot().entries_current, 0);
        assert_eq!(cost.snapshot().entries_peak, 6);
    }

    #[test]
    fn product_rows_matches_dense() {
        let (ds, k) = fixture();
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        let local = LocalAffinity::new(&ds, k, CostModel::shared(), vec![0, 1]);
        let alpha = [0u32, 1];
        let w = [0.4, 0.6];
        let got = local.product_rows(&[2, 3], &alpha, &w);
        let want2 = 0.4 * dense.get(2, 0) + 0.6 * dense.get(2, 1);
        let want3 = 0.4 * dense.get(3, 0) + 0.6 * dense.get(3, 1);
        assert!((got[0] - want2).abs() < 1e-12);
        assert!((got[1] - want3).abs() < 1e-12);
    }

    #[test]
    fn product_rows_skips_self_pairs() {
        let (ds, k) = fixture();
        let local = LocalAffinity::new(&ds, k, CostModel::shared(), vec![0, 1]);
        // Row 0 with alpha containing 0: the self pair contributes zero.
        let got = local.product_rows(&[0], &[0, 1], &[0.5, 0.5]);
        let expect = 0.5 * k.eval(ds.get(1), ds.get(0));
        assert!((got[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn product_rows_reuses_cached_columns_without_fresh_evals() {
        let (ds, k) = fixture();
        let cost = CostModel::shared();
        let mut local = LocalAffinity::new(&ds, k, Arc::clone(&cost), vec![0, 1, 2]);
        let alpha = [0u32, 2];
        let w = [0.3, 0.7];
        // Nothing cached yet: both rows pay their two non-self pairs.
        let fresh = local.product_rows(&[1, 3], &alpha, &w);
        assert_eq!(cost.snapshot().kernel_evals, 4);
        // Cache column A_{β 1}; its evals land on the counter once.
        local.column(1);
        let after_column = cost.snapshot().kernel_evals;
        // Row 1 is now served from the cache — zero fresh evals, same
        // bits as the fresh path. Row 3 stays uncached and pays.
        let got = local.product_rows(&[1, 3], &alpha, &w);
        assert_eq!(
            cost.snapshot().kernel_evals,
            after_column + 2,
            "cached row must not be recounted; uncached row pays its two pairs"
        );
        assert_eq!(got[0].to_bits(), fresh[0].to_bits(), "cache reuse changed the value");
        assert_eq!(got[1].to_bits(), fresh[1].to_bits());
    }

    #[test]
    fn product_rows_ignores_cache_when_alpha_leaves_beta() {
        let (ds, k) = fixture();
        let cost = CostModel::shared();
        let mut local = LocalAffinity::new(&ds, k, Arc::clone(&cost), vec![0, 1]);
        local.column(0);
        let before = cost.snapshot().kernel_evals;
        // Alpha member 3 has no position in β, so the cached column
        // cannot serve row 0 and the fresh path must run (and count).
        let got = local.product_rows(&[0], &[1, 3], &[0.5, 0.5]);
        assert_eq!(cost.snapshot().kernel_evals, before + 2);
        let expect = 0.5 * k.eval(ds.get(1), ds.get(0)) + 0.5 * k.eval(ds.get(3), ds.get(0));
        assert!((got[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn density_matches_dense_quadratic_form() {
        let (ds, k) = fixture();
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        let local = LocalAffinity::new(&ds, k, CostModel::shared(), vec![0, 1, 2, 3]);
        let x = vec![0.1, 0.2, 0.3, 0.4];
        assert!((local.density(&x) - dense.quadratic_form(&x)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn rejects_duplicate_range() {
        let (ds, k) = fixture();
        let _ = LocalAffinity::new(&ds, k, CostModel::shared(), vec![0, 0]);
    }

    #[test]
    fn local_position_lookup() {
        let (ds, k) = fixture();
        let local = LocalAffinity::new(&ds, k, CostModel::shared(), vec![3, 1]);
        assert_eq!(local.local(3), Some(0));
        assert_eq!(local.local(1), Some(1));
        assert_eq!(local.local(0), None);
        assert_eq!(local.global(0), 3);
    }
}
