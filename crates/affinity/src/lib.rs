//! Vector/metric substrate and affinity-matrix structures for the ALID
//! reproduction (Chu et al., *ALID: Scalable Dominant Cluster Detection*,
//! VLDB 2015).
//!
//! Every method in the paper operates on the affinity graph
//! `G = (V, I, A)` whose edge weights follow the Laplacian kernel
//!
//! ```text
//! a_ij = exp(-k * ||v_i - v_j||_p)   for i != j,     a_ii = 0        (Eq. 1)
//! ```
//!
//! The crate provides:
//!
//! * [`Dataset`] — a flat, row-major store of `n` d-dimensional points;
//! * [`LpNorm`] / [`LaplacianKernel`] — the metric and the kernel of Eq. 1;
//! * [`DenseAffinity`] — the full `n x n` matrix the baselines need
//!   (`O(n^2)` time and space, the scalability bottleneck the paper
//!   attacks);
//! * [`LocalAffinity`] — the lazily-computed column group `A_beta_alpha`
//!   of Fig. 3 that makes LID cheap;
//! * [`SparseAffinity`] — a CSR matrix built from LSH neighbour lists,
//!   used for the sparsification study of Section 5.1;
//! * [`CostModel`] — a deterministic accounting of kernel evaluations and
//!   peak stored entries, so the runtime/memory *growth orders* of
//!   Table 1 and Figs. 7/9 can be reproduced hardware-independently;
//! * [`simplex`] — utilities for vectors on the standard simplex, the
//!   state space of the evolutionary-game dynamics;
//! * [`clustering`] — the shared `Clustering` output vocabulary;
//! * [`block`] — blocked, lane-per-pair batch kernel evaluation
//!   (bit-identical to scalar; opt-in explicit AVX via the
//!   `simd-lanes` feature) that every consumer above routes through,
//!   feeding measured per-pair cost into the exec-layer autotuner.

#![warn(missing_docs)]
pub mod block;
pub mod clustering;
pub mod cost;
pub mod dense;
pub mod fx;
pub mod kernel;
#[cfg(feature = "simd-lanes")]
pub mod lanes;
pub mod local;
pub mod simplex;
pub mod sparse;
pub mod vector;

pub use block::{BlockEval, KERNEL_BLOCK_TUNE};
pub use clustering::{Clustering, DetectedCluster};
pub use cost::{CostModel, CostSnapshot};
pub use dense::DenseAffinity;
pub use kernel::{LaplacianKernel, LpNorm};
pub use local::LocalAffinity;
pub use sparse::{SparseAffinity, SparseBuilder};
pub use vector::Dataset;
