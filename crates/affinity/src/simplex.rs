//! Utilities for vectors on the standard simplex.
//!
//! A subgraph of the affinity graph is represented by a point
//! `x` of the standard simplex `Δⁿ = { x : Σ x_i = 1, x_i ≥ 0 }`
//! (Section 3): `x_i` is the probabilistic membership of vertex `i`. The
//! evolutionary-game dynamics (RD, IID, LID) all evolve such vectors, and
//! they accumulate floating-point drift; these helpers centralise the
//! hygiene — clamping, renormalisation, support extraction — with one
//! shared tolerance.

/// Weights below this are treated as "not in the support". The invasion
/// model zeroes weights exactly when `eps = 1` (Theorem 2), but partial
/// invasions leave dust.
pub const SUPPORT_EPS: f64 = 1e-12;

/// Returns `true` if `x` lies on the simplex up to `tol` (component
/// non-negativity up to `-tol`, sum within `tol` of one).
pub fn is_on_simplex(x: &[f64], tol: f64) -> bool {
    let mut sum = 0.0;
    for &v in x {
        if v < -tol || !v.is_finite() {
            return false;
        }
        sum += v;
    }
    (sum - 1.0).abs() <= tol
}

/// Clamps tiny negatives to zero and rescales so the entries sum to one.
/// Vectors whose mass collapsed to zero are reset to the barycenter.
pub fn renormalize(x: &mut [f64]) {
    let mut sum = 0.0;
    for v in x.iter_mut() {
        if *v < SUPPORT_EPS {
            *v = 0.0;
        }
        sum += *v;
    }
    if sum <= 0.0 {
        let u = 1.0 / x.len() as f64;
        x.fill(u);
        return;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
}

/// Positions with weight above [`SUPPORT_EPS`] — the support `α` of the
/// subgraph.
pub fn support(x: &[f64]) -> Vec<usize> {
    x.iter().enumerate().filter(|(_, &v)| v > SUPPORT_EPS).map(|(i, _)| i).collect()
}

/// Number of positions with weight above [`SUPPORT_EPS`].
pub fn support_size(x: &[f64]) -> usize {
    x.iter().filter(|&&v| v > SUPPORT_EPS).count()
}

/// The barycenter of `Δⁿ` (uniform weights) — the canonical start point
/// of the full-graph dynamics (DS, IID baselines).
pub fn barycenter(n: usize) -> Vec<f64> {
    assert!(n > 0, "barycenter of the empty simplex");
    vec![1.0 / n as f64; n]
}

/// The vertex `s_i` of `Δⁿ` (all mass on position `i`) — ALID's
/// per-seed start point (Algorithm 2, line 1).
pub fn vertex(n: usize, i: usize) -> Vec<f64> {
    assert!(i < n, "vertex index {i} out of range {n}");
    let mut x = vec![0.0; n];
    x[i] = 1.0;
    x
}

/// In-place invasion `x ← (1-ε)x + ε y` (Eq. 5) for a full vector `y`.
///
/// # Panics
/// Panics in debug builds if lengths differ or `ε ∉ [0, 1]`.
pub fn invade(x: &mut [f64], y: &[f64], eps: f64) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert!((0.0..=1.0).contains(&eps), "invasion share {eps} outside [0,1]");
    for (xi, &yi) in x.iter_mut().zip(y) {
        *xi = (1.0 - eps) * *xi + eps * yi;
    }
}

/// In-place invasion by a *vertex*: `x ← (1-ε)x + ε s_i`. Cheaper than
/// materialising `s_i`.
pub fn invade_vertex(x: &mut [f64], i: usize, eps: f64) {
    debug_assert!((0.0..=1.0).contains(&eps), "invasion share {eps} outside [0,1]");
    for xi in x.iter_mut() {
        *xi *= 1.0 - eps;
    }
    x[i] += eps;
}

/// In-place invasion by the *co-vertex* `s_i(x)` of Eq. 7:
/// `x ← x + ε·μ·(s_i - x)` with `μ = x_i / (x_i - 1) < 0`, which drains
/// weight from vertex `i` into the rest of the subgraph. With `ε = 1` the
/// weight of `i` becomes exactly zero.
///
/// # Panics
/// Panics in debug builds if `x[i]` is not strictly inside `(0, 1)` (the
/// co-vertex is undefined at `x_i = 1`, and pointless at `x_i = 0`).
pub fn invade_covertex(x: &mut [f64], i: usize, eps: f64) {
    let xi = x[i];
    debug_assert!(xi > 0.0 && xi < 1.0, "co-vertex needs x_i in (0,1), got {xi}");
    let mu = xi / (xi - 1.0);
    let scale = 1.0 - eps * mu; // > 1 since mu < 0
    for v in x.iter_mut() {
        *v *= scale;
    }
    x[i] += eps * mu;
    if x[i] < SUPPORT_EPS {
        x[i] = 0.0;
    }
}

/// Dot product restricted to finite slices (plain, but placed here so the
/// dynamics read declaratively).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barycenter_is_on_simplex() {
        let x = barycenter(7);
        assert!(is_on_simplex(&x, 1e-12));
        assert_eq!(support_size(&x), 7);
    }

    #[test]
    fn vertex_is_on_simplex_with_singleton_support() {
        let x = vertex(5, 3);
        assert!(is_on_simplex(&x, 0.0));
        assert_eq!(support(&x), vec![3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vertex_rejects_out_of_range() {
        let _ = vertex(3, 3);
    }

    #[test]
    fn invade_interpolates() {
        let mut x = vec![1.0, 0.0];
        invade(&mut x, &[0.0, 1.0], 0.25);
        assert_eq!(x, vec![0.75, 0.25]);
        assert!(is_on_simplex(&x, 1e-12));
    }

    #[test]
    fn invade_vertex_matches_full_invade() {
        let mut a = vec![0.5, 0.3, 0.2];
        let mut b = a.clone();
        invade(&mut a, &[0.0, 1.0, 0.0], 0.4);
        invade_vertex(&mut b, 1, 0.4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-15);
        }
    }

    #[test]
    fn covertex_full_invasion_zeroes_the_vertex() {
        let mut x = vec![0.5, 0.3, 0.2];
        invade_covertex(&mut x, 1, 1.0);
        assert_eq!(x[1], 0.0);
        assert!(is_on_simplex(&x, 1e-12));
        // Remaining mass is redistributed proportionally: 0.5/0.7, 0.2/0.7.
        assert!((x[0] - 0.5 / 0.7).abs() < 1e-12);
        assert!((x[2] - 0.2 / 0.7).abs() < 1e-12);
    }

    #[test]
    fn covertex_partial_invasion_stays_on_simplex() {
        let mut x = vec![0.25, 0.25, 0.5];
        invade_covertex(&mut x, 2, 0.5);
        assert!(is_on_simplex(&x, 1e-12));
        assert!(x[2] < 0.5);
    }

    #[test]
    fn renormalize_fixes_drift_and_dust() {
        let mut x = vec![0.5 + 1e-14, -1e-15, 0.5];
        renormalize(&mut x);
        assert!(is_on_simplex(&x, 1e-12));
        assert_eq!(x[1], 0.0);
    }

    #[test]
    fn renormalize_resurrects_collapsed_vector() {
        let mut x = vec![0.0, 0.0];
        renormalize(&mut x);
        assert_eq!(x, vec![0.5, 0.5]);
    }

    #[test]
    fn is_on_simplex_rejects_negative_and_nan() {
        assert!(!is_on_simplex(&[1.1, -0.1], 1e-9));
        assert!(!is_on_simplex(&[f64::NAN, 1.0], 1e-9));
        assert!(is_on_simplex(&[0.4, 0.6], 1e-9));
    }
}
