//! Blocked, lane-per-pair batch evaluation of the Laplacian kernel —
//! the raw-speed frontier of ROADMAP item 3.
//!
//! Every inner loop of the reproduction (LID column pulls, CIVS
//! `product_rows`, the sparse/dense builders, LSH candidate
//! verification, the service reduce's kernel-affinity merge test)
//! bottoms out in one-pair-at-a-time [`LaplacianKernel::eval`] calls:
//! a bounds-checked `Dataset::get` per row, a strictly ordered
//! reduction over `dim`, an `exp`. This module evaluates **one query
//! vector against [`LANES`] rows at a time** straight out of flat
//! row-major storage: each group of four rows forms a *register tile*
//! with four independent accumulators, and the distance loop walks the
//! dimensions once, feeding all four. There is no staging buffer — an
//! earlier SoA-transpose-in-memory design spent as long scattering
//! each tile (used exactly once) as computing on it, and lost to the
//! scalar path outright.
//!
//! # Why the results are bit-for-bit identical to the scalar path
//!
//! Floating-point addition is not associative, so any scheme that
//! splits *one pair's* per-dimension reduction across lanes would
//! change the answer. Lane-per-pair never does: pair `j`'s accumulator
//! receives its `dim` terms in exactly the order the scalar
//! [`LpNorm::distance`] loop adds them, starting from the same `0.0` —
//! the four accumulators of a register tile belong to four *different*
//! pairs. The per-term arithmetic is identical too — subtract, square
//! (or `abs`/`powf`), add, with no FMA contraction (Rust never
//! contracts `a * b + c` implicitly), and the final
//! `sqrt`/`powf`/`exp` are the same scalar calls per pair. The
//! subtraction runs `row - query` where a scalar call site may compute
//! `query - row`; the difference is only the sign, and both `abs` and
//! squaring erase it exactly in IEEE arithmetic. Hence blocked output
//! == scalar output, bit for bit, for every norm, including
//! NaN/∞/-0.0/denormal inputs. The parity suite
//! (`tests/proptest_block.rs`) pins this.
//!
//! The always-on implementation below is plain Rust written so the
//! four accumulator chains are independent (superscalar hardware
//! overlaps them, and LLVM's SLP vectorizer may pack them); the
//! `simd-lanes` cargo feature swaps in explicit AVX intrinsics (see
//! [`crate::lanes`]) with the same layout and the same guarantee.
//!
//! # Autotuner feedback
//!
//! Batch evaluations time themselves and feed the measured per-pair
//! nanoseconds into [`KERNEL_BLOCK_TUNE`], a [`TuneState`] shared by
//! every blocked call site. Exec-layer phases that chunk over kernel
//! evaluations (e.g. the sparse builder) size their steals from this
//! handle, so chunk sizes track the *post-SIMD* kernel cost instead of
//! a guess calibrated on the scalar path.

use std::time::Instant;

use alid_exec::TuneState;

use crate::kernel::{LaplacianKernel, LpNorm};
use crate::vector::Dataset;

/// Measured per-pair cost of blocked kernel evaluation, shared by all
/// blocked call sites. Exec phases whose unit of work is "one kernel
/// evaluation" draw their chunk sizes from here.
pub static KERNEL_BLOCK_TUNE: TuneState = TuneState::new();

/// Rows per register tile: `f64x4`, one AVX register.
pub const LANES: usize = 4;

/// Batches smaller than this skip the timing fold — at a handful of
/// pairs the `Instant` clock reads cost more than the arithmetic and
/// would pollute the per-pair EMA with pure measurement overhead.
const TUNE_MIN_PAIRS: usize = 32;

/// Default outer-block height (rows handed to the tile loop per
/// chunk) for dimension `dim`: targets ~16 KiB of row data (half a
/// typical 32 KiB L1d), clamped to `[LANES, 256]` and rounded down to
/// a multiple of [`LANES`]. Purely a performance knob — **any** block
/// size produces bit-identical results, because blocking only decides
/// how many independent pairs are processed per chunk (the bench
/// harness sweeps it).
pub fn default_block_rows(dim: usize) -> usize {
    const BLOCK_BUDGET_F64S: usize = 2048;
    let b = (BLOCK_BUDGET_F64S / dim.max(1)).clamp(LANES, 256);
    b - (b % LANES)
}

/// Reusable scratch for blocked evaluation: a gather buffer for
/// non-contiguous row sets. Create one per worker (or reuse across
/// calls) to amortize the allocation.
#[derive(Debug, Default)]
pub struct BlockEval {
    gather: Vec<f64>,
}

impl BlockEval {
    /// Fresh scratch with no capacity reserved yet. Also publishes
    /// [`KERNEL_BLOCK_TUNE`] into the obs registry (idempotent), so
    /// any process that evaluates kernels exposes its tuner state.
    pub fn new() -> Self {
        alid_exec::tune::export_tune("kernel_block", &KERNEL_BLOCK_TUNE);
        Self::default()
    }

    /// Evaluates `kernel` between `query` and every row of `rows`
    /// (flat row-major, `out.len()` rows of `dim` floats), writing the
    /// affinities into `out`. Bit-identical to calling
    /// [`LaplacianKernel::eval`] per row.
    ///
    /// Feeds the measured per-pair cost into [`KERNEL_BLOCK_TUNE`]
    /// when the batch is large enough to time meaningfully.
    ///
    /// # Panics
    /// Panics if `rows.len() != out.len() * dim` or
    /// `query.len() != dim`.
    pub fn eval_rows(
        &mut self,
        kernel: &LaplacianKernel,
        dim: usize,
        rows: &[f64],
        query: &[f64],
        out: &mut [f64],
    ) {
        self.eval_rows_blocked(kernel, dim, rows, query, out, default_block_rows(dim));
    }

    /// [`Self::eval_rows`] with an explicit block height — a pure
    /// performance knob (the bench harness sweeps it); every block size
    /// yields identical bits.
    ///
    /// # Panics
    /// Panics if `block == 0`, `rows.len() != out.len() * dim` or
    /// `query.len() != dim`.
    pub fn eval_rows_blocked(
        &mut self,
        kernel: &LaplacianKernel,
        dim: usize,
        rows: &[f64],
        query: &[f64],
        out: &mut [f64],
        block: usize,
    ) {
        let n = out.len();
        let timed = n >= TUNE_MIN_PAIRS;
        // alid-lint: allow(no-raw-time) -- feeds only the block autotuner; the tuned block size never changes output bytes
        let started = timed.then(Instant::now);
        block_distances(kernel.norm, dim, rows, query, out, block);
        for o in out.iter_mut() {
            *o = (-kernel.k * *o).exp();
        }
        if let Some(t0) = started {
            KERNEL_BLOCK_TUNE.record(n, t0.elapsed().as_nanos() as u64);
        }
    }

    /// [`Self::eval_rows`] gathering the rows of `ds` named by `ids`
    /// first (for non-contiguous row sets: a β range, LSH candidates).
    ///
    /// # Panics
    /// Panics if `out.len() != ids.len()`, `query.len() != ds.dim()`,
    /// or any id is out of range.
    pub fn eval_indexed(
        &mut self,
        kernel: &LaplacianKernel,
        ds: &Dataset,
        ids: &[u32],
        query: &[f64],
        out: &mut [f64],
    ) {
        gather_rows(&mut self.gather, ds, ids);
        let n = out.len();
        let timed = n >= TUNE_MIN_PAIRS;
        // alid-lint: allow(no-raw-time) -- feeds only the block autotuner; the tuned block size never changes output bytes
        let started = timed.then(Instant::now);
        let block = default_block_rows(ds.dim());
        block_distances(kernel.norm, ds.dim(), &self.gather, query, out, block);
        for o in out.iter_mut() {
            *o = (-kernel.k * *o).exp();
        }
        if let Some(t0) = started {
            KERNEL_BLOCK_TUNE.record(n, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Distances `||row_j - query||` for every row of flat row-major
    /// `rows`, bit-identical to [`LpNorm::distance`] per row. No cost
    /// or tuner side effects — distance-only callers (ROI membership
    /// tests) account for themselves.
    ///
    /// # Panics
    /// Panics if `rows.len() != out.len() * dim` or
    /// `query.len() != dim`.
    pub fn distances_rows(
        &mut self,
        norm: LpNorm,
        dim: usize,
        rows: &[f64],
        query: &[f64],
        out: &mut [f64],
    ) {
        block_distances(norm, dim, rows, query, out, default_block_rows(dim));
    }

    /// [`Self::distances_rows`] over the rows of `ds` named by `ids`.
    ///
    /// # Panics
    /// Panics if `out.len() != ids.len()`, `query.len() != ds.dim()`,
    /// or any id is out of range.
    pub fn distances_indexed(
        &mut self,
        norm: LpNorm,
        ds: &Dataset,
        ids: &[u32],
        query: &[f64],
        out: &mut [f64],
    ) {
        gather_rows(&mut self.gather, ds, ids);
        let block = default_block_rows(ds.dim());
        block_distances(norm, ds.dim(), &self.gather, query, out, block);
    }
}

/// Packs the rows of `ds` named by `ids` into `buf`, densely.
fn gather_rows(buf: &mut Vec<f64>, ds: &Dataset, ids: &[u32]) {
    buf.clear();
    buf.reserve(ids.len() * ds.dim());
    for &id in ids {
        buf.extend_from_slice(ds.get(id as usize));
    }
}

/// The blocking engine: hands `block` rows at a time to the
/// lane-per-pair tile loops.
fn block_distances(
    norm: LpNorm,
    dim: usize,
    rows: &[f64],
    query: &[f64],
    out: &mut [f64],
    block: usize,
) {
    let n = out.len();
    assert_eq!(rows.len(), n * dim, "rows must hold out.len() rows of dim floats");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert!(block >= 1, "block height must be at least 1");
    if n == 0 {
        return;
    }
    let mut start = 0;
    while start < n {
        let b = block.min(n - start);
        let rows_blk = &rows[start * dim..(start + b) * dim];
        let out_blk = &mut out[start..start + b];
        match norm {
            LpNorm::L2 => l2_rows(rows_blk, dim, query, out_blk),
            LpNorm::L1 => l1_rows(rows_blk, dim, query, out_blk),
            LpNorm::P(p) => p_rows(rows_blk, dim, query, p, out_blk),
        }
        start += b;
    }
}

/// L2 distances for `out.len()` contiguous row-major rows. Register
/// tiles of [`LANES`] rows: four independent accumulators, each
/// receiving its own pair's squared terms in dimension order — the
/// scalar loop's order — then the same final `sqrt` per pair.
fn l2_rows(rows: &[f64], dim: usize, query: &[f64], out: &mut [f64]) {
    #[cfg(feature = "simd-lanes")]
    if crate::lanes::l2_rows(rows, dim, query, out) {
        return;
    }
    let query = &query[..dim];
    let b = out.len();
    let mut j = 0;
    while j + LANES <= b {
        let (r0, rest) = rows[j * dim..(j + LANES) * dim].split_at(dim);
        let (r1, rest) = rest.split_at(dim);
        let (r2, r3) = rest.split_at(dim);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for d in 0..dim {
            let q = query[d];
            let d0 = r0[d] - q;
            let d1 = r1[d] - q;
            let d2 = r2[d] - q;
            let d3 = r3[d] - q;
            a0 += d0 * d0;
            a1 += d1 * d1;
            a2 += d2 * d2;
            a3 += d3 * d3;
        }
        out[j] = a0.sqrt();
        out[j + 1] = a1.sqrt();
        out[j + 2] = a2.sqrt();
        out[j + 3] = a3.sqrt();
        j += LANES;
    }
    for t in j..b {
        let row = &rows[t * dim..(t + 1) * dim];
        let mut acc = 0.0;
        for d in 0..dim {
            let diff = row[d] - query[d];
            acc += diff * diff;
        }
        out[t] = acc.sqrt();
    }
}

/// L1 distances; same register-tile layout.
fn l1_rows(rows: &[f64], dim: usize, query: &[f64], out: &mut [f64]) {
    #[cfg(feature = "simd-lanes")]
    if crate::lanes::l1_rows(rows, dim, query, out) {
        return;
    }
    let query = &query[..dim];
    let b = out.len();
    let mut j = 0;
    while j + LANES <= b {
        let (r0, rest) = rows[j * dim..(j + LANES) * dim].split_at(dim);
        let (r1, rest) = rest.split_at(dim);
        let (r2, r3) = rest.split_at(dim);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for d in 0..dim {
            let q = query[d];
            a0 += (r0[d] - q).abs();
            a1 += (r1[d] - q).abs();
            a2 += (r2[d] - q).abs();
            a3 += (r3[d] - q).abs();
        }
        out[j] = a0;
        out[j + 1] = a1;
        out[j + 2] = a2;
        out[j + 3] = a3;
        j += LANES;
    }
    for t in j..b {
        let row = &rows[t * dim..(t + 1) * dim];
        let mut acc = 0.0;
        for d in 0..dim {
            acc += (row[d] - query[d]).abs();
        }
        out[t] = acc;
    }
}

/// General Minkowski distances. `powf` is a scalar libm call per term
/// and dwarfs everything else, so this is a straight per-row loop (no
/// register tiling, no explicit-lanes variant) — the win here is the
/// bounds-check-free flat-storage walk.
fn p_rows(rows: &[f64], dim: usize, query: &[f64], p: f64, out: &mut [f64]) {
    let query = &query[..dim];
    for (t, o) in out.iter_mut().enumerate() {
        let row = &rows[t * dim..(t + 1) * dim];
        let mut acc = 0.0;
        for d in 0..dim {
            acc += (row[d] - query[d]).abs().powf(p);
        }
        *o = acc.powf(1.0 / p);
    }
}

/// Whether explicit SIMD lanes are compiled in **and** usable on this
/// CPU. `false` means blocked evaluation runs the portable register-
/// tile loop (results are identical either way).
pub fn lanes_active() -> bool {
    #[cfg(feature = "simd-lanes")]
    {
        crate::lanes::available()
    }
    #[cfg(not(feature = "simd-lanes"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> LaplacianKernel {
        LaplacianKernel::new(0.7, LpNorm::L2)
    }

    fn dataset(n: usize, dim: usize) -> Dataset {
        // Deterministic, sign-mixed, non-round values.
        let data: Vec<f64> =
            (0..n * dim).map(|i| ((i * 2_654_435_761 % 1_000) as f64 - 500.0) / 97.0).collect();
        Dataset::from_flat(dim, data)
    }

    #[test]
    fn eval_rows_is_bit_identical_to_scalar() {
        for dim in [1usize, 3, 8, 33] {
            let ds = dataset(70, dim);
            let k = kernel();
            let query = ds.get(0).to_vec();
            let mut out = vec![0.0; ds.len()];
            BlockEval::new().eval_rows(&k, dim, ds.as_flat(), &query, &mut out);
            for (i, &got) in out.iter().enumerate() {
                let want = k.eval(ds.get(i), &query);
                assert_eq!(got.to_bits(), want.to_bits(), "dim={dim} row={i}");
            }
        }
    }

    #[test]
    fn distances_match_scalar_for_every_norm() {
        let dim = 5;
        let ds = dataset(41, dim);
        let query = ds.get(7).to_vec();
        for norm in [LpNorm::L1, LpNorm::L2, LpNorm::P(3.0)] {
            let mut out = vec![0.0; ds.len()];
            BlockEval::new().distances_rows(norm, dim, ds.as_flat(), &query, &mut out);
            for (i, &got) in out.iter().enumerate() {
                let want = norm.distance(ds.get(i), &query);
                assert_eq!(got.to_bits(), want.to_bits(), "{norm:?} row={i}");
            }
        }
    }

    #[test]
    fn indexed_variants_match_direct_gather() {
        let dim = 4;
        let ds = dataset(30, dim);
        let k = kernel();
        let ids: Vec<u32> = vec![3, 29, 0, 17, 17, 5];
        let query = ds.get(11).to_vec();
        let mut out = vec![0.0; ids.len()];
        let mut scratch = BlockEval::new();
        scratch.eval_indexed(&k, &ds, &ids, &query, &mut out);
        for (&id, &got) in ids.iter().zip(&out) {
            let want = k.eval(ds.get(id as usize), &query);
            assert_eq!(got.to_bits(), want.to_bits());
        }
        let mut dists = vec![0.0; ids.len()];
        scratch.distances_indexed(k.norm, &ds, &ids, &query, &mut dists);
        for (&id, &got) in ids.iter().zip(&dists) {
            let want = k.norm.distance(ds.get(id as usize), &query);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn large_batches_feed_the_tuner() {
        let before = KERNEL_BLOCK_TUNE.snapshot().samples;
        let dim = 16;
        let ds = dataset(256, dim);
        let query = ds.get(0).to_vec();
        let mut out = vec![0.0; ds.len()];
        BlockEval::new().eval_rows(&kernel(), dim, ds.as_flat(), &query, &mut out);
        let snap = KERNEL_BLOCK_TUNE.snapshot();
        assert!(snap.samples > before, "a 256-pair batch must land a sample");
        assert!(snap.per_item_ns > 0.0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut out: Vec<f64> = Vec::new();
        BlockEval::new().eval_rows(&kernel(), 8, &[], &[0.0; 8], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn default_block_rows_is_lane_aligned_and_bounded() {
        for dim in [1usize, 2, 7, 32, 128, 1000, 10_000] {
            let b = default_block_rows(dim);
            assert!(b >= LANES, "dim={dim}");
            assert!(b <= 256, "dim={dim}");
            assert_eq!(b % LANES, 0, "dim={dim}");
        }
    }

    #[test]
    #[should_panic(expected = "rows must hold")]
    fn rejects_mismatched_row_buffer() {
        let mut out = vec![0.0; 3];
        BlockEval::new().eval_rows(&kernel(), 4, &[0.0; 7], &[0.0; 4], &mut out);
    }
}
