//! Explicit `f64x4` lanes for the blocked kernel (the opt-in
//! `simd-lanes` cargo feature).
//!
//! The portable register-tile loops in [`crate::block`] already keep
//! four independent accumulator chains in flight; this module spells
//! the same layout out in AVX intrinsics for the cases where the
//! portable code does not get packed (older LLVM cost models, the
//! baseline x86-64 target's SSE2-only packing). Each AVX register
//! holds **four different pairs' accumulators**; dimension terms are
//! added in ascending `d` order per pair, exactly like the scalar
//! loop. The main loop loads four dimensions of four row-major rows
//! and transposes them 4×4 *in registers* (`vunpcklpd`/`vunpckhpd` +
//! `vperm2f128`) — shuffles are exact bit movements, so the values
//! entering the arithmetic are untouched. The instruction set used —
//! `vsubpd`, `vmulpd`, `vaddpd`, `vandpd` (for `abs`), `vsqrtpd` — is
//! IEEE-754 correctly rounded per lane, and **no FMA is ever emitted**
//! (the scalar path rounds after the multiply and after the add, so a
//! fused contraction would change results). Bit-for-bit parity with
//! both the scalar and the portable blocked path is pinned by
//! `tests/proptest_block.rs`, which CI runs with this feature enabled.
//!
//! On x86-64 the AVX path is selected at runtime via
//! `is_x86_feature_detected!`; anywhere else (or when the CPU lacks
//! AVX) the hooks report "not handled" and the portable loops run.

/// `true` when the explicit AVX path will actually execute on this CPU.
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
static AVX: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

/// L2 distances for `out.len()` contiguous row-major rows, explicit
/// lanes. Returns `false` when the platform cannot run the intrinsics
/// and the caller must fall back to the portable loop.
pub fn l2_rows(rows: &[f64], dim: usize, query: &[f64], out: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { x86::l2_rows_avx(rows, dim, query, out) };
            return true;
        }
    }
    let _ = (rows, dim, query, out);
    false
}

/// L1 distances for contiguous row-major rows, explicit lanes. Same
/// fallback contract as [`l2_rows`].
pub fn l1_rows(rows: &[f64], dim: usize, query: &[f64], out: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { x86::l1_rows_avx(rows, dim, query, out) };
            return true;
        }
    }
    let _ = (rows, dim, query, out);
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_andnot_pd, _mm256_loadu_pd, _mm256_mul_pd,
        _mm256_permute2f128_pd, _mm256_set1_pd, _mm256_set_pd, _mm256_setzero_pd, _mm256_sqrt_pd,
        _mm256_storeu_pd, _mm256_sub_pd, _mm256_unpackhi_pd, _mm256_unpacklo_pd,
    };

    /// 4×4 in-register transpose: `v{0..3}` hold four consecutive
    /// dimensions of pairs 0..3; the result `t_k` holds dimension
    /// `d + k` of all four pairs (lane `j` = pair `j`). Pure bit
    /// movement, no arithmetic.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX.
    #[inline(always)]
    unsafe fn transpose4(
        v0: __m256d,
        v1: __m256d,
        v2: __m256d,
        v3: __m256d,
    ) -> (__m256d, __m256d, __m256d, __m256d) {
        let lo01 = _mm256_unpacklo_pd(v0, v1); // [p0d, p1d, p0d+2, p1d+2]
        let hi01 = _mm256_unpackhi_pd(v0, v1); // [p0d+1, p1d+1, p0d+3, p1d+3]
        let lo23 = _mm256_unpacklo_pd(v2, v3);
        let hi23 = _mm256_unpackhi_pd(v2, v3);
        (
            _mm256_permute2f128_pd(lo01, lo23, 0x20), // dim d   of pairs 0..3
            _mm256_permute2f128_pd(hi01, hi23, 0x20), // dim d+1
            _mm256_permute2f128_pd(lo01, lo23, 0x31), // dim d+2
            _mm256_permute2f128_pd(hi01, hi23, 0x31), // dim d+3
        )
    }

    /// Per-lane accumulation of four pairs' L2 sums straight from
    /// row-major storage, then one packed (correctly rounded) square
    /// root. Dimension terms are added in ascending order per lane.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX.
    #[target_feature(enable = "avx")]
    pub unsafe fn l2_rows_avx(rows: &[f64], dim: usize, query: &[f64], out: &mut [f64]) {
        let b = out.len();
        debug_assert_eq!(rows.len(), dim * b);
        debug_assert_eq!(query.len(), dim);
        let mut j = 0;
        while j + 4 <= b {
            // SAFETY: j + 4 <= b keeps all four row bases in bounds.
            let (r0, r1, r2, r3) = unsafe {
                let r0 = rows.as_ptr().add(j * dim);
                (r0, r0.add(dim), r0.add(2 * dim), r0.add(3 * dim))
            };
            let mut acc: __m256d = _mm256_setzero_pd();
            let mut d = 0;
            while d + 4 <= dim {
                // SAFETY: d + 4 <= dim keeps every load inside its row
                // (and inside `query`).
                let (t0, t1, t2, t3) = unsafe {
                    let q = _mm256_loadu_pd(query.as_ptr().add(d));
                    let v0 = _mm256_sub_pd(_mm256_loadu_pd(r0.add(d)), q);
                    let v1 = _mm256_sub_pd(_mm256_loadu_pd(r1.add(d)), q);
                    let v2 = _mm256_sub_pd(_mm256_loadu_pd(r2.add(d)), q);
                    let v3 = _mm256_sub_pd(_mm256_loadu_pd(r3.add(d)), q);
                    transpose4(v0, v1, v2, v3)
                };
                acc = _mm256_add_pd(acc, _mm256_mul_pd(t0, t0));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(t1, t1));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(t2, t2));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(t3, t3));
                d += 4;
            }
            while d < dim {
                // SAFETY: d < dim keeps the scalar loads in bounds;
                // set_pd takes arguments high-lane-first.
                let (q, v) = unsafe {
                    (
                        _mm256_set1_pd(*query.get_unchecked(d)),
                        _mm256_set_pd(*r3.add(d), *r2.add(d), *r1.add(d), *r0.add(d)),
                    )
                };
                let diff = _mm256_sub_pd(v, q);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
                d += 1;
            }
            // SAFETY: j + 4 <= b == out.len().
            unsafe { _mm256_storeu_pd(out.as_mut_ptr().add(j), _mm256_sqrt_pd(acc)) };
            j += 4;
        }
        // Tail pairs (< 4 of them): plain scalar, same per-pair order.
        for t in j..b {
            let row = &rows[t * dim..(t + 1) * dim];
            let mut acc = 0.0;
            for (d, &q) in query.iter().enumerate() {
                let diff = row[d] - q;
                acc += diff * diff;
            }
            out[t] = acc.sqrt();
        }
    }

    /// Per-lane accumulation of four pairs' L1 sums; `abs` is a sign
    /// mask, which is exact (applied before the transpose — shuffles
    /// move bits untouched).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX.
    #[target_feature(enable = "avx")]
    pub unsafe fn l1_rows_avx(rows: &[f64], dim: usize, query: &[f64], out: &mut [f64]) {
        let b = out.len();
        debug_assert_eq!(rows.len(), dim * b);
        debug_assert_eq!(query.len(), dim);
        let sign = _mm256_set1_pd(-0.0);
        let mut j = 0;
        while j + 4 <= b {
            // SAFETY: j + 4 <= b keeps all four row bases in bounds.
            let (r0, r1, r2, r3) = unsafe {
                let r0 = rows.as_ptr().add(j * dim);
                (r0, r0.add(dim), r0.add(2 * dim), r0.add(3 * dim))
            };
            let mut acc: __m256d = _mm256_setzero_pd();
            let mut d = 0;
            while d + 4 <= dim {
                // SAFETY: d + 4 <= dim keeps every load inside its row
                // (and inside `query`).
                let (t0, t1, t2, t3) = unsafe {
                    let q = _mm256_loadu_pd(query.as_ptr().add(d));
                    let v0 = _mm256_andnot_pd(sign, _mm256_sub_pd(_mm256_loadu_pd(r0.add(d)), q));
                    let v1 = _mm256_andnot_pd(sign, _mm256_sub_pd(_mm256_loadu_pd(r1.add(d)), q));
                    let v2 = _mm256_andnot_pd(sign, _mm256_sub_pd(_mm256_loadu_pd(r2.add(d)), q));
                    let v3 = _mm256_andnot_pd(sign, _mm256_sub_pd(_mm256_loadu_pd(r3.add(d)), q));
                    transpose4(v0, v1, v2, v3)
                };
                acc = _mm256_add_pd(acc, t0);
                acc = _mm256_add_pd(acc, t1);
                acc = _mm256_add_pd(acc, t2);
                acc = _mm256_add_pd(acc, t3);
                d += 4;
            }
            while d < dim {
                // SAFETY: d < dim keeps the scalar loads in bounds;
                // set_pd takes arguments high-lane-first.
                let (q, v) = unsafe {
                    (
                        _mm256_set1_pd(*query.get_unchecked(d)),
                        _mm256_set_pd(*r3.add(d), *r2.add(d), *r1.add(d), *r0.add(d)),
                    )
                };
                acc = _mm256_add_pd(acc, _mm256_andnot_pd(sign, _mm256_sub_pd(v, q)));
                d += 1;
            }
            // SAFETY: j + 4 <= b == out.len().
            unsafe { _mm256_storeu_pd(out.as_mut_ptr().add(j), acc) };
            j += 4;
        }
        for t in j..b {
            let row = &rows[t * dim..(t + 1) * dim];
            let mut acc = 0.0;
            for (d, &q) in query.iter().enumerate() {
                acc += (row[d] - q).abs();
            }
            out[t] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::block::BlockEval;
    use crate::kernel::{LaplacianKernel, LpNorm};
    use crate::vector::Dataset;

    #[test]
    fn lanes_path_matches_scalar_bitwise_when_active() {
        // With the feature on, eval_rows routes through this module on
        // AVX hardware; either way the result must equal scalar.
        let dim = 7;
        let data: Vec<f64> = (0..dim * 53).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let ds = Dataset::from_flat(dim, data);
        let k = LaplacianKernel::new(1.3, LpNorm::L2);
        let query = ds.get(5).to_vec();
        let mut out = vec![0.0; ds.len()];
        BlockEval::new().eval_rows(&k, dim, ds.as_flat(), &query, &mut out);
        for (i, &got) in out.iter().enumerate() {
            assert_eq!(got.to_bits(), k.eval(ds.get(i), &query).to_bits(), "row {i}");
        }
    }

    #[test]
    fn availability_probe_is_stable() {
        assert_eq!(super::available(), super::available());
    }
}
