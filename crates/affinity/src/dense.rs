//! The full `n x n` affinity matrix.
//!
//! This is the structure whose `O(n^2)` time and space cost motivates the
//! whole paper: DS, IID, SEA and AP all need it (Section 2). We store the
//! full symmetric matrix (both triangles) so that row access and
//! mat-vecs are contiguous; the cost model records `n*(n-1)/2` kernel
//! evaluations (symmetry is exploited when *computing*) and `n^2` stored
//! entries (what a dense solver actually holds).

use std::sync::Arc;

use alid_exec::{ExecPolicy, SharedSlice};

use crate::block::BlockEval;
use crate::cost::CostModel;
use crate::kernel::LaplacianKernel;
use crate::vector::Dataset;

/// Dense symmetric affinity matrix with zero diagonal.
#[derive(Debug)]
pub struct DenseAffinity {
    n: usize,
    a: Vec<f64>,
    cost: Arc<CostModel>,
}

impl DenseAffinity {
    /// Computes the full matrix for `ds` under `kernel`.
    ///
    /// Cost: `n(n-1)/2` kernel evaluations, `n^2` stored entries.
    pub fn build(ds: &Dataset, kernel: &LaplacianKernel, cost: Arc<CostModel>) -> Self {
        let n = ds.len();
        let dim = ds.dim();
        let flat = ds.as_flat();
        let mut a = vec![0.0; n * n];
        let mut scratch = BlockEval::new();
        let mut vals = vec![0.0; n.saturating_sub(1)];
        for i in 0..n {
            // Row i owns pairs (i, i+1..n), whose rows are contiguous
            // in flat storage — the blocked evaluator's best case.
            let tail = n - i - 1;
            if tail == 0 {
                break;
            }
            let vi = ds.get(i);
            scratch.eval_rows(kernel, dim, &flat[(i + 1) * dim..], vi, &mut vals[..tail]);
            a[i * n + i + 1..(i + 1) * n].copy_from_slice(&vals[..tail]);
            for (off, &v) in vals[..tail].iter().enumerate() {
                a[(i + 1 + off) * n + i] = v;
            }
        }
        cost.record_kernel_evals((n as u64).saturating_mul((n as u64).saturating_sub(1)) / 2);
        cost.alloc_entries((n * n) as u64);
        Self { n, a, cost }
    }

    /// Computes the full matrix with `threads` worker threads splitting
    /// the row range (each pair still evaluated once; the symmetric
    /// reflection is written by the owner of the smaller row index).
    /// Cost accounting matches [`DenseAffinity::build`].
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn build_parallel(
        ds: &Dataset,
        kernel: &LaplacianKernel,
        cost: Arc<CostModel>,
        threads: usize,
    ) -> Self {
        Self::build_with(ds, kernel, cost, ExecPolicy::workers(threads))
    }

    /// Computes the full matrix under an execution policy. Every policy
    /// produces the byte-identical matrix of [`DenseAffinity::build`]:
    /// each cell's value depends only on its row/column pair, and the
    /// exec layer's strided partition hands row `i` (and its symmetric
    /// reflection) to exactly one worker.
    pub fn build_with(
        ds: &Dataset,
        kernel: &LaplacianKernel,
        cost: Arc<CostModel>,
        exec: ExecPolicy,
    ) -> Self {
        let n = ds.len();
        let dim = ds.dim();
        let flat = ds.as_flat();
        let mut a = vec![0.0; n * n];
        if n > 0 {
            // Row i owns pairs (i, i+1..n) — a triangular workload the
            // exec layer's strided partition balances across workers.
            // Each worker runs the blocked evaluator over the (already
            // contiguous) tail rows with its own scratch.
            let shared = SharedSlice::new(&mut a);
            exec.for_each_index_with(
                n,
                || (BlockEval::new(), vec![0.0; n.saturating_sub(1)]),
                |(scratch, vals), i| {
                    let tail = n - i - 1;
                    if tail == 0 {
                        return;
                    }
                    let vi = ds.get(i);
                    scratch.eval_rows(kernel, dim, &flat[(i + 1) * dim..], vi, &mut vals[..tail]);
                    for (off, &v) in vals[..tail].iter().enumerate() {
                        let j = i + 1 + off;
                        // SAFETY: cells (i,j) and (j,i) with i < j are
                        // written exactly once, by the unique worker
                        // that the exec layer handed row i to.
                        unsafe {
                            shared.write(i * n + j, v);
                            shared.write(j * n + i, v);
                        }
                    }
                },
            );
        }
        cost.record_kernel_evals((n as u64).saturating_mul((n as u64).saturating_sub(1)) / 2);
        cost.alloc_entries((n * n) as u64);
        Self { n, a, cost }
    }

    /// Wraps an externally built matrix (used by tests and by the
    /// sparsification study to densify small sparse matrices).
    ///
    /// # Panics
    /// Panics if `a.len() != n * n`.
    pub fn from_raw(n: usize, a: Vec<f64>, cost: Arc<CostModel>) -> Self {
        assert_eq!(a.len(), n * n, "matrix buffer must be n^2");
        cost.alloc_entries((n * n) as u64);
        Self { n, a, cost }
    }

    /// Matrix order `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `a_ij`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.a[i * self.n..(i + 1) * self.n]
    }

    /// `out = A x`.
    ///
    /// # Panics
    /// Panics in debug builds on length mismatches.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        self.matvec_with(x, out, ExecPolicy::sequential());
    }

    /// `out = A x` with rows fanned out over the exec layer. Row `i`'s
    /// inner product is accumulated in the same element order by
    /// exactly one worker, so every policy produces the byte-identical
    /// vector (the spectral baseline's power iteration relies on this).
    ///
    /// # Panics
    /// Panics in debug builds on length mismatches.
    pub fn matvec_with(&self, x: &[f64], out: &mut [f64], exec: ExecPolicy) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        let shared = SharedSlice::new(out);
        exec.for_each_index(self.n, |i| {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, &xv) in row.iter().zip(x) {
                acc += a * xv;
            }
            // SAFETY: slot i is written only by the worker that owns
            // index i.
            unsafe { shared.write(i, acc) };
        });
    }

    /// `A x` restricted to the support of `x`: skips zero weights, which
    /// makes peeling-phase mat-vecs proportional to the support size.
    ///
    /// Zero entries are filtered by the exact compare `x[j] == 0.0`
    /// under the same contract as
    /// [`crate::sparse::SparseAffinity::matvec_support`]: ±0.0 is
    /// skipped (bit-exactly harmless), denormals are accumulated.
    pub fn matvec_support(&self, x: &[f64], support: &[usize], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n);
        out.fill(0.0);
        for &j in support {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let row = self.row(j); // symmetric: column j == row j
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * xj;
            }
        }
    }

    /// The quadratic form `π(x) = xᵀ A x` (the subgraph density, Eq. 2).
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n);
        let mut total = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, &xj) in row.iter().zip(x) {
                acc += a * xj;
            }
            total += xi * acc;
        }
        total
    }

    /// Average intra-cluster affinity under uniform weights over
    /// `members` — the density a partitioning method reports for a
    /// cluster it found.
    pub fn uniform_density(&self, members: &[u32]) -> f64 {
        let m = members.len();
        if m < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                acc += self.get(i as usize, j as usize);
            }
        }
        2.0 * acc / (m as f64 * m as f64)
    }

    /// The shared cost model.
    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }
}

impl Drop for DenseAffinity {
    fn drop(&mut self) {
        self.cost.free_entries((self.n * self.n) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LpNorm;

    fn small() -> (Dataset, LaplacianKernel, Arc<CostModel>) {
        // Three collinear points at 0, 1, 3.
        let ds = Dataset::from_flat(1, vec![0.0, 1.0, 3.0]);
        (ds, LaplacianKernel::new(1.0, LpNorm::L2), CostModel::shared())
    }

    #[test]
    fn build_is_symmetric_with_zero_diagonal() {
        let (ds, k, cost) = small();
        let a = DenseAffinity::build(&ds, &k, cost);
        for i in 0..3 {
            assert_eq!(a.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(a.get(i, j), a.get(j, i));
            }
        }
        assert!((a.get(0, 1) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((a.get(0, 2) - (-3.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let mut flat = Vec::new();
        for i in 0..40 {
            flat.push((i as f64 * 0.37).sin() * 3.0);
            flat.push((i as f64 * 0.73).cos() * 2.0);
        }
        let ds = Dataset::from_flat(2, flat);
        let k = LaplacianKernel::new(0.9, LpNorm::L2);
        let serial = DenseAffinity::build(&ds, &k, CostModel::shared());
        for threads in [1usize, 2, 3, 7] {
            let cost = CostModel::shared();
            let par = DenseAffinity::build_parallel(&ds, &k, Arc::clone(&cost), threads);
            for i in 0..ds.len() {
                for j in 0..ds.len() {
                    assert_eq!(
                        serial.get(i, j),
                        par.get(i, j),
                        "mismatch at ({i},{j}) with {threads} threads"
                    );
                }
            }
            assert_eq!(cost.snapshot().kernel_evals, 40 * 39 / 2);
        }
    }

    #[test]
    fn parallel_build_empty_dataset() {
        let ds = Dataset::new(2);
        let k = LaplacianKernel::new(1.0, LpNorm::L2);
        let a = DenseAffinity::build_parallel(&ds, &k, CostModel::shared(), 4);
        assert_eq!(a.n(), 0);
    }

    #[test]
    fn cost_records_evals_and_entries() {
        let (ds, k, cost) = small();
        let a = DenseAffinity::build(&ds, &k, Arc::clone(&cost));
        let snap = cost.snapshot();
        assert_eq!(snap.kernel_evals, 3); // 3 choose 2
        assert_eq!(snap.entries_current, 9);
        drop(a);
        assert_eq!(cost.snapshot().entries_current, 0);
        assert_eq!(cost.snapshot().entries_peak, 9);
    }

    #[test]
    fn matvec_matches_manual() {
        let (ds, k, cost) = small();
        let a = DenseAffinity::build(&ds, &k, cost);
        let x = vec![0.5, 0.5, 0.0];
        let mut out = vec![0.0; 3];
        a.matvec(&x, &mut out);
        assert!((out[0] - 0.5 * a.get(0, 1)).abs() < 1e-12);
        assert!((out[1] - 0.5 * a.get(1, 0)).abs() < 1e-12);
        assert!((out[2] - (0.5 * a.get(2, 0) + 0.5 * a.get(2, 1))).abs() < 1e-12);
    }

    #[test]
    fn matvec_support_equals_matvec() {
        let (ds, k, cost) = small();
        let a = DenseAffinity::build(&ds, &k, cost);
        let x = vec![0.25, 0.0, 0.75];
        let mut full = vec![0.0; 3];
        let mut sup = vec![0.0; 3];
        a.matvec(&x, &mut full);
        a.matvec_support(&x, &[0, 2], &mut sup);
        for (f, s) in full.iter().zip(&sup) {
            assert!((f - s).abs() < 1e-12);
        }
    }

    #[test]
    fn quadratic_form_matches_matvec_dot() {
        let (ds, k, cost) = small();
        let a = DenseAffinity::build(&ds, &k, cost);
        let x = vec![0.2, 0.3, 0.5];
        let mut ax = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        let manual: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
        assert!((a.quadratic_form(&x) - manual).abs() < 1e-12);
    }

    #[test]
    fn uniform_density_matches_quadratic_form_with_uniform_x() {
        let (ds, k, cost) = small();
        let a = DenseAffinity::build(&ds, &k, cost);
        let members = [0u32, 1, 2];
        let x = vec![1.0 / 3.0; 3];
        assert!((a.uniform_density(&members) - a.quadratic_form(&x)).abs() < 1e-12);
    }

    #[test]
    fn uniform_density_of_singleton_is_zero() {
        let (ds, k, cost) = small();
        let a = DenseAffinity::build(&ds, &k, cost);
        assert_eq!(a.uniform_density(&[1]), 0.0);
    }
}
