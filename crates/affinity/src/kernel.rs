//! The Lp metric and the Laplacian kernel of Eq. 1.
//!
//! The paper defines the affinity between two data items as
//! `a_ij = exp(-k * ||v_i - v_j||_p)` with `p >= 1` and scaling factor
//! `k > 0`; self-affinities are zero. The whole evaluation uses `p = 2`
//! (Euclidean), but the ROI correctness argument (Proposition 1) only
//! needs the triangle inequality, so any `p >= 1` is supported.

use crate::cost::CostModel;
use crate::vector::Dataset;

/// An Lp norm with `p >= 1`. `L1` and `L2` take fast paths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LpNorm {
    /// Manhattan distance.
    L1,
    /// Euclidean distance (the paper's choice).
    L2,
    /// General Minkowski distance with the given exponent (`p >= 1`).
    P(f64),
}

impl LpNorm {
    /// Constructs the norm for exponent `p`, choosing the fast path when
    /// `p` is 1 or 2.
    ///
    /// # Panics
    /// Panics if `p < 1` (the triangle inequality — and with it the ROI
    /// guarantee of Proposition 1 — fails for `p < 1`).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Lp norm requires p >= 1, got {p}");
        if p == 1.0 {
            LpNorm::L1
        } else if p == 2.0 {
            LpNorm::L2
        } else {
            LpNorm::P(p)
        }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        match *self {
            LpNorm::L1 => 1.0,
            LpNorm::L2 => 2.0,
            LpNorm::P(p) => p,
        }
    }

    /// `||a - b||_p`.
    ///
    /// # Panics
    /// Panics in debug builds if the slices have different lengths.
    #[inline]
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        match *self {
            LpNorm::L1 => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            LpNorm::L2 => {
                let mut acc = 0.0;
                for (x, y) in a.iter().zip(b) {
                    let d = x - y;
                    acc += d * d;
                }
                acc.sqrt()
            }
            LpNorm::P(p) => {
                let acc: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs().powf(p)).sum();
                acc.powf(1.0 / p)
            }
        }
    }

    /// `||a||_p`.
    pub fn length(&self, a: &[f64]) -> f64 {
        match *self {
            LpNorm::L1 => a.iter().map(|x| x.abs()).sum(),
            LpNorm::L2 => a.iter().map(|x| x * x).sum::<f64>().sqrt(),
            LpNorm::P(p) => a.iter().map(|x| x.abs().powf(p)).sum::<f64>().powf(1.0 / p),
        }
    }
}

/// The Laplacian kernel `exp(-k * dist)` of Eq. 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaplacianKernel {
    /// Positive scaling factor `k`.
    pub k: f64,
    /// The metric `|| . ||_p`.
    pub norm: LpNorm,
}

impl LaplacianKernel {
    /// Euclidean Laplacian kernel with scaling factor `k` — the
    /// configuration used throughout the paper's evaluation.
    ///
    /// # Panics
    /// Panics if `k <= 0` or `k` is not finite.
    pub fn l2(k: f64) -> Self {
        Self::new(k, LpNorm::L2)
    }

    /// Laplacian kernel with an explicit metric.
    ///
    /// # Panics
    /// Panics if `k <= 0` or `k` is not finite.
    pub fn new(k: f64, norm: LpNorm) -> Self {
        assert!(k.is_finite() && k > 0.0, "kernel scaling factor must be positive, got {k}");
        Self { k, norm }
    }

    /// Kernel value between two raw vectors (no self-affinity handling).
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        (-self.k * self.norm.distance(a, b)).exp()
    }

    /// Affinity `a_ij` per Eq. 1: zero on the diagonal, kernel value
    /// elsewhere. Records one kernel evaluation in `cost` for off-diagonal
    /// pairs.
    #[inline]
    pub fn affinity(&self, ds: &Dataset, i: usize, j: usize, cost: &CostModel) -> f64 {
        if i == j {
            return 0.0;
        }
        cost.record_kernel_evals(1);
        self.eval(ds.get(i), ds.get(j))
    }

    /// The affinity that corresponds to a given distance.
    #[inline]
    pub fn affinity_at(&self, dist: f64) -> f64 {
        (-self.k * dist).exp()
    }

    /// The distance at which the kernel decays to the given affinity:
    /// the inverse of [`Self::affinity_at`]. Useful for calibrating `k`
    /// from a target affinity at a known distance.
    pub fn distance_at(&self, affinity: f64) -> f64 {
        assert!(affinity > 0.0 && affinity <= 1.0, "affinity must be in (0, 1]");
        -affinity.ln() / self.k
    }

    /// Picks `k` such that `exp(-k * dist) == target`. This is how the
    /// per-data-set kernels in `alid-data` are calibrated: choose the
    /// typical intra-cluster distance and the affinity it should map to.
    ///
    /// # Panics
    /// Panics unless `dist > 0` and `0 < target < 1`.
    pub fn calibrate(dist: f64, target: f64, norm: LpNorm) -> Self {
        assert!(dist > 0.0, "calibration distance must be positive");
        assert!(target > 0.0 && target < 1.0, "target affinity must lie in (0,1)");
        Self::new(-target.ln() / dist, norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn l2_distance_matches_hand_computation() {
        let n = LpNorm::L2;
        assert!((n.distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < EPS);
    }

    #[test]
    fn l1_distance_matches_hand_computation() {
        let n = LpNorm::L1;
        assert!((n.distance(&[1.0, -1.0], &[-2.0, 1.0]) - 5.0).abs() < EPS);
    }

    #[test]
    fn general_p_reduces_to_l2() {
        let a = [0.3, -1.2, 4.0];
        let b = [2.0, 0.5, -0.25];
        let d2 = LpNorm::L2.distance(&a, &b);
        let dp = LpNorm::P(2.0).distance(&a, &b);
        assert!((d2 - dp).abs() < 1e-9);
    }

    #[test]
    fn new_dispatches_to_fast_paths() {
        assert_eq!(LpNorm::new(1.0), LpNorm::L1);
        assert_eq!(LpNorm::new(2.0), LpNorm::L2);
        assert_eq!(LpNorm::new(3.0), LpNorm::P(3.0));
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn rejects_p_below_one() {
        let _ = LpNorm::new(0.5);
    }

    #[test]
    fn kernel_is_one_at_zero_distance_and_decays() {
        let k = LaplacianKernel::l2(2.0);
        let a = [1.0, 1.0];
        assert!((k.eval(&a, &a) - 1.0).abs() < EPS);
        let far = k.eval(&a, &[10.0, 10.0]);
        let near = k.eval(&a, &[1.1, 1.0]);
        assert!(far < near && near < 1.0);
    }

    #[test]
    fn affinity_zero_on_diagonal() {
        let ds = Dataset::from_flat(1, vec![0.0, 1.0]);
        let k = LaplacianKernel::l2(1.0);
        let cost = CostModel::new();
        assert_eq!(k.affinity(&ds, 0, 0, &cost), 0.0);
        assert!(k.affinity(&ds, 0, 1, &cost) > 0.0);
        assert_eq!(cost.snapshot().kernel_evals, 1);
    }

    #[test]
    fn calibrate_hits_the_target() {
        let kern = LaplacianKernel::calibrate(0.5, 0.85, LpNorm::L2);
        assert!((kern.affinity_at(0.5) - 0.85).abs() < 1e-12);
        assert!((kern.distance_at(0.85) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn kernel_rejects_non_positive_k() {
        let _ = LaplacianKernel::l2(0.0);
    }

    #[test]
    fn triangle_inequality_holds_for_all_supported_norms() {
        // Proposition 1 relies on it; spot-check the three code paths.
        let a = [0.0, 0.0, 1.0];
        let b = [1.0, 2.0, -1.0];
        let c = [-0.5, 1.0, 0.0];
        for norm in [LpNorm::L1, LpNorm::L2, LpNorm::P(3.0)] {
            let ab = norm.distance(&a, &b);
            let bc = norm.distance(&b, &c);
            let ac = norm.distance(&a, &c);
            assert!(ac <= ab + bc + 1e-12, "{norm:?} violates the triangle inequality");
        }
    }
}
