//! Shared output vocabulary: what every detection method returns.
//!
//! Affinity-based methods (ALID, IID, SEA, AP, DS) emit *dominant
//! clusters* — member sets with a graph density `π(x)` — and leave noise
//! items unassigned. Partitioning methods (k-means, spectral clustering)
//! assign every item; their partitions are wrapped in the same type so
//! the AVG-F evaluation treats all methods uniformly (Section 5's
//! protocol).

/// One detected cluster: its member indices, the simplex weights the
/// dynamics converged to (uniform for partitioning methods), and the
/// internal density `π(x) = xᵀAx`.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectedCluster {
    /// Global data-item indices, ascending.
    pub members: Vec<u32>,
    /// Per-member weights, parallel to `members`; sums to one.
    pub weights: Vec<f64>,
    /// Graph density `π(x)` of the converged subgraph. Partitioning
    /// methods report the average intra-cluster affinity under uniform
    /// weights, the same quantity for `x = uniform`.
    pub density: f64,
}

impl DetectedCluster {
    /// Cluster with uniform weights (used by partitioning baselines).
    pub fn uniform(mut members: Vec<u32>, density: f64) -> Self {
        members.sort_unstable();
        let w = 1.0 / members.len().max(1) as f64;
        let weights = vec![w; members.len()];
        Self { members, weights, density }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether item `i` belongs to this cluster (binary search).
    pub fn contains(&self, i: u32) -> bool {
        self.members.binary_search(&i).is_ok()
    }
}

/// The result of running a detection method on `n` items.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Clustering {
    /// Total number of data items the method saw.
    pub n: usize,
    /// Detected clusters, in detection order.
    pub clusters: Vec<DetectedCluster>,
}

impl Clustering {
    /// An empty clustering over `n` items.
    pub fn new(n: usize) -> Self {
        Self { n, clusters: Vec::new() }
    }

    /// Number of detected clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether no clusters were detected.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Keeps only clusters with `density >= min_density` and at least
    /// `min_size` members — the paper's final selection step ("clusters
    /// with large values of π(x), e.g. π(x) ≥ 0.75", Section 4.4).
    pub fn dominant(&self, min_density: f64, min_size: usize) -> Clustering {
        Clustering {
            n: self.n,
            clusters: self
                .clusters
                .iter()
                .filter(|c| c.density >= min_density && c.len() >= min_size)
                .cloned()
                .collect(),
        }
    }

    /// Per-item labels: `Some(cluster_index)` for members (ties broken by
    /// the densest containing cluster, the PALID reducer rule), `None`
    /// for unassigned noise.
    pub fn labels(&self) -> Vec<Option<usize>> {
        let mut labels: Vec<Option<usize>> = vec![None; self.n];
        for (ci, c) in self.clusters.iter().enumerate() {
            for &m in &c.members {
                let slot = &mut labels[m as usize];
                match *slot {
                    None => *slot = Some(ci),
                    Some(prev) if self.clusters[prev].density < c.density => *slot = Some(ci),
                    _ => {}
                }
            }
        }
        labels
    }

    /// Total number of clustered items (union of members).
    pub fn covered(&self) -> usize {
        self.labels().iter().flatten().count()
    }

    /// Sorts clusters by descending density (stable w.r.t. detection
    /// order for ties).
    pub fn sort_by_density(&mut self) {
        self.clusters.sort_by(|a, b| b.density.total_cmp(&a.density));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(members: Vec<u32>, density: f64) -> DetectedCluster {
        DetectedCluster::uniform(members, density)
    }

    #[test]
    fn uniform_weights_sum_to_one() {
        let cl = c(vec![3, 1, 2], 0.9);
        assert_eq!(cl.members, vec![1, 2, 3]);
        let s: f64 = cl.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contains_uses_sorted_members() {
        let cl = c(vec![5, 1, 9], 0.5);
        assert!(cl.contains(9));
        assert!(!cl.contains(2));
    }

    #[test]
    fn dominant_filters_on_density_and_size() {
        let mut cls = Clustering::new(10);
        cls.clusters.push(c(vec![0, 1, 2], 0.9));
        cls.clusters.push(c(vec![3], 0.95)); // too small
        cls.clusters.push(c(vec![4, 5], 0.3)); // too sparse
        let dom = cls.dominant(0.75, 2);
        assert_eq!(dom.len(), 1);
        assert_eq!(dom.clusters[0].members, vec![0, 1, 2]);
    }

    #[test]
    fn labels_resolve_overlap_by_density() {
        // The PALID reducer rule (Fig. 5): overlapping item 4 goes to the
        // denser cluster.
        let mut cls = Clustering::new(6);
        cls.clusters.push(c(vec![3, 4], 0.8));
        cls.clusters.push(c(vec![4, 5], 0.6));
        let labels = cls.labels();
        assert_eq!(labels[4], Some(0));
        assert_eq!(labels[5], Some(1));
        assert_eq!(labels[0], None);
        assert_eq!(cls.covered(), 3);
    }

    #[test]
    fn labels_keep_first_on_equal_density() {
        let mut cls = Clustering::new(2);
        cls.clusters.push(c(vec![0], 0.5));
        cls.clusters.push(c(vec![0], 0.5));
        assert_eq!(cls.labels()[0], Some(0));
    }

    #[test]
    fn sort_by_density_descending() {
        let mut cls = Clustering::new(4);
        cls.clusters.push(c(vec![0], 0.2));
        cls.clusters.push(c(vec![1], 0.9));
        cls.sort_by_density();
        assert!(cls.clusters[0].density > cls.clusters[1].density);
    }
}
