//! Flat, row-major storage for a set of d-dimensional data points.
//!
//! Every vertex `v_i` of the affinity graph corresponds to one row. All
//! methods in the workspace share this representation, so a single
//! contiguous allocation backs the whole data set and row access is a
//! bounds-checked slice view.

/// An `n x dim` collection of points in row-major order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Creates an empty data set of the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "Dataset dimensionality must be positive");
        Self { dim, data: Vec::new() }
    }

    /// Creates an empty data set with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "Dataset dimensionality must be positive");
        Self { dim, data: Vec::with_capacity(dim * n) }
    }

    /// Builds a data set from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `flat.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, flat: Vec<f64>) -> Self {
        assert!(dim > 0, "Dataset dimensionality must be positive");
        assert_eq!(
            flat.len() % dim,
            0,
            "flat buffer length {} is not a multiple of dim {}",
            flat.len(),
            dim
        );
        Self { dim, data: flat }
    }

    /// Builds a data set from an iterator of rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows<'a, I>(dim: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut ds = Self::new(dim);
        for row in rows {
            ds.push(row);
        }
        ds
    }

    /// Appends one point.
    ///
    /// # Panics
    /// Panics if `row.len() != self.dim()`.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row length mismatch");
        self.data.extend_from_slice(row);
    }

    /// Appends every point of `other`.
    ///
    /// # Panics
    /// Panics if dimensionalities differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(other.dim, self.dim, "dimensionality mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the data set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of each point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row view of point `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &[f64] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Mutable row view of point `i`.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut [f64] {
        let start = i * self.dim;
        &mut self.data[start..start + self.dim]
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Iterates over row views.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Copies the rows listed in `idx` (in order, duplicates allowed) into
    /// a new data set.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, idx.len());
        for &i in idx {
            out.push(self.get(i));
        }
        out
    }

    /// The weighted centroid `D = sum_i w_i * v_i` over the rows listed in
    /// `idx`. Weights are used as given (callers pass simplex weights, so
    /// they already sum to one).
    ///
    /// # Panics
    /// Panics if `idx.len() != weights.len()`.
    pub fn weighted_centroid(&self, idx: &[usize], weights: &[f64]) -> Vec<f64> {
        assert_eq!(idx.len(), weights.len(), "index/weight length mismatch");
        let mut out = vec![0.0; self.dim];
        for (&i, &w) in idx.iter().zip(weights) {
            for (o, &x) in out.iter_mut().zip(self.get(i)) {
                *o += w * x;
            }
        }
        out
    }

    /// Unweighted centroid over the rows listed in `idx`.
    pub fn centroid(&self, idx: &[usize]) -> Vec<f64> {
        assert!(!idx.is_empty(), "centroid of an empty index set");
        let w = 1.0 / idx.len() as f64;
        let weights = vec![w; idx.len()];
        self.weighted_centroid(idx, &weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut ds = Dataset::new(3);
        ds.push(&[1.0, 2.0, 3.0]);
        ds.push(&[4.0, 5.0, 6.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.get(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_flat_accepts_multiple_of_dim() {
        let ds = Dataset::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.get(1), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged_buffer() {
        let _ = Dataset::from_flat(3, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn push_rejects_wrong_dim() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0]);
    }

    #[test]
    fn subset_preserves_order_and_duplicates() {
        let ds = Dataset::from_flat(1, vec![10.0, 20.0, 30.0]);
        let sub = ds.subset(&[2, 0, 2]);
        assert_eq!(sub.as_flat(), &[30.0, 10.0, 30.0]);
    }

    #[test]
    fn weighted_centroid_matches_hand_computation() {
        let ds = Dataset::from_flat(2, vec![0.0, 0.0, 2.0, 4.0]);
        let c = ds.weighted_centroid(&[0, 1], &[0.75, 0.25]);
        assert_eq!(c, vec![0.5, 1.0]);
    }

    #[test]
    fn centroid_is_mean() {
        let ds = Dataset::from_flat(1, vec![1.0, 3.0]);
        let c = ds.centroid(&[0, 1]);
        assert!((c[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_all_rows() {
        let ds = Dataset::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]);
        let rows: Vec<&[f64]> = ds.iter().collect();
        assert_eq!(rows, vec![&[0.0, 1.0][..], &[2.0, 3.0][..]]);
    }

    #[test]
    fn extend_from_appends_rows() {
        let mut a = Dataset::from_flat(1, vec![1.0]);
        let b = Dataset::from_flat(1, vec![2.0, 3.0]);
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(2), &[3.0]);
    }
}
