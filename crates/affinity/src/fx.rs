//! A small, fast, non-cryptographic hasher (the rustc `FxHash` algorithm).
//!
//! LSH bucket maps and the column caches of [`crate::local`] are keyed by
//! integers; SipHash (the std default) dominates profiles there. This is
//! the standard multiply-rotate-xor mix used by rustc, self-contained so
//! the workspace stays within its approved dependency set. HashDoS
//! resistance is irrelevant for these internal, non-adversarial keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-Fx mixing hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Mixes a slice of 64-bit words into a single key (used by LSH to fold a
/// signature of `mu` quantised projections into a bucket key).
pub fn mix_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FxHasher::default();
    for w in words {
        h.write_u64(w);
    }
    // A final avalanche (splitmix64 finaliser) so that low bits are usable
    // as table indices.
    let mut z = h.finish().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashing_is_deterministic() {
        let a = mix_words([1, 2, 3]);
        let b = mix_words([1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_rarely_collide() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            seen.insert(mix_words([i, i * 7 + 1]));
        }
        // All distinct for this structured input; a weak mixer would fold
        // consecutive integers onto each other.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn order_matters() {
        assert_ne!(mix_words([1, 2]), mix_words([2, 1]));
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h2.finish());
    }
}
