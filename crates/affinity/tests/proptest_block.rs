//! Bit-for-bit parity of the blocked kernel evaluator (and, when built
//! with `--features simd-lanes`, the explicit-lanes path — this same
//! suite runs under both feature sets in CI) against the scalar
//! reference: odd dimensions, block-tail remainders, and adversarial
//! values (±0.0, denormals, huge magnitudes) honoring the documented
//! `== 0.0` support-skip contract.

use alid_affinity::block::{default_block_rows, BlockEval, LANES};
use alid_affinity::cost::CostModel;
use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_affinity::local::LocalAffinity;
use alid_affinity::vector::Dataset;
use proptest::prelude::*;

/// Entries stressing the edges the kernels and the support-skip
/// contract care about: exact ±0.0, positive and negative denormals,
/// huge magnitudes, and ordinary values.
fn entry() -> impl Strategy<Value = f64> {
    (0u8..8, -20.0f64..20.0).prop_map(|(sel, v)| match sel {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MIN_POSITIVE / 2.0,
        3 => -f64::MIN_POSITIVE / 4.0,
        4 => v * 1e300,
        _ => v,
    })
}

/// `(dim, flat)` with odd dims included and a row count that leaves
/// remainders against every block size the properties sweep.
fn case() -> impl Strategy<Value = (usize, Vec<f64>)> {
    (1usize..12).prop_flat_map(|dim| {
        prop::collection::vec(entry(), dim..=dim * 67).prop_map(move |mut flat| {
            flat.truncate(flat.len() / dim * dim);
            (dim, flat)
        })
    })
}

proptest! {
    #[test]
    fn blocked_eval_matches_scalar_bitwise(case in case(), k in 0.01f64..5.0) {
        let (dim, flat) = case;
        let ds = Dataset::from_flat(dim, flat);
        let query = ds.get(ds.len() - 1).to_vec();
        let mut scratch = BlockEval::new();
        for norm in [LpNorm::L1, LpNorm::L2, LpNorm::P(2.5)] {
            let kern = LaplacianKernel::new(k, norm);
            let mut out = vec![0.0; ds.len()];
            for block in [1usize, 3, LANES, 7, default_block_rows(dim), 1024] {
                scratch.eval_rows_blocked(&kern, dim, ds.as_flat(), &query, &mut out, block);
                for (i, &got) in out.iter().enumerate() {
                    let want = kern.eval(ds.get(i), &query);
                    prop_assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "norm={:?} block={} row={}",
                        norm,
                        block,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_distances_match_scalar_bitwise(case in case()) {
        let (dim, flat) = case;
        let ds = Dataset::from_flat(dim, flat);
        let query = ds.get(0).to_vec();
        let ids: Vec<u32> = (0..ds.len() as u32).rev().collect();
        let mut scratch = BlockEval::new();
        for norm in [LpNorm::L1, LpNorm::L2, LpNorm::P(3.0)] {
            let mut out = vec![0.0; ds.len()];
            scratch.distances_rows(norm, dim, ds.as_flat(), &query, &mut out);
            for (i, &got) in out.iter().enumerate() {
                prop_assert_eq!(got.to_bits(), norm.distance(ds.get(i), &query).to_bits());
            }
            // Gathered (non-contiguous, here reversed) rows too.
            let mut gathered = vec![0.0; ids.len()];
            scratch.distances_indexed(norm, &ds, &ids, &query, &mut gathered);
            for (&id, &got) in ids.iter().zip(&gathered) {
                let want = norm.distance(ds.get(id as usize), &query);
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn local_density_keeps_the_strict_support_filter(case in case(), k in 0.1f64..3.0) {
        let (dim, flat) = case;
        // density() filters weights by `x[i] > 0.0`: ±0.0 rows are
        // skipped, denormal weights participate. The blocked rewrite
        // must preserve both the filter and every accumulation bit.
        let ds = Dataset::from_flat(dim, flat);
        let n = ds.len();
        let kern = LaplacianKernel::new(k, LpNorm::L2);
        let beta: Vec<u32> = (0..n as u32).collect();
        let local = LocalAffinity::new(&ds, kern, CostModel::shared(), beta.clone());
        // Weights cycling through the adversarial cases.
        let x: Vec<f64> = (0..n)
            .map(|i| match i % 5 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::MIN_POSITIVE / 2.0,
                _ => 1.0 / (i + 1) as f64,
            })
            .collect();
        let got = local.density(&x);
        // Scalar reference: the pre-blocking implementation verbatim.
        let sup: Vec<usize> = (0..n).filter(|&i| x[i] > 0.0).collect();
        let mut want = 0.0;
        for (a, &i) in sup.iter().enumerate() {
            let vi = ds.get(beta[i] as usize);
            for &j in &sup[a + 1..] {
                want += x[i] * x[j] * kern.eval(vi, ds.get(beta[j] as usize));
            }
        }
        prop_assert_eq!(got.to_bits(), (2.0 * want).to_bits());
    }

    #[test]
    fn product_rows_cache_and_fresh_paths_match_scalar(case in case(), k in 0.1f64..3.0) {
        let (dim, flat) = case;
        let ds = Dataset::from_flat(dim, flat);
        let n = ds.len();
        let kern = LaplacianKernel::new(k, LpNorm::L2);
        let beta: Vec<u32> = (0..n as u32).collect();
        let mut local = LocalAffinity::new(&ds, kern, CostModel::shared(), beta);
        // Cache every other column so the product mixes cached rows
        // (served from the column cache) with fresh blocked rows.
        for g in (0..n as u32).step_by(2) {
            local.column(g);
        }
        let alpha: Vec<u32> = (0..n as u32).filter(|a| a % 3 != 1).collect();
        let w: Vec<f64> = alpha.iter().map(|&a| 1.0 / (a + 2) as f64).collect();
        let rows: Vec<u32> = (0..n as u32).collect();
        let got = local.product_rows(&rows, &alpha, &w);
        for (&r, &gv) in rows.iter().zip(&got) {
            // Scalar reference: the pre-blocking implementation verbatim.
            let vr = ds.get(r as usize);
            let mut want = 0.0;
            for (&a, &wa) in alpha.iter().zip(&w) {
                if a == r {
                    continue;
                }
                want += wa * kern.eval(ds.get(a as usize), vr);
            }
            prop_assert_eq!(gv.to_bits(), want.to_bits(), "row {}", r);
        }
    }
}
