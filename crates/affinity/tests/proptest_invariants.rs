//! Property-based tests for the affinity substrate: the metric axioms,
//! kernel bounds, simplex closure of the invasion operators, and the
//! agreement between the dense, sparse and lazy-local matrix views.

use alid_affinity::cost::CostModel;
use alid_affinity::dense::DenseAffinity;
use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_affinity::local::LocalAffinity;
use alid_affinity::simplex;
use alid_affinity::sparse::SparseBuilder;
use alid_affinity::vector::Dataset;
use proptest::prelude::*;

fn vec3() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 3)
}

fn small_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(-10.0f64..10.0, 2 * 3..=2 * 8).prop_map(|flat| {
        let n = flat.len() / 2;
        Dataset::from_flat(2, flat[..n * 2].to_vec())
    })
}

fn simplex_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, n).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        if s <= 0.0 {
            let u = 1.0 / v.len() as f64;
            v.fill(u);
        } else {
            for x in v.iter_mut() {
                *x /= s;
            }
        }
        v
    })
}

proptest! {
    #[test]
    fn lp_norms_satisfy_metric_axioms(a in vec3(), b in vec3(), c in vec3(), p in 1.0f64..4.0) {
        let norm = LpNorm::new(p);
        let dab = norm.distance(&a, &b);
        let dba = norm.distance(&b, &a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-9 * (1.0 + dab));
        prop_assert!(norm.distance(&a, &a) < 1e-12);
        let dac = norm.distance(&a, &c);
        let dcb = norm.distance(&c, &b);
        prop_assert!(dab <= dac + dcb + 1e-9 * (1.0 + dab));
    }

    #[test]
    fn kernel_values_lie_in_unit_interval(a in vec3(), b in vec3(), k in 0.01f64..10.0) {
        let kern = LaplacianKernel::l2(k);
        let v = kern.eval(&a, &b);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn kernel_is_monotone_in_distance(d1 in 0.0f64..10.0, d2 in 0.0f64..10.0, k in 0.1f64..5.0) {
        let kern = LaplacianKernel::l2(k);
        if d1 < d2 {
            prop_assert!(kern.affinity_at(d1) >= kern.affinity_at(d2));
        }
    }

    #[test]
    fn invasion_preserves_simplex(x in simplex_vec(6), i in 0usize..6, eps in 0.0f64..=1.0) {
        let mut z = x.clone();
        simplex::invade_vertex(&mut z, i, eps);
        prop_assert!(simplex::is_on_simplex(&z, 1e-9));
    }

    #[test]
    fn covertex_invasion_preserves_simplex(x in simplex_vec(6), eps in 0.0f64..=1.0) {
        // Pick the largest component strictly inside (0,1), if any.
        let (i, &xi) = x
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty vector");
        prop_assume!(xi > 1e-6 && xi < 1.0 - 1e-6);
        let mut z = x.clone();
        simplex::invade_covertex(&mut z, i, eps);
        prop_assert!(simplex::is_on_simplex(&z, 1e-9));
        prop_assert!(z[i] <= xi + 1e-12, "co-vertex invasion must not grow x_i");
    }

    #[test]
    fn dense_sparse_local_views_agree(ds in small_dataset(), k in 0.1f64..2.0) {
        let kern = LaplacianKernel::l2(k);
        let n = ds.len();
        let dense = DenseAffinity::build(&ds, &kern, CostModel::shared());
        let mut builder = SparseBuilder::new(n);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                builder.add_edge(i, j);
            }
        }
        let sparse = builder.build(&ds, &kern, CostModel::shared());
        let beta: Vec<u32> = (0..n as u32).collect();
        let mut local = LocalAffinity::new(&ds, kern, CostModel::shared(), beta);
        for j in 0..n {
            let col = local.column(j as u32).to_vec();
            for (i, &cv) in col.iter().enumerate() {
                prop_assert!((dense.get(i, j) - sparse.get(i, j)).abs() < 1e-12);
                prop_assert!((dense.get(i, j) - cv).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn quadratic_form_is_bounded_by_max_affinity(ds in small_dataset(), k in 0.1f64..2.0) {
        let kern = LaplacianKernel::l2(k);
        let n = ds.len();
        let dense = DenseAffinity::build(&ds, &kern, CostModel::shared());
        let x = vec![1.0 / n as f64; n];
        let pi = dense.quadratic_form(&x);
        // Affinities are in [0,1) off-diagonal, so pi(x) in [0,1).
        prop_assert!((0.0..1.0).contains(&pi));
    }

    #[test]
    fn density_tracks_product_consistency(ds in small_dataset(), k in 0.1f64..2.0) {
        // g = A_beta_alpha x_alpha computed two ways must agree: lazy
        // columns vs product_rows.
        let kern = LaplacianKernel::l2(k);
        let n = ds.len();
        let beta: Vec<u32> = (0..n as u32).collect();
        let mut local = LocalAffinity::new(&ds, kern, CostModel::shared(), beta.clone());
        let alpha: Vec<u32> = (0..n as u32 / 2 + 1).collect();
        let w = vec![1.0 / alpha.len() as f64; alpha.len()];
        let direct = local.product_rows(&beta, &alpha, &w);
        let mut viacols = vec![0.0; n];
        for (ai, &a) in alpha.iter().enumerate() {
            let col = local.column(a).to_vec();
            for (o, c) in viacols.iter_mut().zip(&col) {
                *o += w[ai] * c;
            }
        }
        for (d, v) in direct.iter().zip(&viacols) {
            prop_assert!((d - v).abs() < 1e-12);
        }
    }
}
