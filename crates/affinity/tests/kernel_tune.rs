//! The chunk autotuner demonstrably consumes blocked-kernel
//! measurements. Integration test on purpose: it runs in its own
//! process, so the `KERNEL_BLOCK_TUNE` / `SPARSE_BUILD_TUNE` statics
//! start cold and the arithmetic below is deterministic.

use alid_affinity::block::{BlockEval, KERNEL_BLOCK_TUNE};
use alid_affinity::cost::CostModel;
use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::sparse::{SparseBuilder, SPARSE_BUILD_TUNE};
use alid_affinity::vector::Dataset;
use alid_exec::tune::TARGET_CHUNK_NANOS;
use alid_exec::ExecPolicy;

fn dataset(n: usize, dim: usize) -> Dataset {
    let data: Vec<f64> = (0..n * dim).map(|i| (i as f64 * 0.013).sin() * 4.0).collect();
    Dataset::from_flat(dim, data)
}

#[test]
fn blocked_kernel_cost_drives_chunk_sizing() {
    assert_eq!(KERNEL_BLOCK_TUNE.snapshot().samples, 0, "handle must start cold");
    let (n, dim) = (4096, 32);
    let ds = dataset(n, dim);
    let kern = LaplacianKernel::l2(1.0);
    let query = ds.get(0).to_vec();
    let mut out = vec![0.0; n];
    BlockEval::new().eval_rows(&kern, dim, ds.as_flat(), &query, &mut out);

    let snap = KERNEL_BLOCK_TUNE.snapshot();
    assert_eq!(snap.samples, 1, "one blocked batch, one sample");
    assert!(snap.per_item_ns > 0.0, "measured per-pair cost must be positive");

    // Chunk sizing now derives from the measurement, not the cold
    // heuristic: TARGET_CHUNK_NANOS worth of measured pairs per steal
    // (the steal ceiling is far away at this n).
    let huge = 64 * 1024 * 1024;
    let expected = ((TARGET_CHUNK_NANOS / snap.per_item_ns).floor() as usize).max(1).min(huge / 4);
    assert_eq!(KERNEL_BLOCK_TUNE.chunk_for(huge, 1), expected);

    // The sparse builder's own handle sees the post-SIMD edge cost the
    // same way: its span phase times the blocked batches it runs.
    assert_eq!(SPARSE_BUILD_TUNE.snapshot().samples, 0);
    let mut builder = SparseBuilder::new(n);
    for i in 0..n as u32 {
        for d in 1..=6u32 {
            builder.add_edge(i, (i + d) % n as u32);
        }
    }
    let sparse = builder.build_with(&ds, &kern, CostModel::shared(), ExecPolicy::sequential());
    assert!(sparse.nnz() > 0);
    let sp = SPARSE_BUILD_TUNE.snapshot();
    assert_eq!(sp.samples, 1, "one edge-evaluation phase, one sample");
    assert!(sp.per_item_ns > 0.0);
}
