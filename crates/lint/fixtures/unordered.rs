//! Seeded `no-unordered-iteration` violations and their remedies.

use std::collections::{BTreeMap, HashMap, HashSet};

fn hash_iteration_fires() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    for (k, v) in &m {
        let _ = (k, v);
    }
    let keys: Vec<u32> = m.keys().copied().collect();
    let set = HashSet::from([1u32]);
    for x in set {
        let _ = (x, &keys);
    }
}

fn suppressed_with_reason() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    // alid-lint: allow(no-unordered-iteration) -- drained into a Vec and sorted on the next line
    let mut vals: Vec<u32> = m.values().copied().collect();
    vals.sort_unstable();
}

fn ordered_is_fine() {
    let mut b: BTreeMap<u32, u32> = BTreeMap::new();
    b.insert(1, 2);
    for (k, v) in b.iter() {
        let _ = (k, v);
    }
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _ = m.get(&1);
    let _ = m.contains_key(&1);
}
