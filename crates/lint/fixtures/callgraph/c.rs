//! Call-graph fixture, module C: cross-module calls. The
//! path-qualified call resolves by module name; the bare call has no
//! local candidate, so it must merge both shadowed `helper`s.

pub fn run() {
    a::helper();
    helper();
}
