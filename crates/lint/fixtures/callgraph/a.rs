//! Call-graph fixture, module A: a typed field chain, a same-file
//! helper that module B shadows, and direct recursion.

pub struct Widget {
    pub label: Label,
}

pub struct Label;

impl Label {
    pub fn paint(&self) {}
}

impl Widget {
    pub fn render(&self) {
        self.label.paint();
        helper();
    }
}

pub fn helper() {
    recurse(1);
}

fn recurse(n: u32) {
    if n > 0 {
        recurse(n - 1);
    }
}
