//! Call-graph fixture, module B: trait dispatch — typed (exact) and
//! untyped (merged across every implementor) — plus a shadowing
//! `helper` that must capture B's own call sites but never A's.

pub struct Panel;

pub trait Draw {
    fn draw(&self);
}

impl Draw for Panel {
    fn draw(&self) {
        helper();
    }
}

pub struct Sprite;

impl Draw for Sprite {
    fn draw(&self) {}
}

pub fn show(p: &Panel) {
    p.draw();
}

pub fn blit() {
    let v = opaque();
    v.draw();
}

fn helper() {}
