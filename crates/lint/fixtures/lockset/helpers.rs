//! Cross-file helpers the lock-set fixture calls through — the
//! multi-hop witness chains land here. `help_foreign` reaches an exec
//! dispatch two hops down, re-creating the PR 4 deadlock shape (a
//! pool waiter helping a foreign drain job while the caller already
//! holds that shard's mutex).

struct Pol;

impl Pol {
    fn map_indexed(&self, n: usize) -> usize {
        n
    }
}

fn help_foreign(pol: &Pol) {
    fan_out(pol);
}

fn fan_out(pol: &Pol) {
    pol.map_indexed(4);
}

fn validate_stream() {
    assert!(total() > 0, "stream invariant");
}

fn total() -> usize {
    1
}

fn slurp(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_default()
}
