//! Seeded lock-set violations, mirroring the service shapes: a shard
//! array behind mutexes, a placement ledger, a guard-returning
//! accessor and a sanctioned cut constructor. The exact expected
//! fire/suppress line sets live in `tests/fixtures.rs`.

use std::sync::{Mutex, MutexGuard};

struct Stream;

struct Shard {
    stream: Stream,
}

struct Svc {
    shards: Vec<Mutex<Shard>>,
    placements: Mutex<Vec<u64>>,
}

impl Svc {
    fn shard(&self, s: usize) -> MutexGuard<'_, Shard> {
        self.shards[s].lock().expect("shard mutex")
    }

    fn lock_shards(&self) -> Vec<MutexGuard<'_, Shard>> {
        (0..self.shards.len()).map(|s| self.shard(s)).collect()
    }

    fn cycle_direct(&self) {
        let a = self.shards[0].lock().expect("shard mutex");
        let b = self.shards[1].lock().expect("shard mutex");
        drop(b);
        drop(a);
    }

    fn cycle_transitive(&self) {
        let g = self.shard(0);
        let h = self.shard(1);
        drop(h);
        drop(g);
    }

    fn cycle_suppressed(&self) {
        let a = self.shards[0].lock().expect("shard mutex");
        // alid-lint: allow(lock-cycle) -- corpus demonstration of a justified second acquisition
        let b = self.shards[1].lock().expect("shard mutex");
        drop(b);
        drop(a);
    }

    fn cut_via_constructor_is_clean(&self) {
        let all = self.lock_shards();
        drop(all);
    }

    fn sequential_locking_is_clean(&self) {
        let a = self.shards[0].lock().expect("shard mutex");
        drop(a);
        let b = self.shards[1].lock().expect("shard mutex");
        drop(b);
    }

    fn exec_under_guard(&self, pol: &Pol) {
        let g = self.shard(0);
        help_foreign(pol);
        drop(g);
    }

    fn exec_after_drop_is_clean(&self, pol: &Pol) {
        let g = self.shard(0);
        drop(g);
        help_foreign(pol);
    }

    fn exec_suppressed(&self, pol: &Pol) {
        let g = self.shard(0);
        // alid-lint: allow(exec-under-lock) -- corpus demonstration; the pool is quiescent here
        help_foreign(pol);
        drop(g);
    }

    fn panic_direct(&self) -> u64 {
        let g = self.placements.lock().expect("placements");
        g.first().copied().unwrap()
    }

    fn panic_transitive(&self) {
        let g = self.shard(0);
        validate_stream();
        drop(g);
    }

    fn panic_suppressed(&self) -> u64 {
        let g = self.placements.lock().expect("placements");
        // alid-lint: allow(panic-under-lock) -- corpus demonstration of a provably benign poison
        g.first().copied().unwrap()
    }

    fn panic_after_drop_is_clean(&self) {
        let g = self.placements.lock().expect("placements");
        drop(g);
        assert!(independent_of_guard());
    }

    fn block_direct(&self) {
        let g = self.shard(0);
        let _ = std::fs::read_to_string("snapshot.bin");
        drop(g);
    }

    fn block_transitive(&self) {
        let g = self.shard(0);
        let _ = slurp("snapshot.bin");
        drop(g);
    }

    fn block_suppressed(&self) {
        let g = self.shard(0);
        // alid-lint: allow(block-under-lock) -- corpus demonstration; the path is tmpfs-backed
        let _ = std::fs::read_to_string("snapshot.bin");
        drop(g);
    }
}

fn independent_of_guard() -> bool {
    true
}
