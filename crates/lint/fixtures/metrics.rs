//! Seeded `no-metric-branching` violations: metric values read back in
//! a result-affecting path, plus the shapes that must stay silent
//! (write-only handles, tests, an annotated exposition helper).

fn branch_on_counter(c: &Counter, work: &mut Vec<u64>) {
    if c.metric_value() > 4 {
        work.truncate(4);
    }
}

fn leak_into_output(reg: &Registry) -> String {
    let rows = reg.snapshot_samples();
    let text = reg.render_prometheus();
    format!("{}{}", rows.len(), text)
}

fn suppressed_read(reg: &Registry) -> usize {
    // alid-lint: allow(no-metric-branching) -- feeds the debug endpoint, never outputs
    reg.snapshot_samples().len()
}

fn writes_are_free(c: &Counter, g: &Gauge, h: &Histogram) {
    c.inc();
    g.set(2.0);
    h.observe_ns(9);
    let metric_value = 3; // a bare ident is not a read
    let _ = metric_value;
}

#[cfg(test)]
mod tests {
    #[test]
    fn reads_are_assertions_here() {
        assert_eq!(super::COUNTER.metric_value(), 0);
    }
}
