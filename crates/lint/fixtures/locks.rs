//! Seeded `lock-order` violations.

struct Svc {
    shards: Vec<std::sync::Mutex<u32>>,
}

impl Svc {
    fn shard(&self, s: usize) -> std::sync::MutexGuard<'_, u32> {
        self.shards[s].lock().unwrap()
    }

    fn lock_shards(&self) -> Vec<std::sync::MutexGuard<'_, u32>> {
        self.shards.iter().map(|m| m.lock().unwrap()).collect()
    }

    fn two_direct_acquisitions_fire(&self) -> u32 {
        let a = *self.shard(0);
        let b = *self.shard(1);
        a + b
    }

    fn loop_acquisition_fires(&self) -> u32 {
        let mut total = 0;
        for s in 0..2 {
            total += *self.shard(s);
        }
        total
    }

    fn single_acquisition_is_fine(&self) -> u32 {
        *self.shard(0)
    }

    fn suppressed(&self) -> u32 {
        let mut total = 0;
        for s in 0..2 {
            // alid-lint: allow(lock-order) -- read-only metric; one lock at a time by design
            total += *self.shard(s);
        }
        total
    }
}
