//! Seeded `no-raw-threads` / `no-raw-time` violations.

use std::time::{Instant, SystemTime};

fn spawn_fires() {
    let h = std::thread::spawn(|| 7);
    let _ = h.join();
}

fn builder_spawn_fires() {
    let b = std::thread::Builder::new();
    let _ = b.spawn(|| 7);
}

fn instant_fires() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

fn system_time_fires() -> SystemTime {
    SystemTime::now()
}

fn suppressed_clock() {
    // alid-lint: allow(no-raw-time) -- duration printed to stderr only; never reaches outputs
    let _ = Instant::now();
}

fn suppressed_spawn() {
    // alid-lint: allow(no-raw-threads) -- corpus demonstration of a justified helper thread
    let h = std::thread::spawn(|| 0);
    let _ = h.join();
}

fn sleeping_is_fine() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
