//! Malformed suppression annotations: each is itself a `bad-allow`
//! finding — an unjustified suppression must never silently pass.

fn empty_reason() {
    // alid-lint: allow(no-fma)
    let _ = 1;
}

fn empty_reason_with_dashes() {
    // alid-lint: allow(no-fma) --
    let _ = 1;
}

fn unknown_rule() {
    // alid-lint: allow(no-such-rule) -- reason text
    let _ = 1;
}

fn no_rule() {
    // alid-lint: allow() -- reason text
    let _ = 1;
}

fn malformed() {
    // alid-lint: disallow everything
    let _ = 1;
}
