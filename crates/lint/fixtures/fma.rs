//! Seeded `no-fma` violations.

fn fused_fires(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}

fn intrinsic_name_fires() {
    let _f = my_fmadd(1.0);
}

fn suppressed(a: f64, b: f64, c: f64) -> f64 {
    // alid-lint: allow(no-fma) -- corpus demonstration of a justified fused product
    a.mul_add(b, c)
}

fn separate_rounding_is_fine(a: f64, b: f64, c: f64) -> f64 {
    a * b + c
}

fn my_fmadd(x: f64) -> f64 {
    x
}

fn in_text_does_not_fire() {
    let _ = "mul_add in a string literal";
}
