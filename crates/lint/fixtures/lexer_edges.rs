//! Token-stream edge cases: none of these may produce findings. Rule
//! keywords buried in strings, raw strings, byte strings, chars and
//! (nested) comments must be invisible to every rule.

fn strings_and_comments() {
    let _a = "unsafe { *p } HashMap::new() thread::spawn Instant::now()";
    let _b = r#"m.iter() "quoted" unsafe impl Send"#;
    let _c = b"mul_add";
    let _d = br##"SystemTime::now() r#"nested"# .values()"##;
    /* block comment: unsafe { } m.keys() /* nested: Instant::now() */ still a comment */
    let _e = 'x';
    let _f = '\'';
    let _g = '\u{41}';
}

fn lifetimes<'a>(x: &'a str) -> &'a str {
    let r#type = x;
    r#type
}

fn numbers() {
    let _r = 0..10;
    let _f = 1.0e-3_f64;
    let _h = 0xFF_u32;
    let _m = (2.5_f64).floor();
}
