//! Seeded `unsafe-needs-safety` violations.

fn missing_comment_fires() {
    let x = [1u8, 2];
    let _ = unsafe { *x.as_ptr() };
}

fn commented_block_is_fine() {
    let x = [1u8, 2];
    // SAFETY: the array is non-empty, so the pointer is valid.
    let _ = unsafe { *x.as_ptr() };
}

/// Reads the first byte.
///
/// # Safety
/// `p` must point at at least one readable byte.
pub unsafe fn doc_safety_is_fine(p: *const u8) -> u8 {
    // SAFETY: contract forwarded to the caller.
    unsafe { *p }
}

pub unsafe fn undocumented_fn_fires(p: *const u8) -> u8 {
    // SAFETY: contract forwarded to the caller.
    unsafe { *p }
}

struct Wrapper(*const u8);

// SAFETY: the pointer is never dereferenced off-thread.
unsafe impl Send for Wrapper {}

unsafe impl Sync for Wrapper {}

// SAFETY: raw read guarded by the caller's length check; the comment
// scan hops the attribute line to find this justification.
#[inline(always)]
unsafe fn attribute_hop_is_fine(p: *const u8) -> u8 {
    // SAFETY: caller contract.
    unsafe { *p }
}

fn suppressed_block() {
    let x = [1u8];
    // alid-lint: allow(unsafe-needs-safety) -- corpus demonstration; the justification lives in the module docs
    let _ = unsafe { *x.as_ptr() };
}
