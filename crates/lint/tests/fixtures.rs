//! The seeded-violation corpus: every rule must fire on its fixture,
//! every annotation must suppress, and disabling a rule must silence
//! it (proving a finding comes from that rule, not a neighbour). The
//! final test lints the real workspace and requires it clean — the
//! same gate CI runs via `alid lint --deny`.

use std::path::Path;

use alid_lint::{lexer, lint_files, lint_root, lint_source, Config, ExecPolicy, Finding};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
}

fn lint_fixture(name: &str, cfg: &Config) -> (Vec<Finding>, usize) {
    lint_source(name, &fixture(name), cfg)
}

fn lines(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

fn without(rule: &str) -> Config {
    let mut cfg = Config::all_paths();
    cfg.enabled.remove(rule);
    cfg
}

#[test]
fn unordered_iteration_fires_and_suppresses() {
    let (f, suppressed) = lint_fixture("unordered.rs", &Config::all_paths());
    assert_eq!(lines(&f, "no-unordered-iteration"), vec![8, 11, 13]);
    assert_eq!(f.len(), 3, "only this rule may fire: {f:?}");
    assert_eq!(suppressed, 1, "the annotated values() drain");

    let (f, _) = lint_fixture("unordered.rs", &without("no-unordered-iteration"));
    assert!(f.is_empty(), "disabled rule must be silent: {f:?}");
}

#[test]
fn fma_fires_and_suppresses() {
    let (f, suppressed) = lint_fixture("fma.rs", &Config::all_paths());
    assert_eq!(lines(&f, "no-fma"), vec![4, 8, 20]);
    assert_eq!(f.len(), 3, "only this rule may fire: {f:?}");
    assert_eq!(suppressed, 1, "the annotated mul_add");

    let (f, _) = lint_fixture("fma.rs", &without("no-fma"));
    assert!(f.is_empty(), "disabled rule must be silent: {f:?}");
}

#[test]
fn unsafe_needs_safety_fires_and_suppresses() {
    let (f, suppressed) = lint_fixture("safety.rs", &Config::all_paths());
    assert_eq!(lines(&f, "unsafe-needs-safety"), vec![5, 23, 33]);
    assert_eq!(f.len(), 3, "only this rule may fire: {f:?}");
    assert_eq!(suppressed, 1, "the annotated block");

    let (f, _) = lint_fixture("safety.rs", &without("unsafe-needs-safety"));
    assert!(f.is_empty(), "disabled rule must be silent: {f:?}");
}

#[test]
fn raw_threads_and_time_fire_and_suppress() {
    let (f, suppressed) = lint_fixture("timing.rs", &Config::all_paths());
    assert_eq!(lines(&f, "no-raw-threads"), vec![6, 12]);
    assert_eq!(lines(&f, "no-raw-time"), vec![16, 21]);
    assert_eq!(f.len(), 4, "only these rules may fire: {f:?}");
    assert_eq!(suppressed, 2, "one annotated spawn, one annotated clock read");

    let (f, _) = lint_fixture("timing.rs", &without("no-raw-threads"));
    assert!(lines(&f, "no-raw-threads").is_empty());
    assert_eq!(lines(&f, "no-raw-time").len(), 2, "sibling rule unaffected");

    let (f, _) = lint_fixture("timing.rs", &without("no-raw-time"));
    assert!(lines(&f, "no-raw-time").is_empty());
    assert_eq!(lines(&f, "no-raw-threads").len(), 2, "sibling rule unaffected");
}

#[test]
fn metric_branching_fires_and_suppresses() {
    let (f, suppressed) = lint_fixture("metrics.rs", &Config::all_paths());
    assert_eq!(lines(&f, "no-metric-branching"), vec![6, 12, 13]);
    assert_eq!(f.len(), 3, "write-only handles and the test mod must stay silent: {f:?}");
    assert_eq!(suppressed, 1, "the annotated snapshot_samples read");

    let (f, _) = lint_fixture("metrics.rs", &without("no-metric-branching"));
    assert!(f.is_empty(), "disabled rule must be silent: {f:?}");
}

/// The two-file lock-set corpus, linted as one workspace (the
/// transitive cases need `helpers.rs` in the same call graph). Run
/// under both feature sets: the analysis must not care.
fn lint_lockset(cfg: &Config) -> (Vec<Finding>, usize) {
    let mut last = None;
    for feats in [vec![], vec!["simd-lanes".to_string()]] {
        let mut cfg = cfg.clone();
        cfg.features = feats;
        let files: Vec<(String, String)> = ["lockset/svc.rs", "lockset/helpers.rs"]
            .iter()
            .map(|rel| (rel.to_string(), fixture(rel)))
            .collect();
        let rep = lint_files(&files, &cfg, &ExecPolicy::sequential());
        if let Some((prev, _)) = &last {
            assert_eq!(prev, &rep.findings, "feature set must not change lock-set findings");
        }
        last = Some((rep.findings, rep.suppressed));
    }
    last.unwrap()
}

fn msg_of(findings: &[Finding], rule: &str, line: u32) -> String {
    findings
        .iter()
        .find(|f| f.rule == rule && f.line == line)
        .unwrap_or_else(|| panic!("no {rule} at {line}: {findings:#?}"))
        .msg
        .clone()
}

#[test]
fn lock_cycle_fires_and_suppresses() {
    let (f, suppressed) = lint_lockset(&Config::all_paths());
    assert_eq!(lines(&f, "lock-cycle"), vec![30, 37]);
    assert_eq!(suppressed, 4, "one annotated site per rule fixture");

    // The transitive case reports the accessor's own acquisition.
    let msg = msg_of(&f, "lock-cycle", 37);
    assert!(
        msg.contains(
            "witness: `shard` (lockset/svc.rs:37) → `.lock()` on `shards` (lockset/svc.rs:21)"
        ),
        "witness chain mismatch: {msg}"
    );

    let (f, _) = lint_lockset(&without("lock-cycle"));
    assert!(lines(&f, "lock-cycle").is_empty(), "disabled rule must be silent");
}

#[test]
fn exec_under_lock_catches_the_seeded_deadlock_pattern() {
    let (f, _) = lint_lockset(&Config::all_paths());
    assert_eq!(lines(&f, "exec-under-lock"), vec![64]);

    // The PR 4 shape: a shard guard held across a dispatch two calls
    // down — the witness walks the whole chain into the other file.
    let msg = msg_of(&f, "exec-under-lock", 64);
    assert!(
        msg.contains(
            "witness: `help_foreign` (lockset/svc.rs:64) → fan_out (lockset/helpers.rs:16) \
             → `.map_indexed(…)` dispatch (lockset/helpers.rs:20)"
        ),
        "multi-hop witness mismatch: {msg}"
    );

    let (f, _) = lint_lockset(&without("exec-under-lock"));
    assert!(lines(&f, "exec-under-lock").is_empty(), "disabled rule must be silent");
}

#[test]
fn panic_under_lock_fires_directly_and_transitively() {
    let (f, _) = lint_lockset(&Config::all_paths());
    assert_eq!(lines(&f, "panic-under-lock"), vec![83, 88]);

    let msg = msg_of(&f, "panic-under-lock", 88);
    assert!(
        msg.contains(
            "witness: `validate_stream` (lockset/svc.rs:88) → `assert!` (lockset/helpers.rs:24)"
        ),
        "witness chain mismatch: {msg}"
    );

    let (f, _) = lint_lockset(&without("panic-under-lock"));
    assert!(lines(&f, "panic-under-lock").is_empty(), "disabled rule must be silent");
}

#[test]
fn block_under_lock_fires_directly_and_transitively() {
    let (f, _) = lint_lockset(&Config::all_paths());
    assert_eq!(lines(&f, "block-under-lock"), vec![106, 112]);

    let msg = msg_of(&f, "block-under-lock", 112);
    assert!(
        msg.contains(
            "witness: `slurp` (lockset/svc.rs:112) → `fs::read()` (lockset/helpers.rs:32)"
        ),
        "witness chain mismatch: {msg}"
    );

    let (f, _) = lint_lockset(&without("block-under-lock"));
    assert!(lines(&f, "block-under-lock").is_empty(), "disabled rule must be silent");
}

#[test]
fn lockset_fires_only_the_four_rules() {
    let (f, _) = lint_lockset(&Config::all_paths());
    assert_eq!(f.len(), 7, "exactly the seeded sites may fire: {f:#?}");
}

/// Finding order is part of the output contract: the parallel scan
/// must produce byte-identical reports for every worker count.
#[test]
fn parallel_scan_is_deterministic_across_worker_counts() {
    let cfg = Config::all_paths();
    let names = [
        "lockset/svc.rs",
        "lockset/helpers.rs",
        "unordered.rs",
        "fma.rs",
        "safety.rs",
        "timing.rs",
        "metrics.rs",
        "allow_bad.rs",
        "lexer_edges.rs",
    ];
    let files: Vec<(String, String)> =
        names.iter().map(|rel| (rel.to_string(), fixture(rel))).collect();
    let base = lint_files(&files, &cfg, &ExecPolicy::sequential());
    assert!(!base.findings.is_empty());
    for pol in [ExecPolicy::workers(2), ExecPolicy::workers(5), ExecPolicy::auto()] {
        let rep = lint_files(&files, &cfg, &pol);
        assert_eq!(base.findings, rep.findings, "worker count changed the report");
        assert_eq!(base.suppressed, rep.suppressed);
    }
}

#[test]
fn lexer_edges_never_trip_any_rule() {
    let (f, suppressed) = lint_fixture("lexer_edges.rs", &Config::all_paths());
    assert!(f.is_empty(), "keywords in strings/comments must be invisible: {f:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn malformed_annotations_are_findings_themselves() {
    let (f, _) = lint_fixture("allow_bad.rs", &Config::all_paths());
    assert_eq!(lines(&f, "bad-allow"), vec![5, 10, 15, 20, 25]);
    assert_eq!(f.len(), 5, "only bad-allow may fire: {f:?}");

    // bad-allow is a meta-rule: disabling every listed rule leaves it on.
    let mut cfg = Config::all_paths();
    cfg.enabled.clear();
    let (f, _) = lint_fixture("allow_bad.rs", &cfg);
    assert_eq!(lines(&f, "bad-allow").len(), 5);
}

/// Raw-string hash depths, nested block comments, lifetime-vs-char and
/// raw identifiers straight through the lexer (the fixture above
/// checks the same shapes end-to-end through the rules).
#[test]
fn lexer_edge_tokens() {
    let lx = lexer::lex(r####"let s = r###"has "## inside"###;"####);
    assert_eq!(lx.toks.iter().filter(|t| t.kind == lexer::Kind::StrLit).count(), 1);

    let lx = lexer::lex("/* a /* b /* c */ */ */ fn f() {}");
    assert_eq!(lx.comments.len(), 1);
    assert!(lx.toks.iter().any(|t| t.text == "fn"));

    let lx = lexer::lex("fn g<'a>(x: &'a u8) -> u8 { let c = 'x'; *x + c as u8 }");
    assert_eq!(lx.toks.iter().filter(|t| t.kind == lexer::Kind::Lifetime).count(), 2);
    assert_eq!(lx.toks.iter().filter(|t| t.kind == lexer::Kind::CharLit).count(), 1);

    let lx = lexer::lex("let r#unsafe = 1;");
    assert!(lx.toks.iter().any(|t| t.kind == lexer::Kind::Ident && t.text == "unsafe"));
    // ...but a raw identifier must not read as the `unsafe` keyword in
    // rules: the lexer marks it by keeping the `r#` out of the text
    // while rules only see real keyword positions via statement shape.
}

/// The workspace itself must lint clean — with all ten rules, under
/// the default feature set and with `simd-lanes` (which un-gates the
/// AVX kernel file). This is the self-test behind the CI `--deny`
/// gate; real sites the interprocedural rules flagged are each
/// carrying a reasoned `allow`, which must keep counting as
/// suppressions here.
#[test]
fn workspace_is_clean_under_both_feature_sets() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap();

    let cfg = Config::workspace();
    assert!(["lock-cycle", "exec-under-lock", "panic-under-lock", "block-under-lock"]
        .iter()
        .all(|r| cfg.rule_on(r)));
    let rep = lint_root(&root, &cfg, &ExecPolicy::auto()).expect("workspace walk");
    assert!(rep.findings.is_empty(), "workspace findings: {:#?}", rep.findings);
    assert!(rep.files_scanned > 100, "walk looks truncated: {}", rep.files_scanned);
    assert_eq!(rep.files_skipped, vec!["crates/affinity/src/lanes.rs".to_string()]);
    assert!(rep.suppressed >= 8, "the reasoned allows must register: {}", rep.suppressed);

    // Worker count must not change the report.
    let seq = lint_root(&root, &cfg, &ExecPolicy::sequential()).expect("workspace walk");
    assert_eq!(seq.findings, rep.findings);
    assert_eq!(seq.suppressed, rep.suppressed);

    let mut cfg = Config::workspace();
    cfg.features.push("simd-lanes".into());
    let rep = lint_root(&root, &cfg, &ExecPolicy::auto()).expect("workspace walk");
    assert!(rep.findings.is_empty(), "simd-lanes findings: {:#?}", rep.findings);
    assert!(rep.files_skipped.is_empty());
}
