//! Call-graph builder integration tests over the multi-file fixture
//! (`fixtures/callgraph/`): exact resolved edges for cross-module
//! calls, trait-dispatch ambiguity, shadowed fn names and recursion,
//! plus the merged-candidate fallback flag.

use std::path::Path;

use alid_lint::callgraph::{unit, Graph, Unit};

/// Unit 0 = `a.rs`, 1 = `b.rs`, 2 = `c.rs`.
fn fixture_units() -> Vec<Unit> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/callgraph");
    ["a.rs", "b.rs", "c.rs"]
        .iter()
        .map(|name| {
            let src =
                std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
            unit(&format!("callgraph/{name}"), &src)
        })
        .collect()
}

/// Resolved edges of `caller` as `(callee qname, callee unit, merged)`,
/// sorted — unit index disambiguates the two shadowed `helper`s.
fn resolved(g: &Graph, caller: &str) -> Vec<(String, usize, bool)> {
    let id = g.find(caller).unwrap_or_else(|| panic!("no fn `{caller}` in graph"));
    let mut out: Vec<(String, usize, bool)> = g.calls[id]
        .iter()
        .flat_map(|c| c.callees.iter().map(|&k| (g.qname(k), g.fns[k].unit, c.merged)))
        .collect();
    out.sort();
    out
}

#[test]
fn typed_field_chain_and_same_file_helper_resolve_exactly() {
    let g = Graph::build(&fixture_units());
    assert_eq!(
        resolved(&g, "Widget::render"),
        vec![("Label::paint".into(), 0, false), ("helper".into(), 0, false)],
        "field chain types the receiver; bare `helper()` prefers module A's own"
    );
}

#[test]
fn recursion_is_a_self_edge() {
    let g = Graph::build(&fixture_units());
    assert_eq!(resolved(&g, "recurse"), vec![("recurse".into(), 0, false)]);
    assert_eq!(resolved(&g, "helper"), vec![("recurse".into(), 0, false)]);
}

#[test]
fn typed_trait_dispatch_resolves_to_one_impl() {
    let g = Graph::build(&fixture_units());
    assert_eq!(
        resolved(&g, "show"),
        vec![("Panel::draw".into(), 1, false)],
        "`p: &Panel` hints must exclude Sprite's impl"
    );
}

#[test]
fn untyped_trait_dispatch_merges_every_impl() {
    let g = Graph::build(&fixture_units());
    assert_eq!(
        resolved(&g, "blit"),
        vec![("Panel::draw".into(), 1, true), ("Sprite::draw".into(), 1, true)],
        "unresolvable receiver falls back to merging all candidates, flagged merged"
    );
}

#[test]
fn shadowed_helpers_stay_in_their_modules() {
    let g = Graph::build(&fixture_units());
    // Panel::draw's bare call binds to B's own helper, never A's.
    assert_eq!(resolved(&g, "Panel::draw"), vec![("helper".into(), 1, false)]);
    // C has no local helper: the path call resolves by module name,
    // the bare call merges both shadowed candidates.
    assert_eq!(
        resolved(&g, "run"),
        vec![("helper".into(), 0, false), ("helper".into(), 0, false), ("helper".into(), 1, false),]
    );
}
