//! `alid-lint` binary — also reachable as `alid lint`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(alid_lint::cli_main(&args) as u8)
}
