//! Lightweight item/block scanning over the token stream: function
//! spans (for per-function rules like `lock-order`) and attribute
//! lines (so comment look-ups can hop over `#[…]` rows between a
//! `// SAFETY:` comment and the `unsafe fn` it documents).

use crate::lexer::{Kind, Lexed, Tok};

/// One `fn` item (including nested fns; closures are not items).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the body `{`, or `usize::MAX` for bodyless decls.
    pub body: usize,
    /// Token index one past the closing `}` (or past the `;`).
    pub end: usize,
}

/// Scans all `fn` items. Bodies are found by walking from the name
/// past the balanced parameter list to the first `{` or `;` at
/// bracket depth zero (return types never contain braces), then
/// matching braces.
pub fn fns(lx: &Lexed) -> Vec<FnSpan> {
    let t = &lx.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if is(&t[i], "fn") && t.get(i + 1).is_some_and(|n| n.kind == Kind::Ident) {
            let name = t[i + 1].text.clone();
            let mut j = i + 2;
            let mut depth = 0i32; // () and [] nesting
            let mut body = usize::MAX;
            while j < t.len() {
                match t[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body = j;
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let end = if body == usize::MAX { j + 1 } else { matching_brace(t, body) + 1 };
            out.push(FnSpan { name, start: i, body, end });
        }
        i += 1;
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(t: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, tok) in t.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    t.len().saturating_sub(1)
}

/// The innermost fn whose span contains token index `k`.
pub fn enclosing_fn(fns: &[FnSpan], k: usize) -> Option<&FnSpan> {
    fns.iter().filter(|f| f.start <= k && k < f.end).max_by_key(|f| f.start)
}

/// Marks lines whose code tokens all belong to outer attributes
/// (`#[…]` / `#![…]`), so comment scans can skip over them.
pub fn attr_lines(lx: &Lexed) -> Vec<bool> {
    let t = &lx.toks;
    let mut attr = vec![false; lx.code_lines.len()];
    let mut covered = vec![false; t.len()];
    let mut i = 0;
    while i + 1 < t.len() {
        if is(&t[i], "#") && (is(&t[i + 1], "[") || (is(&t[i + 1], "!") && is_at(t, i + 2, "["))) {
            let open = if is(&t[i + 1], "[") { i + 1 } else { i + 2 };
            let mut depth = 0i32;
            let mut j = open;
            while j < t.len() {
                match t[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            for c in covered.iter_mut().take(j.min(t.len() - 1) + 1).skip(i) {
                *c = true;
            }
            i = j;
        }
        i += 1;
    }
    // A line is attribute-only when every code token on it is covered.
    let mut all = vec![true; attr.len()];
    let mut any = vec![false; attr.len()];
    for (k, tok) in t.iter().enumerate() {
        let l = tok.line as usize;
        any[l] = true;
        if !covered[k] {
            all[l] = false;
        }
    }
    for l in 0..attr.len() {
        attr[l] = any[l] && all[l];
    }
    attr
}

pub fn is(t: &Tok, s: &str) -> bool {
    t.text == s
}

pub fn is_at(t: &[Tok], i: usize, s: &str) -> bool {
    t.get(i).is_some_and(|x| x.text == s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_spans_cover_bodies_and_nesting() {
        let lx = lex("fn outer() { fn inner(x: u32) -> Vec<u32> { vec![x] } inner(1); }");
        let f = fns(&lx);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].name, "outer");
        assert_eq!(f[1].name, "inner");
        let inner_tok = f[1].body + 1;
        assert_eq!(enclosing_fn(&f, inner_tok).unwrap().name, "inner");
    }

    #[test]
    fn bodyless_trait_method_has_no_body() {
        let lx = lex("trait T { fn f(&self) -> usize; }");
        let f = fns(&lx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].body, usize::MAX);
    }

    #[test]
    fn attribute_only_lines_are_marked() {
        let lx = lex("#[inline(always)]\n#[target_feature(enable = \"avx\")]\nfn f() {}\n");
        let attrs = attr_lines(&lx);
        assert!(attrs[1] && attrs[2]);
        assert!(!attrs[3]);
    }
}
