//! A small Rust lexer: just enough fidelity that the rules never
//! mistake the *contents* of a string or comment for code.
//!
//! What it gets right (and what the fixture corpus pins):
//!
//! * line comments and **nested** block comments (`/* /* */ */`);
//! * plain, raw (`r"…"`, `r#"…"#`, any hash depth), byte and raw-byte
//!   strings, with escapes in the non-raw forms;
//! * `'a` lifetimes vs `'x'` char literals (including `'\''`, `'\u{…}'`
//!   and the pathological `'}'`-style punctuation chars);
//! * raw identifiers (`r#type`);
//! * numbers with enough shape (`1_000.5e-3`, `0xFF`, `1.0f64`) not to
//!   swallow a following `..` range or method call.
//!
//! Comments are kept out of the code-token stream but preserved — with
//! their line spans and text — because two rules are *about* comments
//! (`unsafe-needs-safety`, and the suppression-annotation grammar
//! itself).

/// One code token. Multi-char operators arrive as single-char `Punct`
/// tokens; the rules match token subsequences, so `::` being two `:`s
/// costs nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: Kind,
    /// Identifier text (or the single punctuation char). String and
    /// char literals keep only their kind — no rule looks inside.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Ident,
    Lifetime,
    CharLit,
    StrLit,
    NumLit,
    Punct,
}

/// One comment (line or block), with its text and 1-based line span.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub end_line: u32,
}

/// Lexed file: code tokens, comments, and which lines contain code.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// `code_lines[l]` is true when 1-based line `l` holds at least one
    /// code token (index 0 unused).
    pub code_lines: Vec<bool>,
}

impl Lexed {
    /// True when 1-based `line` contains at least one code token.
    pub fn has_code(&self, line: u32) -> bool {
        self.code_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Concatenated text of every comment touching 1-based `line`.
    pub fn comment_text_on(&self, line: u32) -> Option<String> {
        let mut out = String::new();
        for c in &self.comments {
            if c.line <= line && line <= c.end_line {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

pub fn lex(src: &str) -> Lexed {
    Lexer { s: src.as_bytes(), i: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.i < self.s.len() {
            let c = self.s[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                b'"' => self.string(),
                b'\'' => self.quote(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    // Multi-byte UTF-8 (only legal in strings/comments
                    // and idents we don't care about) and ASCII
                    // punctuation both land here; emit a single punct.
                    let ch = char::from(if c.is_ascii() { c } else { b'?' });
                    self.push(Kind::Punct, ch.to_string());
                    self.i += utf8_len(c);
                }
            }
        }
        self.finish_lines();
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.s.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: Kind, text: String) {
        self.out.toks.push(Tok { kind, text, line: self.line });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i] != b'\n' {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.out.comments.push(Comment { text, line: self.line, end_line: self.line });
    }

    fn block_comment(&mut self) {
        let (start, first_line) = (self.i, self.line);
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.s.len() && depth > 0 {
            match (self.s[self.i], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.out.comments.push(Comment { text, line: first_line, end_line: self.line });
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`, `b'…'`.
    /// Returns true when it consumed something; false means the `r`/`b`
    /// starts a plain identifier and the caller should lex it as such.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c = self.s[self.i];
        let (mut j, mut raw) = (self.i + 1, false);
        if c == b'b' && self.s.get(j) == Some(&b'r') {
            j += 1;
            raw = true;
        }
        if c == b'r' {
            raw = true;
        }
        let hashes_start = j;
        while self.s.get(j) == Some(&b'#') {
            j += 1;
        }
        let hashes = j - hashes_start;
        match self.s.get(j) {
            Some(b'"') if raw || c == b'b' => {
                if raw {
                    self.raw_string(j, hashes);
                } else {
                    // b"…": escape rules of a plain string.
                    self.i = j;
                    self.string();
                }
                true
            }
            Some(b'\'') if c == b'b' && hashes == 0 => {
                self.i = j;
                self.quote();
                true
            }
            _ if c == b'r' && hashes == 1 && self.s.get(j).is_some_and(|&b| ident_start(b)) => {
                // Raw identifier r#type: lex as the identifier `type`.
                self.i = j;
                self.ident();
                true
            }
            _ => false,
        }
    }

    /// Body of a raw string whose opening quote sits at `quote`;
    /// terminated by `"` followed by `hashes` `#`s.
    fn raw_string(&mut self, quote: usize, hashes: usize) {
        let line = self.line;
        self.i = quote + 1;
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' if self.s[self.i + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&b| b == b'#')
                    .count()
                    == hashes =>
                {
                    self.i += 1 + hashes;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.out.toks.push(Tok { kind: Kind::StrLit, text: String::new(), line });
    }

    fn string(&mut self) {
        let line = self.line;
        self.i += 1;
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.out.toks.push(Tok { kind: Kind::StrLit, text: String::new(), line });
    }

    /// A `'`: lifetime (`'a`, `'_`, `'static`) or char literal (`'x'`,
    /// `'\''`, `'\u{1F600}'`). The discriminator: after `'` + one
    /// ident-shaped char run, a closing `'` makes it a char literal
    /// (`'a'`), its absence makes it a lifetime (`'a`). Escapes and
    /// non-ident chars (`'}'`, `'"'`) are always char literals.
    fn quote(&mut self) {
        let j = self.i + 1;
        match self.s.get(j) {
            Some(b'\\') => {
                // Escaped char literal: scan to the closing quote,
                // starting at the backslash so `'\''` consumes the
                // escaped quote as part of the escape.
                self.i = j;
                while self.i < self.s.len() && self.s[self.i] != b'\'' {
                    self.i += if self.s[self.i] == b'\\' { 2 } else { 1 };
                }
                self.i += 1;
                self.push(Kind::CharLit, String::new());
            }
            Some(&c) if ident_start(c) => {
                let mut k = j;
                while self.s.get(k).is_some_and(|&b| ident_continue(b)) {
                    k += 1;
                }
                if self.s.get(k) == Some(&b'\'') {
                    self.push(Kind::CharLit, String::new());
                    self.i = k + 1;
                } else {
                    let name = String::from_utf8_lossy(&self.s[j..k]).into_owned();
                    self.push(Kind::Lifetime, name);
                    self.i = k;
                }
            }
            Some(_) => {
                // '}' or any other single non-ident char.
                let close = self.i + 2;
                self.i = if self.s.get(close) == Some(&b'\'') { close + 1 } else { j + 1 };
                self.push(Kind::CharLit, String::new());
            }
            None => {
                self.i = j;
                self.push(Kind::Punct, "'".to_string());
            }
        }
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.s.len() && ident_continue(self.s[self.i]) {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.push(Kind::Ident, text);
    }

    fn number(&mut self) {
        let start = self.i;
        // Integer part (covers 0x/0b/0o bodies and type suffixes: any
        // alphanumeric/underscore run).
        while self.i < self.s.len() && (ident_continue(self.s[self.i])) {
            self.i += 1;
        }
        // Fraction: a '.' followed by a digit (so `0..n` and
        // `1.method()` stay separate tokens).
        if self.s.get(self.i) == Some(&b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.i += 1;
            while self.i < self.s.len() && ident_continue(self.s[self.i]) {
                self.i += 1;
            }
        }
        // Exponent sign (the `e` itself was consumed above): `1e-5`.
        if (self.s.get(self.i) == Some(&b'-') || self.s.get(self.i) == Some(&b'+'))
            && self.s.get(self.i.wrapping_sub(1)).is_some_and(|&b| b == b'e' || b == b'E')
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.i += 1;
            while self.i < self.s.len() && ident_continue(self.s[self.i]) {
                self.i += 1;
            }
        }
        let _ = start;
        self.push(Kind::NumLit, String::new());
    }

    fn finish_lines(&mut self) {
        let last = self.out.toks.last().map_or(self.line, |t| t.line).max(self.line);
        let mut lines = vec![false; last as usize + 2];
        for t in &self.out.toks {
            lines[t.line as usize] = true;
        }
        self.out.code_lines = lines;
    }
}

fn ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn utf8_len(b: u8) -> usize {
    match b {
        _ if b < 0x80 => 1,
        _ if b & 0xE0 == 0xC0 => 2,
        _ if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == Kind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let x = "unsafe HashMap";"#), ["let", "x"]);
        assert_eq!(idents(r##"let x = r#"unsafe "quoted" HashMap"#;"##), ["let", "x"]);
        assert_eq!(idents("let x = b\"unsafe\";"), ["let", "x"]);
    }

    #[test]
    fn nested_block_comments_close_at_depth_zero() {
        let l = lex("/* outer /* unsafe inner */ still comment */ fn f() {}");
        let names: Vec<_> =
            l.toks.iter().filter(|t| t.kind == Kind::Ident).map(|t| t.text.clone()).collect();
        assert_eq!(names, ["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> =
            l.toks.iter().filter(|t| t.kind == Kind::Lifetime).map(|t| t.text.clone()).collect();
        assert_eq!(lifetimes, ["a", "a"]);
        assert_eq!(l.toks.iter().filter(|t| t.kind == Kind::CharLit).count(), 2);
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_calls() {
        let l = lex("for i in 0..10 { let y = 1.0e-5f64; let z = 2.max(3); }");
        let dots = l.toks.iter().filter(|t| t.kind == Kind::Punct && t.text == ".").count();
        // `..` (two) and `2.max` (one).
        assert_eq!(dots, 3);
        assert!(idents("2.max(3)").contains(&"max".to_string()));
    }

    #[test]
    fn comment_lines_carry_no_code() {
        let l = lex("// SAFETY: fine\nlet x = 1;\n");
        assert!(!l.has_code(1));
        assert!(l.has_code(2));
        assert!(l.comment_text_on(1).unwrap().contains("SAFETY"));
    }
}
