//! Finding output: an aligned human table and hand-rolled JSON (the
//! crate is std-only by design — see the workspace manifest's note on
//! registry access; pulling the serde shim in here would make the
//! linter depend on a crate it lints).

use crate::{Config, Report};

/// `file:line  rule  message`, aligned, with a one-line summary.
pub fn to_table(rep: &Report) -> String {
    let mut out = String::new();
    let mut rows: Vec<(String, &str, &str)> = rep
        .findings
        .iter()
        .map(|f| (format!("{}:{}", f.file, f.line), f.rule.as_str(), f.msg.as_str()))
        .collect();
    rows.sort();
    let loc_w = rows.iter().map(|(l, _, _)| l.len()).max().unwrap_or(0);
    let rule_w = rows.iter().map(|(_, r, _)| r.len()).max().unwrap_or(0);
    for (loc, rule, msg) in &rows {
        out.push_str(&format!("{loc:<loc_w$}  {rule:<rule_w$}  {msg}\n"));
    }
    out.push_str(&format!(
        "{} finding{} ({} suppressed by annotations) across {} files{}\n",
        rep.findings.len(),
        if rep.findings.len() == 1 { "" } else { "s" },
        rep.suppressed,
        rep.files_scanned,
        if rep.files_skipped.is_empty() {
            String::new()
        } else {
            format!("; skipped (feature-gated): {}", rep.files_skipped.join(", "))
        },
    ));
    out
}

pub fn to_json(rep: &Report, cfg: &Config) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in rep.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(&f.rule),
            json_str(&f.msg)
        ));
    }
    if !rep.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"suppressed\": {},\n", rep.suppressed));
    out.push_str(&format!("  \"files_scanned\": {},\n", rep.files_scanned));
    let skipped: Vec<String> = rep.files_skipped.iter().map(|s| json_str(s)).collect();
    out.push_str(&format!("  \"files_skipped\": [{}],\n", skipped.join(", ")));
    let feats: Vec<String> = cfg.features.iter().map(|s| json_str(s)).collect();
    out.push_str(&format!("  \"features\": [{}]\n}}", feats.join(", ")));
    out
}

/// Minimal SARIF 2.1.0 — one run, one rule descriptor per rule that
/// fired, one result per finding. Enough for GitHub code scanning and
/// `--deny` CI annotation upload; nothing speculative.
pub fn to_sarif(rep: &Report) -> String {
    let mut rules: Vec<&str> = rep.findings.iter().map(|f| f.rule.as_str()).collect();
    rules.sort();
    rules.dedup();
    let mut out = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
         \"tool\": {\n        \"driver\": {\n          \"name\": \"alid-lint\",\n          \
         \"informationUri\": \"DESIGN.md\",\n          \"rules\": [",
    );
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n            {{\"id\": {}}}", json_str(r)));
    }
    if !rules.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n      \"results\": [");
    for (i, f) in rep.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": {},\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": {}}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}\n          ]\n        }}",
            json_str(&f.rule),
            json_str(&f.msg),
            json_str(&f.file),
            f.line
        ));
    }
    if !rep.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
