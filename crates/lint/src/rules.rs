//! The per-file rules. All operate on the lexed token stream (so
//! string and comment contents can never trip them) plus the item
//! scanner's function spans; none of them parse full Rust. Where a
//! rule is a heuristic, the heuristic is chosen to over-approximate —
//! a false positive costs one justified `allow` annotation, a false
//! negative costs a silent determinism hole. The interprocedural
//! lock rules live in `lockset.rs`.

use crate::lexer::{Kind, Lexed, Tok};
use crate::scan::{self, FnSpan};
use crate::{Config, Finding};

pub struct Ctx<'a> {
    pub rel: &'a str,
    pub lx: &'a Lexed,
    pub fns: &'a [FnSpan],
    pub attrs: &'a [bool],
    pub cfg: &'a Config,
}

impl Ctx<'_> {
    fn emit(&self, out: &mut Vec<Finding>, line: u32, rule: &str, msg: String) {
        out.push(Finding { file: self.rel.to_string(), line, rule: rule.into(), msg });
    }
}

/// Hash-container type names whose iteration order is not canonical.
const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Methods that observe a container's iteration order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// `no-unordered-iteration`: in result-affecting crates, iterating a
/// `HashMap`/`HashSet` leaks hash order into outputs. The pass first
/// registers every binding/field/parameter whose declared type or
/// initializer names a hash container, then flags (a) order-observing
/// method calls (`.iter()`, `.keys()`, `.values()`, `.drain()`, …)
/// whose receiver ends in a registered name, and (b) `for … in`
/// loops whose iterated expression is a registered name. Key lookups
/// (`get`, `contains`, `insert`, `entry`) never fire. Fix by
/// converting to `BTreeMap`/`BTreeSet` (or sorting into a `Vec`
/// first), or annotate the site with a reason.
pub fn no_unordered_iteration(ctx: &Ctx, out: &mut Vec<Finding>) {
    const RULE: &str = "no-unordered-iteration";
    if !ctx.cfg.rule_on(RULE) || !Config::in_any(&ctx.cfg.ordered, ctx.rel) {
        return;
    }
    let t = &ctx.lx.toks;
    // (name, token range it applies to) — a binding inside a fn only
    // taints uses in that fn; struct fields and file-level items taint
    // the whole file.
    let mut regs: Vec<(String, Option<(usize, usize)>)> = Vec::new();
    let mut register = |name: &Tok, at: usize| {
        let scope = scan::enclosing_fn(ctx.fns, at).map(|f| (f.start, f.end));
        regs.push((name.text.clone(), scope));
    };
    for (i, tok) in t.iter().enumerate() {
        if tok.kind != Kind::Ident || !HASH_TYPES.contains(&tok.text.as_str()) {
            continue;
        }
        // Hop backward over a `path::to::` prefix to the head segment.
        let mut j = i;
        while j >= 3
            && scan::is(&t[j - 1], ":")
            && scan::is(&t[j - 2], ":")
            && t[j - 3].kind == Kind::Ident
        {
            j -= 3;
        }
        // `name: [&]['a][mut] Type` — declaration, field or parameter.
        let mut k = j;
        while k > 0
            && (scan::is(&t[k - 1], "&")
                || scan::is(&t[k - 1], "mut")
                || t[k - 1].kind == Kind::Lifetime)
        {
            k -= 1;
        }
        if k >= 2
            && scan::is(&t[k - 1], ":")
            && !scan::is(&t[k - 2], ":")
            && t[k - 2].kind == Kind::Ident
        {
            register(&t[k - 2], i);
            continue;
        }
        // `name = Type::new()` / `let mut name = Type::default()`.
        if j >= 2 && scan::is(&t[j - 1], "=") && t[j - 2].kind == Kind::Ident {
            register(&t[j - 2], i);
        }
    }

    let flagged = |name: &str, at: usize| {
        regs.iter().any(|(n, scope)| n == name && scope.is_none_or(|(s, e)| s <= at && at < e))
    };
    for (i, tok) in t.iter().enumerate() {
        // receiver . method (
        if tok.kind == Kind::Ident
            && ITER_METHODS.contains(&tok.text.as_str())
            && i >= 2
            && scan::is(&t[i - 1], ".")
            && t[i - 2].kind == Kind::Ident
            && flagged(&t[i - 2].text, i)
            && scan::is_at(t, i + 1, "(")
        {
            ctx.emit(
                out,
                tok.line,
                RULE,
                format!(
                    "`{}.{}()` iterates a hash container in a result-affecting crate; \
                     use a BTree collection / sort first, or annotate with \
                     `// alid-lint: allow({RULE}) -- <reason>`",
                    t[i - 2].text,
                    tok.text
                ),
            );
        }
        // for pat in [&][mut] name {
        if scan::is(tok, "for") {
            let Some(in_at) = find_in(t, i) else { continue };
            let mut e = in_at + 1;
            while e < t.len() && (scan::is(&t[e], "&") || scan::is(&t[e], "mut")) {
                e += 1;
            }
            if e + 1 < t.len()
                && t[e].kind == Kind::Ident
                && flagged(&t[e].text, e)
                && scan::is(&t[e + 1], "{")
            {
                ctx.emit(
                    out,
                    t[e].line,
                    RULE,
                    format!(
                        "`for … in {}` iterates a hash container in a result-affecting \
                         crate; use a BTree collection / sort first, or annotate with \
                         `// alid-lint: allow({RULE}) -- <reason>`",
                        t[e].text
                    ),
                );
            }
        }
    }
}

/// Token index of the `in` belonging to the `for` at `i` (skipping
/// any nested parens/brackets in the pattern).
fn find_in(t: &[Tok], for_at: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, tok) in t.iter().enumerate().skip(for_at + 1).take(64) {
        match tok.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 => return Some(j),
            "{" | ";" => return None,
            _ => {}
        }
    }
    None
}

/// `no-fma`: fused multiply-add rounds once where the scalar reference
/// rounds twice, so any `mul_add` (or `_mm*_fmadd_*`-family intrinsic)
/// in a kernel crate silently breaks the bit-for-bit blocked/SIMD
/// parity argument (DESIGN.md, "Blocked + SIMD kernel evaluation").
pub fn no_fma(ctx: &Ctx, out: &mut Vec<Finding>) {
    const RULE: &str = "no-fma";
    if !ctx.cfg.rule_on(RULE) || !Config::in_any(&ctx.cfg.kernel, ctx.rel) {
        return;
    }
    for tok in &ctx.lx.toks {
        if tok.kind != Kind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        let fused = name == "mul_add"
            || name == "fma"
            || ["fmadd", "fmsub", "fnmadd", "fnmsub"].iter().any(|p| name.contains(p));
        if fused {
            ctx.emit(
                out,
                tok.line,
                RULE,
                format!(
                    "`{name}` fuses multiply-add (one rounding instead of two) — banned in \
                     kernel crates; the bit-for-bit parity contract requires per-op rounding"
                ),
            );
        }
    }
}

/// `unsafe-needs-safety`: every `unsafe` block, fn or impl must be
/// preceded by a `// SAFETY:` comment (an `unsafe fn` may carry a
/// `# Safety` doc section instead). The comment must sit directly
/// above the statement/item containing the `unsafe` keyword —
/// attribute lines in between are skipped, blank lines are not.
pub fn unsafe_needs_safety(ctx: &Ctx, out: &mut Vec<Finding>) {
    const RULE: &str = "unsafe-needs-safety";
    if !ctx.cfg.rule_on(RULE) {
        return;
    }
    let t = &ctx.lx.toks;
    for (i, tok) in t.iter().enumerate() {
        if !(tok.kind == Kind::Ident && tok.text == "unsafe") {
            continue;
        }
        // Statement/item start: the token after the nearest `;`/`{`/`}`.
        let mut j = i;
        while j > 0 && !matches!(t[j - 1].text.as_str(), ";" | "{" | "}") {
            j -= 1;
        }
        let stmt_line = t[j].line;
        let mut text = String::new();
        for l in [stmt_line, tok.line] {
            if let Some(c) = ctx.lx.comment_text_on(l) {
                text.push_str(&c);
            }
        }
        let mut l = stmt_line.saturating_sub(1);
        while l > 0 {
            if ctx.attrs.get(l as usize).copied().unwrap_or(false) {
                l -= 1;
                continue;
            }
            if ctx.lx.has_code(l) {
                break;
            }
            match ctx.lx.comment_text_on(l) {
                Some(c) => {
                    text.push_str(&c);
                    l -= 1;
                }
                None => break,
            }
        }
        if !(text.contains("SAFETY:") || text.contains("# Safety")) {
            let what = match t.get(i + 1).map(|n| n.text.as_str()) {
                Some("fn") => "unsafe fn",
                Some("impl") => "unsafe impl",
                _ => "unsafe block",
            };
            ctx.emit(
                out,
                tok.line,
                RULE,
                format!(
                    "{what} without a `// SAFETY:` comment (or `# Safety` doc section) \
                     directly above its statement"
                ),
            );
        }
    }
}

/// `no-raw-threads` / `no-raw-time`: `thread::spawn` (and `.spawn()`
/// builders) and `Instant::now`/`SystemTime::now` are confined to the
/// allowlisted modules (exec pool/autotuner, benches, the HTTP front
/// end) — everywhere else a clock read or an unmanaged thread is a
/// channel through which scheduling could feed output values.
pub fn raw_threads_and_time(ctx: &Ctx, out: &mut Vec<Finding>) {
    if Config::in_any(&ctx.cfg.timing_allow, ctx.rel) {
        return;
    }
    let t = &ctx.lx.toks;
    for (i, tok) in t.iter().enumerate() {
        if tok.kind != Kind::Ident {
            continue;
        }
        let path_call = |head: &str, tail: usize| {
            tok.text == head
                && scan::is_at(t, i + 1, ":")
                && scan::is_at(t, i + 2, ":")
                && t.get(i + 3).is_some_and(|n| n.text == ["spawn", "now"][tail])
        };
        if ctx.cfg.rule_on("no-raw-threads") {
            let spawn_path = path_call("thread", 0);
            let spawn_method = tok.text == "spawn"
                && i >= 1
                && scan::is(&t[i - 1], ".")
                && scan::is_at(t, i + 1, "(");
            if spawn_path || spawn_method {
                ctx.emit(
                    out,
                    tok.line,
                    "no-raw-threads",
                    "raw thread spawn outside the exec pool allowlist; route parallelism \
                     through `ExecPolicy` (or annotate with a reason)"
                        .into(),
                );
            }
        }
        if ctx.cfg.rule_on("no-raw-time") && (path_call("Instant", 1) || path_call("SystemTime", 1))
        {
            ctx.emit(
                out,
                tok.line,
                "no-raw-time",
                format!(
                    "`{}::now()` outside the timing allowlist; clock reads must never be \
                     able to feed output values (annotate with a reason if this one cannot)",
                    tok.text
                ),
            );
        }
    }
}

/// The metric-reading surface of `alid-obs`. These names are chosen to
/// be distinctive precisely so this token-level rule can spot them:
/// hot paths get write-only handles (`inc`/`add`/`set`/`observe_ns`),
/// and anything that reads a value back carries one of these.
const METRIC_READS: [&str; 3] = ["metric_value", "snapshot_samples", "render_prometheus"];

/// `no-metric-branching`: observation is telemetry, never control. A
/// result-affecting crate may *bump* metrics freely, but reading one
/// back (`.metric_value()`, `.snapshot_samples()`,
/// `.render_prometheus()`) outside an exposition surface is a channel
/// through which timing could feed outputs — exactly the loop the
/// determinism contract forbids. Reads are fine in the timing
/// allowlist (the obs crate itself, the HTTP front end, benches) and
/// in `#[cfg(test)]` modules, where a read is an assertion.
pub fn no_metric_branching(ctx: &Ctx, out: &mut Vec<Finding>) {
    const RULE: &str = "no-metric-branching";
    if !ctx.cfg.rule_on(RULE)
        || !Config::in_any(&ctx.cfg.ordered, ctx.rel)
        || Config::in_any(&ctx.cfg.timing_allow, ctx.rel)
    {
        return;
    }
    let t = &ctx.lx.toks;
    let tests = test_mod_regions(t);
    for (i, tok) in t.iter().enumerate() {
        if tok.kind != Kind::Ident
            || !METRIC_READS.contains(&tok.text.as_str())
            || i == 0
            || !scan::is(&t[i - 1], ".")
            || !scan::is_at(t, i + 1, "(")
        {
            continue;
        }
        if tests.iter().any(|&(s, e)| s <= i && i < e) {
            continue;
        }
        ctx.emit(
            out,
            tok.line,
            RULE,
            format!(
                "`.{}()` reads a metric in a result-affecting crate; observation is \
                 telemetry, never control — move the read to an exposition surface, or \
                 annotate with `// alid-lint: allow({RULE}) -- <reason>`",
                tok.text
            ),
        );
    }
}

/// Token ranges of `#[cfg(test)] mod … { … }` items.
fn test_mod_regions(t: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        if !(scan::is(tok, "mod")
            && t.get(i + 1).is_some_and(|n| n.kind == Kind::Ident)
            && scan::is_at(t, i + 2, "{"))
        {
            continue;
        }
        // Look back over the attribute tokens (`#[cfg(test)]`, possibly
        // several attributes) for a `cfg` immediately followed by
        // `(test)`; stop at the previous item boundary.
        let mut gated = false;
        let mut j = i;
        while j > 0 && !matches!(t[j - 1].text.as_str(), ";" | "{" | "}") {
            j -= 1;
            if t[j].text == "cfg"
                && scan::is_at(t, j + 1, "(")
                && t.get(j + 2).is_some_and(|n| n.text == "test")
            {
                gated = true;
            }
        }
        if !gated {
            continue;
        }
        // Match the mod's braces to find where the region ends.
        let mut depth = 0usize;
        let mut end = t.len();
        for (k, tk) in t.iter().enumerate().skip(i + 2) {
            match tk.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        regions.push((i, end));
    }
    regions
}
