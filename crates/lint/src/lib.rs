//! `alid-lint` — the workspace determinism & safety linter.
//!
//! Every guarantee this reproduction ships (byte-identical results
//! across worker counts, restore-then-continue parity, merged-view
//! equivalence, bit-for-bit blocked/SIMD kernels) is otherwise only
//! enforced *dynamically*, by parity tests that can miss whatever the
//! fixtures don't reach. This crate encodes the constraints those
//! guarantees rest on as a static-analysis pass over the whole
//! workspace — a real (hand-rolled, std-only) Rust lexer plus a
//! lightweight item scanner feeding six per-file rules:
//!
//! * [`no-unordered-iteration`] — iterating a `HashMap`/`HashSet` in a
//!   result-affecting crate leaks hash order into outputs;
//! * [`no-fma`] — `mul_add`/FMA intrinsics in kernel crates break the
//!   bit-for-bit blocked/SIMD argument (round once per op, not fused);
//! * [`unsafe-needs-safety`] — every `unsafe` block/fn/impl must carry
//!   a `// SAFETY:` comment (or `# Safety` doc section);
//! * [`no-raw-threads`] / [`no-raw-time`] — thread spawns and clock
//!   reads only in allowlisted modules, so timing can never feed
//!   output values;
//! * [`no-metric-branching`] — observation is telemetry, never
//!   control: a result-affecting crate may bump `alid-obs` metrics but
//!   never read one back outside an exposition surface or a test;
//!
//! plus an **interprocedural lock-set analysis** (a workspace-wide
//! call graph + effect fixpoint, `callgraph.rs` / `lockset.rs`) behind
//! four more rules in the lock-disciplined crates:
//!
//! * [`lock-cycle`] — a second same-class lock acquisition reachable
//!   while one is held (self-deadlock; replaces the retired intra-fn
//!   `lock-order` heuristic);
//! * [`exec-under-lock`] — an `ExecPolicy` dispatch reachable under a
//!   shard guard (the PR 4 deadlock class, statically banned);
//! * [`panic-under-lock`] — `unwrap`/`expect`/`panic!`/`assert!`
//!   reachable under a guard (mutex poisoning);
//! * [`block-under-lock`] — file/socket I/O under a guard.
//!
//! Suppression is per-site and must be justified:
//!
//! ```text
//! // alid-lint: allow(no-unordered-iteration) -- drained into a Vec and sorted below
//! ```
//!
//! An empty reason is itself an error (`bad-allow`), as is an unknown
//! rule name. Findings are emitted as a human table, JSON or SARIF;
//! `--deny` turns any finding into a non-zero exit for CI. See
//! DESIGN.md, "Enforced invariants" and "Interprocedural analysis".

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod lexer;
pub mod lockset;
pub mod report;
pub mod rules;
pub mod scan;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use alid_exec::ExecPolicy;

/// Rule identifiers, in severity-agnostic display order. `bad-allow`
/// (malformed suppression) is a meta-rule: always on, not listed here.
pub const RULES: [&str; 10] = [
    "no-unordered-iteration",
    "no-fma",
    "unsafe-needs-safety",
    "no-raw-threads",
    "no-raw-time",
    "no-metric-branching",
    "lock-cycle",
    "exec-under-lock",
    "panic-under-lock",
    "block-under-lock",
];

/// One finding, pointing at a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub msg: String,
}

/// Where each rule applies, as workspace-relative path prefixes
/// (forward slashes). Injectable so the fixture tests can point every
/// rule at a corpus directory.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose outputs are part of the determinism contract:
    /// `no-unordered-iteration` fires here.
    pub ordered: Vec<String>,
    /// Kernel crates: `no-fma` fires here.
    pub kernel: Vec<String>,
    /// Paths where thread spawns / clock reads are legitimate (the
    /// exec pool and autotuner, the obs crate — the one sanctioned
    /// clock owner — benches, the HTTP front end, the journal's
    /// group-commit writer thread). Timing there feeds chunk sizes,
    /// reports, and fsync batching, never output values. Doubles as
    /// the exposition allowlist for `no-metric-branching`: where a
    /// clock may be read, a metric may be read back out for telemetry.
    pub timing_allow: Vec<String>,
    /// The lock-disciplined crates: guard regions are tracked and the
    /// four `*-under-lock` / `lock-cycle` rules fire here (effect
    /// summaries are still computed workspace-wide, so a chain from a
    /// service guard into `crates/core` is visible).
    pub lockset: Vec<String>,
    /// Sanctioned lock constructors, by fn name, with the lock classes
    /// they acquire in order. Their bodies are exempt from the
    /// analysis (they acquire one class repeatedly to build a
    /// consistent cut — the one sanctioned shape); their callers hold
    /// the listed classes.
    pub lock_constructors: Vec<(String, Vec<String>)>,
    /// Files that only enter the build under a cargo feature, keyed by
    /// that feature; skipped unless the feature is in `features`. CI
    /// runs the linter once per feature set so these are still covered.
    pub gated_files: Vec<(String, String)>,
    /// Enabled cargo features (`--features`).
    pub features: Vec<String>,
    /// Enabled rules (`--only` / `--disable` reduce this set).
    pub enabled: BTreeSet<String>,
}

impl Config {
    /// The real workspace policy (documented in DESIGN.md).
    pub fn workspace() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        Config {
            ordered: v(&["crates/core/", "crates/affinity/", "crates/lsh/", "crates/service/"]),
            kernel: v(&["crates/affinity/", "crates/linalg/"]),
            timing_allow: v(&[
                "crates/exec/",
                "crates/bench/",
                "crates/obs/",
                "crates/service/src/http.rs",
                "crates/service/src/journal.rs",
                "crates/shims/criterion/",
                "examples/",
            ]),
            lockset: v(&["crates/service/", "crates/exec/"]),
            lock_constructors: vec![
                ("lock_shards".into(), vec!["shards".into()]),
                ("lock_all".into(), vec!["shards".into(), "placements".into()]),
            ],
            gated_files: vec![("crates/affinity/src/lanes.rs".into(), "simd-lanes".into())],
            features: Vec::new(),
            enabled: RULES.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// A config whose every rule applies everywhere — what the fixture
    /// corpus is linted with.
    pub fn all_paths() -> Self {
        let everywhere = vec![String::new()];
        Config {
            ordered: everywhere.clone(),
            kernel: everywhere.clone(),
            timing_allow: Vec::new(),
            lockset: everywhere,
            lock_constructors: vec![
                ("lock_shards".into(), vec!["shards".into()]),
                ("lock_all".into(), vec!["shards".into(), "placements".into()]),
            ],
            gated_files: Vec::new(),
            features: Vec::new(),
            enabled: RULES.iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn rule_on(&self, rule: &str) -> bool {
        self.enabled.contains(rule)
    }

    pub fn in_any(prefixes: &[String], rel: &str) -> bool {
        prefixes.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    pub files_scanned: usize,
    pub files_skipped: Vec<String>,
}

/// Per-file phase-1 output: the graph unit plus everything that does
/// not need cross-file context.
struct Scanned {
    unit: callgraph::Unit,
    local: Vec<Finding>,
    allows: Vec<Allow>,
    bad: Vec<Finding>,
}

fn scan_file(rel: &str, src: &str, cfg: &Config) -> Scanned {
    let unit = callgraph::unit(rel, src);
    let ctx = rules::Ctx { rel, lx: &unit.lx, fns: &unit.fns, attrs: &unit.attrs, cfg };
    let mut local = Vec::new();
    rules::no_unordered_iteration(&ctx, &mut local);
    rules::no_fma(&ctx, &mut local);
    rules::unsafe_needs_safety(&ctx, &mut local);
    rules::raw_threads_and_time(&ctx, &mut local);
    rules::no_metric_branching(&ctx, &mut local);
    let (allows, bad) = parse_allows(rel, &unit.lx);
    Scanned { unit, local, allows, bad }
}

/// Lints a set of files as one workspace: per-file scanning fans out
/// over `pol` (results come back in input order, so the report is
/// byte-identical for every worker count), then the call graph, effect
/// fixpoint and lock-set rules run over the merged units.
pub fn lint_files(files: &[(String, String)], cfg: &Config, pol: &ExecPolicy) -> Report {
    let mut scanned: Vec<Scanned> = pol.map_tasks(files, |(rel, src)| scan_file(rel, src, cfg));
    let mut units = Vec::with_capacity(scanned.len());
    let mut findings = Vec::new();
    let mut allows: Vec<(String, Vec<Allow>)> = Vec::new();
    for s in scanned.drain(..) {
        findings.extend(s.local);
        findings.extend(s.bad);
        allows.push((s.unit.rel.clone(), s.allows));
        units.push(s.unit);
    }
    let g = callgraph::Graph::build(&units);
    let sums = lockset::summarize(&units, &g, cfg);
    findings.extend(lockset::check(&units, &g, &sums, cfg));
    let mut suppressed = 0usize;
    findings.retain(|f| {
        let covered = f.rule != "bad-allow"
            && allows.iter().any(|(rel, aa)| {
                rel == &f.file
                    && aa.iter().any(|a| a.covers(f.line) && a.rules.iter().any(|r| r == &f.rule))
            });
        if covered {
            suppressed += 1;
        }
        !covered
    });
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.msg).cmp(&(&b.file, b.line, &b.rule, &b.msg))
    });
    findings.dedup();
    Report { findings, suppressed, files_scanned: units.len(), files_skipped: Vec::new() }
}

/// Lints one file's source text (single-file view of [`lint_files`]).
/// Returns findings plus the number a suppression annotation covered.
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> (Vec<Finding>, usize) {
    let files = vec![(rel.to_string(), src.to_string())];
    let rep = lint_files(&files, cfg, &ExecPolicy::sequential());
    (rep.findings, rep.suppressed)
}

/// One parsed suppression directive (marker + rules + reason). It covers the
/// statement beginning on the first code line at/after the annotation
/// (so one annotation above a multi-line statement covers all of it).
struct Allow {
    rules: Vec<String>,
    from: u32,
    to: u32,
}

impl Allow {
    fn covers(&self, line: u32) -> bool {
        self.from <= line && line <= self.to
    }
}

const MARKER: &str = "alid-lint:";

fn parse_allows(rel: &str, lx: &lexer::Lexed) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &lx.comments {
        for (off, text) in c.text.lines().enumerate() {
            let line = c.line + off as u32;
            let Some(at) = text.find(MARKER) else { continue };
            let rest = text[at + MARKER.len()..].trim_start();
            let mut err = |msg: String| {
                bad.push(Finding { file: rel.into(), line, rule: "bad-allow".into(), msg });
            };
            let Some(args) = rest
                .strip_prefix("allow(")
                .and_then(|r| r.find(')').map(|close| (&r[..close], r[close + 1..].trim_start())))
            else {
                err(format!("malformed annotation; expected `{MARKER} allow(<rule>) -- <reason>`"));
                continue;
            };
            let (args, tail) = args;
            let names: Vec<String> =
                args.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
            let unknown: Vec<&String> =
                names.iter().filter(|n| !RULES.contains(&n.as_str())).collect();
            if names.is_empty() {
                err("allow() names no rule".into());
                continue;
            }
            if let Some(u) = unknown.first() {
                err(format!("unknown rule `{u}` (known: {})", RULES.join(", ")));
                continue;
            }
            let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
            if reason.is_empty() {
                err(format!(
                    "suppressing `{}` needs a non-empty reason: `-- <why this is sound>`",
                    names.join(", ")
                ));
                continue;
            }
            // Coverage: the annotation's own line if it has code,
            // otherwise the statement starting at the next code line
            // (through its terminating `;`/`{`, capped at 5 lines).
            let from = if lx.has_code(line) {
                line
            } else {
                let mut l = line + 1;
                while !lx.has_code(l) && (l as usize) < lx.code_lines.len() {
                    l += 1;
                }
                l
            };
            let mut to = from;
            if let Some(first) = lx.toks.iter().position(|t| t.line >= from) {
                for t in &lx.toks[first..] {
                    to = t.line;
                    if t.text == ";" || t.text == "{" || t.line > from + 5 {
                        break;
                    }
                }
            }
            allows.push(Allow { rules: names, from, to });
        }
    }
    (allows, bad)
}

/// Walks `root` for `.rs` files (skipping `target/`, VCS dirs, and the
/// linter's own seeded-violation corpus) and lints them as one
/// workspace.
pub fn lint_root(root: &Path, cfg: &Config, pol: &ExecPolicy) -> std::io::Result<Report> {
    let mut rels = Vec::new();
    collect_rs(root, root, &mut rels)?;
    rels.sort();
    let mut skipped = Vec::new();
    let mut files = Vec::new();
    for rel in rels {
        if let Some((_, feature)) = cfg.gated_files.iter().find(|(p, _)| p == &rel) {
            if !cfg.features.iter().any(|f| f == feature) {
                skipped.push(rel);
                continue;
            }
        }
        let src = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, src));
    }
    let mut rep = lint_files(&files, cfg, pol);
    rep.files_skipped = skipped;
    Ok(rep)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Output format for the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Json,
    Sarif,
}

/// The CLI (shared by the `alid-lint` binary and `alid lint`).
/// Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut cfg = Config::workspace();
    let mut deny = false;
    let mut format = Format::Table;
    let mut root: Option<PathBuf> = None;
    let mut pol = ExecPolicy::auto();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => format = Format::Json,
            "--format" => match it.next().map(String::as_str) {
                Some("table") => format = Format::Table,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => return usage_err(&format!("unknown format `{other}`")),
                None => return usage_err("--format needs table|json|sarif"),
            },
            "--workers" => match it.next().and_then(|w| w.parse::<usize>().ok()) {
                Some(0) | None => return usage_err("--workers needs a positive integer"),
                Some(1) => pol = ExecPolicy::sequential(),
                Some(w) => pol = ExecPolicy::workers(w),
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_err("--root needs a path"),
            },
            "--features" => match it.next() {
                Some(f) => cfg
                    .features
                    .extend(f.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty())),
                None => return usage_err("--features needs a comma-separated list"),
            },
            "--only" => match it.next() {
                Some(list) => {
                    let wanted: BTreeSet<String> =
                        list.split(',').map(|s| s.trim().to_string()).collect();
                    if let Some(u) = wanted.iter().find(|r| !RULES.contains(&r.as_str())) {
                        return usage_err(&format!("unknown rule `{u}`"));
                    }
                    cfg.enabled = wanted;
                }
                None => return usage_err("--only needs a comma-separated rule list"),
            },
            "--disable" => match it.next() {
                Some(list) => {
                    for r in list.split(',').map(str::trim) {
                        if !RULES.contains(&r) {
                            return usage_err(&format!("unknown rule `{r}`"));
                        }
                        cfg.enabled.remove(r);
                    }
                }
                None => return usage_err("--disable needs a comma-separated rule list"),
            },
            "--help" | "-h" => {
                println!("{}", USAGE);
                return 0;
            }
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("alid-lint: no workspace root found (pass --root)");
            return 2;
        }
    };
    match lint_root(&root, &cfg, &pol) {
        Ok(rep) => {
            match format {
                Format::Json => println!("{}", report::to_json(&rep, &cfg)),
                Format::Sarif => println!("{}", report::to_sarif(&rep)),
                Format::Table => print!("{}", report::to_table(&rep)),
            }
            if deny && !rep.findings.is_empty() {
                1
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("alid-lint: {e}");
            2
        }
    }
}

const USAGE: &str = "usage: alid-lint [options]\n\
     \n\
     Walks the workspace and enforces the determinism & safety rules\n\
     (DESIGN.md, \"Enforced invariants\"), including the interprocedural\n\
     lock-set analysis. Suppress per site with\n\
     `// alid-lint: allow(<rule>) -- <reason>`; the reason is required.\n\
     \n\
     options:\n\
       --root <path>       workspace root (default: nearest [workspace])\n\
       --deny              exit 1 when any finding remains (CI mode)\n\
       --format <f>        table (default) | json | sarif\n\
       --json              alias for --format json\n\
       --workers <n>       parallel file scanning (default: auto)\n\
       --features <csv>    cargo features in effect (feature-gated files\n\
                           are skipped unless their feature is listed)\n\
       --only <rules>      run only these rules\n\
       --disable <rules>   run all but these rules\n\
       --help";

fn usage_err(msg: &str) -> i32 {
    eprintln!("alid-lint: {msg}\n{USAGE}");
    2
}
