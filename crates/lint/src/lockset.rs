//! Interprocedural lock-set analysis over the call graph: which lock
//! classes each fn may acquire, which panicking / exec-dispatching /
//! blocking operations it may reach, and — per guard *region* in the
//! lock-disciplined crates — what fires while the guard is live.
//!
//! Lock classes are named by the receiver chain's last struct-field
//! identifier (`self.shards[s].lock()` → `shards`, `shared.queue.lock()`
//! → `queue`); same-named fields merge, which over-approximates. A
//! *region* runs from the acquisition to the end of the binding's
//! scope (truncated at `drop(binding)`), or — for unbound temporaries
//! — to the end of the statement, extended through an `if let`/`match`
//! body when the guard is the scrutinee (temporary lifetime
//! extension). Effect summaries are a bottom-up fixpoint with
//! deterministic shortest witness chains; the four rules
//! (`lock-cycle`, `exec-under-lock`, `panic-under-lock`,
//! `block-under-lock`) then check every region against the summaries
//! of everything reachable inside it. The `.lock().expect(…)` /
//! `.wait(g).expect(…)` acquisition idiom is exempt from
//! `panic-under-lock`: that panic *is* the poison check, not a new
//! poisoner.

use std::collections::BTreeMap;

use crate::callgraph::{count_args, matching_open, Graph, Unit, GUARD_TYPES};
use crate::lexer::Kind;
use crate::scan;
use crate::{Config, Finding};

/// `ExecPolicy` / pool dispatch entry points: running one of these
/// while holding a shard guard re-creates the PR 4 deadlock class (a
/// waiter helping a foreign job that needs the held lock).
pub const EXEC_DISPATCH: [&str; 9] = [
    "map_indexed",
    "map_indexed_chunked",
    "map_indexed_tuned",
    "map_tasks",
    "for_each_index",
    "for_each_index_with",
    "for_each_index_tuned_with",
    "for_each_span_tuned_with",
    "run_phase",
];

/// Panicking method calls (`unwrap_or*` deliberately absent — those
/// don't panic).
const PANIC_METHODS: [&str; 4] = ["unwrap", "unwrap_err", "expect", "expect_err"];

/// Panicking macros (matched as `name !`; `debug_assert*` excluded —
/// release builds strip them).
const PANIC_MACROS: [&str; 7] =
    ["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Blocking-I/O method calls.
const BLOCK_METHODS: [&str; 8] = [
    "read_to_end",
    "read_to_string",
    "read_exact",
    "write_all",
    "sync_all",
    "flush",
    "accept",
    "recv",
];

/// Blocking-I/O path calls (`File::open`, …).
const BLOCK_PATHS: [(&str, &str); 7] = [
    ("File", "open"),
    ("File", "create"),
    ("TcpStream", "connect"),
    ("TcpListener", "bind"),
    ("fs", "read"),
    ("fs", "write"),
    ("fs", "read_to_string"),
];

/// What a fn may do, directly or transitively.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    Panic,
    Exec,
    Block,
    /// May acquire a lock of this class.
    Acquire(String),
}

/// One step of a witness chain, rendered `what (file:line)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Step {
    pub what: String,
    pub file: String,
    pub line: u32,
}

pub type Witness = Vec<Step>;

/// Per-fn effect summaries (deterministic shortest witness per effect).
pub struct Summaries(Vec<BTreeMap<Effect, Witness>>);

impl Summaries {
    pub fn effects(&self, id: usize) -> &BTreeMap<Effect, Witness> {
        &self.0[id]
    }
}

/// A directly-observed operation inside one fn body.
#[derive(Debug, Clone)]
struct Op {
    tok: usize,
    line: u32,
    effect: Effect,
    what: String,
}

/// One live-guard region inside a fn body (token interval, inclusive
/// of `end`).
#[derive(Debug, Clone)]
struct Region {
    class: String,
    acq_tok: usize,
    end_tok: usize,
    line: u32,
}

/// Computes per-fn effect summaries: a bottom-up fixpoint where a fn's
/// effects are its direct ops plus every callee candidate's effects
/// (shortest witness wins; ties broken lexicographically, so the
/// result is independent of iteration order).
pub fn summarize(units: &[Unit], g: &Graph, cfg: &Config) -> Summaries {
    let n = g.fns.len();
    let direct: Vec<Vec<Op>> = (0..n).map(|id| direct_ops(units, g, cfg, id)).collect();
    let sanction: Vec<Option<Vec<String>>> = (0..n)
        .map(|id| {
            cfg.lock_constructors
                .iter()
                .find(|(name, _)| *name == g.fns[id].name)
                .map(|(_, classes)| classes.clone())
        })
        .collect();
    let mut sums: Vec<BTreeMap<Effect, Witness>> = vec![BTreeMap::new(); n];
    for id in 0..n {
        if let Some(classes) = &sanction[id] {
            let f = &g.fns[id];
            for c in classes {
                sums[id].insert(
                    Effect::Acquire(c.clone()),
                    vec![Step {
                        what: format!("`{}` (sanctioned lock constructor)", f.name),
                        file: units[f.unit].rel.clone(),
                        line: f.line,
                    }],
                );
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            if sanction[id].is_some() {
                continue; // summary fixed by config
            }
            let mut mine: BTreeMap<Effect, Witness> = BTreeMap::new();
            let rel = &units[g.fns[id].unit].rel;
            for op in &direct[id] {
                let w = vec![Step { what: op.what.clone(), file: rel.clone(), line: op.line }];
                merge(&mut mine, op.effect.clone(), w);
            }
            for call in &g.calls[id] {
                for &callee in &call.callees {
                    for (eff, w) in &sums[callee] {
                        let mut chain = Vec::with_capacity(w.len() + 1);
                        chain.push(Step {
                            what: g.qname(callee),
                            file: rel.clone(),
                            line: call.line,
                        });
                        chain.extend(w.iter().cloned());
                        merge(&mut mine, eff.clone(), chain);
                    }
                }
            }
            if mine != sums[id] {
                sums[id] = mine;
                changed = true;
            }
        }
    }
    Summaries(sums)
}

/// Keeps the better witness: shorter, then lexicographically smaller.
fn merge(map: &mut BTreeMap<Effect, Witness>, eff: Effect, w: Witness) {
    match map.get(&eff) {
        Some(old) if (old.len(), old.as_slice()) <= (w.len(), w.as_slice()) => {}
        _ => {
            map.insert(eff, w);
        }
    }
}

/// Directly-observed ops of one fn: panics, exec dispatches, blocking
/// I/O everywhere; lock acquisitions only in the `lockset` paths.
fn direct_ops(units: &[Unit], g: &Graph, cfg: &Config, id: usize) -> Vec<Op> {
    let f = &g.fns[id];
    let unit = &units[f.unit];
    let t = &unit.lx.toks;
    let mut out = Vec::new();
    if f.span.body == usize::MAX {
        return out;
    }
    let in_lockset = Config::in_any(&cfg.lockset, &unit.rel);
    let nested: Vec<(usize, usize)> = g.per_unit[f.unit]
        .iter()
        .map(|&o| &g.fns[o].span)
        .filter(|o| o.start > f.span.start && o.end <= f.span.end)
        .map(|o| (o.start, o.end))
        .collect();
    let mut k = f.span.body;
    while k < f.span.end.min(t.len()) {
        if let Some(&(_, e)) = nested.iter().find(|&&(s, _)| s == k) {
            k = e;
            continue;
        }
        let tok = &t[k];
        if tok.kind == Kind::Ident {
            let name = tok.text.as_str();
            let method = k >= 1 && scan::is(&t[k - 1], ".") && scan::is_at(t, k + 1, "(");
            let mac = scan::is_at(t, k + 1, "!");
            if method && PANIC_METHODS.contains(&name) && !acquisition_idiom(t, k) {
                out.push(Op {
                    tok: k,
                    line: tok.line,
                    effect: Effect::Panic,
                    what: format!("`.{name}()`"),
                });
            }
            if mac && PANIC_MACROS.contains(&name) {
                out.push(Op {
                    tok: k,
                    line: tok.line,
                    effect: Effect::Panic,
                    what: format!("`{name}!`"),
                });
            }
            if method && EXEC_DISPATCH.contains(&name) {
                out.push(Op {
                    tok: k,
                    line: tok.line,
                    effect: Effect::Exec,
                    what: format!("`.{name}(…)` dispatch"),
                });
            }
            if method && BLOCK_METHODS.contains(&name) {
                out.push(Op {
                    tok: k,
                    line: tok.line,
                    effect: Effect::Block,
                    what: format!("`.{name}()`"),
                });
            }
            if scan::is_at(t, k + 1, ":")
                && scan::is_at(t, k + 2, ":")
                && t.get(k + 3).is_some_and(|x| x.kind == Kind::Ident)
                && scan::is_at(t, k + 4, "(")
                && BLOCK_PATHS.iter().any(|(q, m)| *q == name && *m == t[k + 3].text)
            {
                out.push(Op {
                    tok: k + 3,
                    line: t[k + 3].line,
                    effect: Effect::Block,
                    what: format!("`{name}::{}()`", t[k + 3].text),
                });
            }
            if in_lockset {
                if let Some(class) = direct_acquisition(g, t, k) {
                    out.push(Op {
                        tok: k,
                        line: tok.line,
                        effect: Effect::Acquire(class.clone()),
                        what: format!("`.{name}()` on `{class}`"),
                    });
                }
            }
        }
        k += 1;
    }
    out
}

/// `.lock()` / `.read()` / `.write()` with zero arguments (the
/// `Mutex`/`RwLock` shapes; `File::read(buf)` has arity 1) → the lock
/// class, named by the receiver chain.
fn direct_acquisition(g: &Graph, t: &[crate::lexer::Tok], k: usize) -> Option<String> {
    let name = t[k].text.as_str();
    if !matches!(name, "lock" | "read" | "write")
        || k == 0
        || !scan::is(&t[k - 1], ".")
        || !scan::is_at(t, k + 1, "(")
        || count_args(t, k + 1) != 0
    {
        return None;
    }
    Some(receiver_class(g, t, k - 1))
}

/// Class name for the receiver chain ending at the `.` token `dot`:
/// the last identifier in the chain that is a known struct field,
/// else the base identifier.
fn receiver_class(g: &Graph, t: &[crate::lexer::Tok], dot: usize) -> String {
    let mut idents: Vec<String> = Vec::new();
    let mut p = dot as i64 - 1;
    while p >= 0 {
        let pu = p as usize;
        match t[pu].text.as_str() {
            "]" | ")" => p = matching_open(t, pu) as i64 - 1,
            _ if t[pu].kind == Kind::Ident => {
                idents.push(t[pu].text.clone());
                if pu >= 1 && scan::is(&t[pu - 1], ".") {
                    p = pu as i64 - 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    // `idents` is outermost-first; prefer the outermost known field.
    idents
        .iter()
        .find(|n| g.field_hints.contains_key(n.as_str()))
        .or_else(|| idents.iter().find(|n| n.as_str() != "self"))
        .cloned()
        .unwrap_or_else(|| "lock".to_string())
}

/// `.unwrap()`/`.expect(…)` directly chained onto `.lock(…)` /
/// `.wait(…)` — the acquisition idiom, not a new panic source.
fn acquisition_idiom(t: &[crate::lexer::Tok], k: usize) -> bool {
    if k < 2 || !scan::is(&t[k - 1], ".") || !scan::is(&t[k - 2], ")") {
        return false;
    }
    let open = matching_open(t, k - 2);
    open >= 1
        && t[open - 1].kind == Kind::Ident
        && matches!(t[open - 1].text.as_str(), "lock" | "wait")
}

/// Findings from every guard region in the `lockset`-path units.
pub fn check(units: &[Unit], g: &Graph, sums: &Summaries, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for id in 0..g.fns.len() {
        let f = &g.fns[id];
        let rel = &units[f.unit].rel;
        if f.is_test || f.span.body == usize::MAX || !Config::in_any(&cfg.lockset, rel) {
            continue;
        }
        if cfg.lock_constructors.iter().any(|(n, _)| n == &f.name) {
            continue; // sanctioned constructors acquire their class repeatedly by design
        }
        let regions = regions(units, g, sums, cfg, id);
        check_fn(units, g, sums, cfg, id, &regions, &mut out);
    }
    out
}

/// Guard regions of one fn: direct acquisitions plus guard-returning
/// call sites (callee returns a `MutexGuard`-family type).
fn regions(units: &[Unit], g: &Graph, sums: &Summaries, cfg: &Config, id: usize) -> Vec<Region> {
    let f = &g.fns[id];
    let t = &units[f.unit].lx.toks;
    let mut out = Vec::new();
    let nested: Vec<(usize, usize)> = g.per_unit[f.unit]
        .iter()
        .map(|&o| &g.fns[o].span)
        .filter(|o| o.start > f.span.start && o.end <= f.span.end)
        .map(|o| (o.start, o.end))
        .collect();
    // Brace stack so a bound guard's region can end at its scope.
    let mut braces: Vec<usize> = Vec::new();
    let mut k = f.span.body;
    let end = f.span.end.min(t.len());
    while k < end {
        if let Some(&(_, e)) = nested.iter().find(|&&(s, _)| s == k) {
            k = e;
            continue;
        }
        match t[k].text.as_str() {
            "{" => braces.push(k),
            "}" => {
                braces.pop();
            }
            _ => {}
        }
        let acq: Option<Vec<String>> = if t[k].kind == Kind::Ident {
            if let Some(class) = direct_acquisition(g, t, k) {
                Some(vec![class])
            } else {
                call_acquisition(g, sums, cfg, id, k)
            }
        } else {
            None
        };
        if let Some(classes) = acq {
            let scope_end = braces.last().map(|&b| scan::matching_brace(t, b)).unwrap_or(end - 1);
            let bound = binding_names(t, f.span.body, k);
            for (ci, class) in classes.iter().enumerate() {
                let (start_line, region_end) = if bound.is_empty() {
                    (t[k].line, temp_end(t, k, end))
                } else {
                    // Positional zip when the tuple pattern matches the
                    // class list; otherwise any drop ends the region.
                    let names: Vec<&String> = if bound.len() == classes.len() {
                        vec![&bound[ci]]
                    } else {
                        bound.iter().collect()
                    };
                    let mut e = scope_end;
                    'drops: for j in k..scope_end.min(t.len()) {
                        if scan::is(&t[j], "drop")
                            && scan::is_at(t, j + 1, "(")
                            && t.get(j + 2).is_some_and(|x| names.iter().any(|n| x.text == **n))
                            && scan::is_at(t, j + 3, ")")
                        {
                            e = j;
                            break 'drops;
                        }
                    }
                    (t[k].line, e)
                };
                out.push(Region {
                    class: class.clone(),
                    acq_tok: k,
                    end_tok: region_end,
                    line: start_line,
                });
            }
        }
        k += 1;
    }
    out
}

/// Call-site acquisition: the callee returns a guard type — region
/// classes come from its (sanctioned or computed) acquire summary.
fn call_acquisition(
    g: &Graph,
    sums: &Summaries,
    cfg: &Config,
    id: usize,
    k: usize,
) -> Option<Vec<String>> {
    let call = g.calls[id].iter().find(|c| c.tok == k)?;
    let returning: Vec<usize> = call
        .callees
        .iter()
        .copied()
        .filter(|&c| g.fns[c].ret_hints.iter().any(|h| GUARD_TYPES.contains(&h.as_str())))
        .collect();
    if returning.is_empty() {
        return None;
    }
    // A sanctioned constructor's configured order wins (it fixes the
    // tuple-position mapping for `lock_all`-style composites).
    for &c in &returning {
        if let Some((_, classes)) = cfg.lock_constructors.iter().find(|(n, _)| n == &g.fns[c].name)
        {
            return Some(classes.clone());
        }
    }
    let mut classes: Vec<String> = returning
        .iter()
        .flat_map(|&c| {
            sums.effects(c).keys().filter_map(|e| match e {
                Effect::Acquire(cl) => Some(cl.clone()),
                _ => None,
            })
        })
        .collect();
    classes.sort();
    classes.dedup();
    if classes.is_empty() {
        classes.push(call.name.clone());
    }
    Some(classes)
}

/// Names bound by the statement containing token `k` (`let x = …`,
/// `let (a, b) = …`, or a plain `x = …` reassignment); empty for an
/// unbound temporary.
fn binding_names(t: &[crate::lexer::Tok], body: usize, k: usize) -> Vec<String> {
    // Statement start: one past the last `;`/`{`/`}` at depth 0.
    let mut start = body + 1;
    let mut depth = 0i32;
    let mut p = k as i64 - 1;
    while p >= body as i64 {
        let pu = p as usize;
        match t[pu].text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => depth -= 1,
            ";" | "{" | "}" if depth == 0 => {
                start = pu + 1;
                break;
            }
            _ => {}
        }
        p -= 1;
    }
    // Forward: `[let] [mut] name | (a, b)` then `[: Type] =`.
    let mut j = start;
    if scan::is_at(t, j, "let") {
        j += 1;
    }
    if scan::is_at(t, j, "mut") {
        j += 1;
    }
    let mut names = Vec::new();
    if scan::is_at(t, j, "(") {
        let close = crate::callgraph::matching_close(t, j);
        for tok in &t[j + 1..close.min(t.len())] {
            if tok.kind == Kind::Ident && tok.text != "mut" {
                names.push(tok.text.clone());
            }
        }
        j = close + 1;
    } else if t.get(j).is_some_and(|x| x.kind == Kind::Ident && x.text != "if" && x.text != "while")
    {
        names.push(t[j].text.clone());
        j += 1;
    } else {
        return Vec::new();
    }
    if scan::is_at(t, j, ":") {
        let mut depth = 0i32;
        j += 1;
        while j < k {
            match t[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "=" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
    }
    // A plain `=` (not `==`/`=>`) before the acquisition makes it a
    // binding; anything else is an unbound temporary.
    if j < k && scan::is_at(t, j, "=") && !scan::is_at(t, j + 1, "=") && !scan::is_at(t, j + 1, ">")
    {
        names
    } else {
        Vec::new()
    }
}

/// End token of an unbound temporary guard's region: the statement's
/// `;`, extended through a `{ … } [else { … }]` body when the guard
/// expression is an `if let`/`match`/`for` scrutinee.
fn temp_end(t: &[crate::lexer::Tok], k: usize, fn_end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = k;
    while j < fn_end {
        match t[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth <= 0 => return j,
            "{" if depth <= 0 => {
                let mut close = scan::matching_brace(t, j);
                while scan::is_at(t, close + 1, "else") {
                    let mut m = close + 1;
                    while m < fn_end && !scan::is(&t[m], "{") {
                        m += 1;
                    }
                    if m >= fn_end {
                        break;
                    }
                    close = scan::matching_brace(t, m);
                }
                return close;
            }
            _ => {}
        }
        j += 1;
    }
    fn_end.saturating_sub(1)
}

/// Emits the four rules for one fn's regions.
fn check_fn(
    units: &[Unit],
    g: &Graph,
    sums: &Summaries,
    cfg: &Config,
    id: usize,
    regions: &[Region],
    out: &mut Vec<Finding>,
) {
    let f = &g.fns[id];
    let unit = &units[f.unit];
    let rel = &unit.rel;
    // Innermost covering region per token — one finding per site.
    let covering = |tok: usize| -> Option<&Region> {
        regions.iter().filter(|r| r.acq_tok < tok && tok <= r.end_tok).max_by_key(|r| r.acq_tok)
    };
    let mut emit = |line: u32, rule: &str, msg: String| {
        if cfg.rule_on(rule) {
            out.push(Finding { file: rel.clone(), line, rule: rule.into(), msg });
        }
    };
    // Direct ops inside regions.
    for op in direct_ops(units, g, cfg, id) {
        let Some(r) = covering(op.tok) else { continue };
        match &op.effect {
            Effect::Panic => emit(
                op.line,
                "panic-under-lock",
                format!(
                    "{} can panic while the `{}` guard (line {}) is held, poisoning the lock; \
                     drop the guard first or return an error",
                    op.what, r.class, r.line
                ),
            ),
            Effect::Exec => emit(
                op.line,
                "exec-under-lock",
                format!(
                    "{} while the `{}` guard (line {}) is held — an exec waiter can help a \
                     foreign job that needs this lock (the PR 4 deadlock class); dispatch \
                     after dropping the guard",
                    op.what, r.class, r.line
                ),
            ),
            Effect::Block => emit(
                op.line,
                "block-under-lock",
                format!(
                    "{} blocks on I/O while the `{}` guard (line {}) is held; move the I/O \
                     outside the critical section",
                    op.what, r.class, r.line
                ),
            ),
            Effect::Acquire(c2) if *c2 == r.class => emit(
                op.line,
                "lock-cycle",
                format!(
                    "re-acquires the `{}` lock while a `{}` guard (line {}) is already held — \
                     self-deadlock; take a consistent cut via `lock_shards`/`lock_all` instead",
                    c2, r.class, r.line
                ),
            ),
            Effect::Acquire(_) => {}
        }
    }
    // Call sites inside regions: consult callee summaries.
    for call in &g.calls[id] {
        let Some(r) = covering(call.tok) else { continue };
        if call.tok == r.acq_tok {
            continue; // the acquisition itself
        }
        // Deterministic best witness per effect across candidates.
        let mut best: BTreeMap<Effect, (Witness, usize)> = BTreeMap::new();
        for &callee in &call.callees {
            for (eff, w) in sums.effects(callee) {
                let key = match eff {
                    Effect::Acquire(c) if *c == r.class => eff.clone(),
                    Effect::Acquire(_) => continue,
                    _ => eff.clone(),
                };
                match best.get(&key) {
                    Some((old, _)) if (old.len(), old.as_slice()) <= (w.len(), w.as_slice()) => {}
                    _ => {
                        best.insert(key, (w.clone(), callee));
                    }
                }
            }
        }
        for (eff, (w, _)) in best {
            let chain = render_chain(&call.name, rel, call.line, &w);
            let (rule, head) = match &eff {
                Effect::Panic => ("panic-under-lock", "can panic"),
                Effect::Exec => ("exec-under-lock", "can dispatch onto the exec pool"),
                Effect::Block => ("block-under-lock", "can block on I/O"),
                Effect::Acquire(_) => ("lock-cycle", "re-acquires this lock class"),
            };
            let extra = if call.merged { " [resolved by name — untyped receiver]" } else { "" };
            emit(
                call.line,
                rule,
                format!(
                    "call to `{}` {head} while the `{}` guard (line {}) is held{extra}; \
                     witness: {chain}",
                    call.name, r.class, r.line
                ),
            );
        }
    }
}

/// `caller-site → step (file:line) → … → op (file:line)`, capped.
fn render_chain(callee: &str, rel: &str, line: u32, w: &Witness) -> String {
    let mut parts = vec![format!("`{callee}` ({}:{line})", short(rel))];
    for s in w.iter().take(6) {
        parts.push(format!("{} ({}:{})", s.what, short(&s.file), s.line));
    }
    if w.len() > 6 {
        parts.push("…".into());
    }
    parts.join(" → ")
}

/// Last two path components — enough to locate a file, short enough
/// for a table cell.
fn short(rel: &str) -> String {
    let parts: Vec<&str> = rel.rsplitn(3, '/').collect();
    match parts.as_slice() {
        [file, dir, _rest] => format!("{dir}/{file}"),
        _ => rel.to_string(),
    }
}
