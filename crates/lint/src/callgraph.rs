//! Workspace-wide, over-approximated call graph, built from the lexer
//! output alone (no type checker, no macro expansion). Every `fn` item
//! across every scanned file becomes a node; call sites resolve by
//! name, disambiguated where possible by *receiver type hints* — the
//! set of type identifiers mentioned in the receiver's declaration
//! (field type, `let` annotation, parameter type, or the return type
//! of the call that produced it). When the receiver cannot be typed,
//! a method call falls back to **merging every same-name, same-arity
//! method in the workspace** — over-approximation by design: a false
//! edge costs one justified `allow` downstream, a missing edge is a
//! silent soundness hole in the lock-set analysis built on top
//! (see DESIGN.md, "Interprocedural analysis", for the limits:
//! calls through fn values/closures and macro-generated items are
//! invisible).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Kind, Lexed, Tok};
use crate::scan::{self, FnSpan};

/// One analyzed file — the unit the graph is built over.
pub struct Unit {
    pub rel: String,
    pub lx: Lexed,
    pub fns: Vec<FnSpan>,
    pub attrs: Vec<bool>,
}

/// Lexes and scans one file into a graph unit.
pub fn unit(rel: &str, src: &str) -> Unit {
    let lx = crate::lexer::lex(src);
    let fns = scan::fns(&lx);
    let attrs = scan::attr_lines(&lx);
    Unit { rel: rel.to_string(), lx, fns, attrs }
}

/// One `fn` item with everything resolution needs.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into the unit slice the graph was built from.
    pub unit: usize,
    pub span: FnSpan,
    pub name: String,
    /// Enclosing `impl`/`trait` context: `impl T` → `[T]`,
    /// `impl Tr for T` → `[T, Tr]`, `trait Tr` → `[Tr]`, free → `[]`.
    pub impl_types: Vec<String>,
    pub has_self: bool,
    /// Number of non-`self` parameters (used to prune candidates).
    pub arity: usize,
    /// Parameter name → type-identifier hints.
    pub params: Vec<(String, BTreeSet<String>)>,
    /// Type identifiers in the return type (`Self` resolved).
    pub ret_hints: BTreeSet<String>,
    /// Inside `#[cfg(test)]` / `#[test]` / a `tests/` tree.
    pub is_test: bool,
    pub line: u32,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index (in the unit) of the callee name.
    pub tok: usize,
    pub line: u32,
    pub name: String,
    /// Resolved candidate fn ids; empty = external (std / shims).
    pub callees: Vec<usize>,
    /// True when an untyped receiver forced the merge-all fallback.
    pub merged: bool,
}

pub struct Graph {
    pub fns: Vec<FnInfo>,
    /// Per-fn call sites, in token order.
    pub calls: Vec<Vec<CallSite>>,
    /// Per-unit fn ids, in span order.
    pub per_unit: Vec<Vec<usize>>,
    /// Struct field name → type-identifier hints (merged across all
    /// structs — over-approximate, like everything here).
    pub field_hints: BTreeMap<String, BTreeSet<String>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Guard types whose presence in a return type marks a call as
/// *guard-returning* (the caller holds a lock region afterwards).
pub const GUARD_TYPES: [&str; 3] = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Keywords that look like `ident (` but are not calls.
const KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "as", "in", "where", "impl", "trait", "struct", "enum", "mod", "use", "pub",
];

/// Chain methods that pass their receiver's hints through unchanged
/// (wrappers/containers whose declared-type ident set already includes
/// the element type).
const PASS_THROUGH: [&str; 16] = [
    "lock",
    "read",
    "write",
    "expect",
    "unwrap",
    "as_ref",
    "as_mut",
    "as_deref",
    "as_slice",
    "borrow",
    "borrow_mut",
    "clone",
    "iter",
    "iter_mut",
    "get",
    "get_mut",
];

impl Graph {
    pub fn build(units: &[Unit]) -> Graph {
        let mut fns = Vec::new();
        let mut per_unit = vec![Vec::new(); units.len()];
        let mut field_hints: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (u, unit) in units.iter().enumerate() {
            let impls = impl_contexts(&unit.lx);
            let tests = test_ranges(&unit.lx);
            let tree_test = unit.rel.contains("/tests/") || unit.rel.ends_with("build.rs");
            for f in &unit.fns {
                let ctx = impls
                    .iter()
                    .filter(|(open, close, _)| *open < f.start && f.end <= *close + 1)
                    .max_by_key(|(open, _, _)| *open)
                    .map(|(_, _, tys)| tys.clone())
                    .unwrap_or_default();
                let sig = signature(&unit.lx.toks, f, &ctx);
                let id = fns.len();
                per_unit[u].push(id);
                fns.push(FnInfo {
                    unit: u,
                    span: f.clone(),
                    name: f.name.clone(),
                    impl_types: ctx,
                    has_self: sig.has_self,
                    arity: sig.arity,
                    params: sig.params,
                    ret_hints: sig.ret,
                    is_test: tree_test || tests.iter().any(|&(s, e)| s <= f.start && f.start < e),
                    line: unit.lx.toks[f.start].line,
                });
            }
            collect_fields(&unit.lx, &mut field_hints);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            // Bodyless trait decls carry no effects and test fns are
            // never called from production code — neither is a
            // resolution candidate.
            if f.span.body != usize::MAX && !f.is_test {
                by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        let mut g = Graph { calls: Vec::new(), per_unit, field_hints, by_name, fns };
        g.calls = (0..g.fns.len()).map(|id| g.build_calls(units, id)).collect();
        g
    }

    /// `Type::name` (first impl type) or bare `name`.
    pub fn qname(&self, id: usize) -> String {
        let f = &self.fns[id];
        match f.impl_types.first() {
            Some(t) => format!("{t}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Finds a fn by qualified name (`Type::name` or `name`); for
    /// tests — first match wins.
    pub fn find(&self, qname: &str) -> Option<usize> {
        let (ty, name) = match qname.rsplit_once("::") {
            Some((t, n)) => (Some(t), n),
            None => (None, qname),
        };
        (0..self.fns.len()).find(|&id| {
            let f = &self.fns[id];
            f.name == name
                && match ty {
                    Some(t) => f.impl_types.iter().any(|it| it == t),
                    None => f.impl_types.is_empty(),
                }
        })
    }

    /// Resolved edges of one fn as `(callee qname, line, merged)`,
    /// unresolved (external) sites omitted — the shape the call-graph
    /// fixture tests assert against.
    pub fn edges(&self, id: usize) -> Vec<(String, u32, bool)> {
        let mut out = Vec::new();
        for c in &self.calls[id] {
            for &callee in &c.callees {
                out.push((self.qname(callee), c.line, c.merged));
            }
        }
        out
    }

    fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All call sites of fn `id`, resolved. Nested fn items inside the
    /// body are skipped (they are their own nodes).
    fn build_calls(&self, units: &[Unit], id: usize) -> Vec<CallSite> {
        let f = &self.fns[id];
        let unit = &units[f.unit];
        let t = &unit.lx.toks;
        if f.span.body == usize::MAX {
            return Vec::new();
        }
        let nested: Vec<(usize, usize)> = self.per_unit[f.unit]
            .iter()
            .map(|&g| &self.fns[g].span)
            .filter(|g| g.start > f.span.start && g.end <= f.span.end)
            .map(|g| (g.start, g.end))
            .collect();
        let vars = self.local_vars(units, id);
        let mut out = Vec::new();
        let mut k = f.span.body;
        while k < f.span.end.min(t.len()) {
            if let Some(&(_, e)) = nested.iter().find(|&&(s, _)| s == k) {
                k = e;
                continue;
            }
            if t[k].kind == Kind::Ident
                && scan::is_at(t, k + 1, "(")
                && !KEYWORDS.contains(&t[k].text.as_str())
                && !(k > 0 && scan::is(&t[k - 1], "!"))
                && !(k > 0 && scan::is(&t[k - 1], "fn"))
            {
                let name = t[k].text.clone();
                let argc = count_args(t, k + 1);
                let (callees, merged) = if k > 0 && scan::is(&t[k - 1], ".") {
                    let hints = self.chain_hints(units, id, &vars, k - 1);
                    self.resolve_method(&name, argc, &hints)
                } else if k >= 3
                    && scan::is(&t[k - 1], ":")
                    && scan::is(&t[k - 2], ":")
                    && t[k - 3].kind == Kind::Ident
                {
                    (self.resolve_path(units, id, &t[k - 3].text, &name, argc), false)
                } else {
                    (self.resolve_free(f.unit, &name, argc), false)
                };
                out.push(CallSite { tok: k, line: t[k].line, name, callees, merged });
            }
            k += 1;
        }
        out
    }

    /// Typed local bindings of fn `id`: parameters, then `let`
    /// declarations in token order (last binding before a use wins).
    fn local_vars(&self, units: &[Unit], id: usize) -> Vec<(usize, String, BTreeSet<String>)> {
        let f = &self.fns[id];
        let t = &units[f.unit].lx.toks;
        let mut vars: Vec<(usize, String, BTreeSet<String>)> =
            f.params.iter().map(|(n, h)| (f.span.body, n.clone(), h.clone())).collect();
        if f.span.body == usize::MAX {
            return vars;
        }
        let mut k = f.span.body;
        while k < f.span.end.min(t.len()) {
            if scan::is(&t[k], "let") {
                let mut j = k + 1;
                let mut names = Vec::new();
                if scan::is_at(t, j, "mut") {
                    j += 1;
                }
                if scan::is_at(t, j, "(") {
                    // `let (a, b) = …` — every name shares the hints.
                    let close = matching_close(t, j);
                    for tok in &t[j + 1..close.min(t.len())] {
                        if tok.kind == Kind::Ident && tok.text != "mut" {
                            names.push(tok.text.clone());
                        }
                    }
                    j = close + 1;
                } else if t.get(j).is_some_and(|x| x.kind == Kind::Ident) {
                    names.push(t[j].text.clone());
                    j += 1;
                }
                if !names.is_empty() {
                    let hints = if scan::is_at(t, j, ":") {
                        // Explicit annotation: every ident in the type.
                        let mut h = BTreeSet::new();
                        let mut depth = 0i32;
                        let mut m = j + 1;
                        while m < t.len() {
                            match t[m].text.as_str() {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth -= 1,
                                "=" | ";" if depth == 0 => break,
                                _ => {}
                            }
                            if t[m].kind == Kind::Ident {
                                h.insert(t[m].text.clone());
                            }
                            m += 1;
                        }
                        h
                    } else if scan::is_at(t, j, "=") {
                        self.init_hints(units, id, &vars, j + 1)
                    } else {
                        BTreeSet::new()
                    };
                    for n in names {
                        vars.push((k, n, hints.clone()));
                    }
                }
            }
            k += 1;
        }
        vars
    }

    /// Type hints of an initializer expression starting at `start`:
    /// typed by its **last top-level method call** (chained through the
    /// receiver machinery), or by its head call / variable.
    fn init_hints(
        &self,
        units: &[Unit],
        id: usize,
        vars: &[(usize, String, BTreeSet<String>)],
        start: usize,
    ) -> BTreeSet<String> {
        let t = &units[self.fns[id].unit].lx.toks;
        let mut depth = 0i32;
        let mut last_dot: Option<(usize, String, usize)> = None; // (dot, method, argc)
        let mut m = start;
        while m < t.len() {
            match t[m].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" if depth == 0 => break,
                "." if depth == 0
                    && t.get(m + 1).is_some_and(|x| x.kind == Kind::Ident)
                    && scan::is_at(t, m + 2, "(") =>
                {
                    last_dot = Some((m, t[m + 1].text.clone(), count_args(t, m + 2)));
                }
                _ => {}
            }
            m += 1;
        }
        if let Some((dot, method, argc)) = last_dot {
            let recv = self.chain_hints(units, id, vars, dot);
            return self.apply_method(&method, argc, &recv);
        }
        // No chain: `Type::ctor(…)`, `free(…)`, or a (possibly
        // borrowed) variable / field chain.
        let mut s0 = start;
        while t.get(s0).is_some_and(|x| matches!(x.text.as_str(), "&" | "*" | "mut")) {
            s0 += 1;
        }
        if t.get(s0).is_some_and(|x| x.kind == Kind::Ident) {
            let head = &t[s0].text;
            if scan::is_at(t, s0 + 1, ":")
                && scan::is_at(t, s0 + 2, ":")
                && t.get(s0 + 3).is_some_and(|x| x.kind == Kind::Ident)
                && scan::is_at(t, s0 + 4, "(")
            {
                let m = &t[s0 + 3].text;
                if m.starts_with("new") || m.starts_with("with") || m == "default" || m == "from" {
                    return [head.clone()].into();
                }
                let cands = self.resolve_path(units, id, head, m, count_args(t, s0 + 4));
                return self.ret_union(&cands);
            }
            if scan::is_at(t, s0 + 1, "(") {
                let cands = self.resolve_free(self.fns[id].unit, head, count_args(t, s0 + 1));
                return self.ret_union(&cands);
            }
            // `&self.clusters[c].members`-style field chains: start
            // from the base's hints and fold field segments through
            // the field-hint table (indexing passes through).
            let base = if head == "self" {
                Some(self.fns[id].impl_types.iter().cloned().collect::<BTreeSet<_>>())
            } else {
                vars.iter().rev().find(|(_, n, _)| n == head).map(|(_, _, h)| h.clone())
            };
            if let Some(mut hints) = base {
                let mut m = s0 + 1;
                loop {
                    if scan::is_at(t, m, "[") {
                        m = matching_close(t, m) + 1;
                    } else if scan::is_at(t, m, ".")
                        && t.get(m + 1).is_some_and(|x| x.kind == Kind::Ident)
                        && !scan::is_at(t, m + 2, "(")
                    {
                        hints = self.field_hints.get(&t[m + 1].text).cloned().unwrap_or_default();
                        m += 2;
                    } else {
                        break;
                    }
                }
                return hints;
            }
        }
        BTreeSet::new()
    }

    /// Types the receiver chain ending at the `.` token `dot` by
    /// walking it back to its base (variable, `self`, call or path),
    /// then folding field/method segments forward through the hint
    /// tables. Empty = unknown.
    fn chain_hints(
        &self,
        units: &[Unit],
        id: usize,
        vars: &[(usize, String, BTreeSet<String>)],
        dot: usize,
    ) -> BTreeSet<String> {
        let f = &self.fns[id];
        let t = &units[f.unit].lx.toks;
        // Walk backwards collecting segments innermost-last.
        enum Seg {
            Field(String),
            Method(String, usize),
        }
        let mut segs: Vec<Seg> = Vec::new();
        let mut p = dot as i64 - 1;
        let base: Option<BTreeSet<String>> = loop {
            if p < 0 {
                break None;
            }
            let pu = p as usize;
            match t[pu].text.as_str() {
                "]" => p = matching_open(t, pu) as i64 - 1, // index — pass through
                ")" => {
                    let open = matching_open(t, pu);
                    if open == 0 || t[open - 1].kind != Kind::Ident {
                        break None; // parenthesized expr — unknown
                    }
                    let name = t[open - 1].text.clone();
                    let argc = count_args(t, open);
                    if open >= 2 && scan::is(&t[open - 2], ".") {
                        segs.push(Seg::Method(name, argc));
                        p = open as i64 - 3;
                        continue;
                    }
                    if open >= 4
                        && scan::is(&t[open - 2], ":")
                        && scan::is(&t[open - 3], ":")
                        && t[open - 4].kind == Kind::Ident
                    {
                        let cands = self.resolve_path(units, id, &t[open - 4].text, &name, argc);
                        break Some(self.ret_union(&cands));
                    }
                    let cands = self.resolve_free(f.unit, &name, argc);
                    break Some(self.ret_union(&cands));
                }
                _ if t[pu].kind == Kind::Ident => {
                    if pu >= 1 && scan::is(&t[pu - 1], ".") {
                        segs.push(Seg::Field(t[pu].text.clone()));
                        p = pu as i64 - 2;
                        continue;
                    }
                    if t[pu].text == "self" {
                        break Some(f.impl_types.iter().cloned().collect());
                    }
                    break Some(
                        vars.iter()
                            .rev()
                            .find(|(at, n, _)| *at <= pu && n == &t[pu].text)
                            .map(|(_, _, h)| h.clone())
                            .unwrap_or_default(),
                    );
                }
                _ => break None,
            }
        };
        let mut hints = base.unwrap_or_default();
        for seg in segs.into_iter().rev() {
            hints = match seg {
                Seg::Field(name) => self.field_hints.get(&name).cloned().unwrap_or_default(),
                Seg::Method(name, argc) => self.apply_method(&name, argc, &hints),
            };
        }
        hints
    }

    /// Hints after calling method `name` on a receiver with `hints`.
    fn apply_method(&self, name: &str, argc: usize, hints: &BTreeSet<String>) -> BTreeSet<String> {
        if PASS_THROUGH.contains(&name) {
            return hints.clone();
        }
        let (cands, _) = self.resolve_method(name, argc, hints);
        self.ret_union(&cands)
    }

    fn ret_union(&self, cands: &[usize]) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for &c in cands {
            out.extend(self.fns[c].ret_hints.iter().cloned());
        }
        out
    }

    /// Method resolution: same-name same-arity methods, filtered by
    /// receiver hints when available. Typed receiver with no workspace
    /// match → external. Untyped receiver → merge-all fallback.
    fn resolve_method(
        &self,
        name: &str,
        argc: usize,
        hints: &BTreeSet<String>,
    ) -> (Vec<usize>, bool) {
        let cands: Vec<usize> = self
            .candidates(name)
            .iter()
            .copied()
            .filter(|&c| self.fns[c].has_self && self.fns[c].arity == argc)
            .collect();
        if hints.is_empty() {
            let merged = !cands.is_empty();
            return (cands, merged);
        }
        let typed: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| self.fns[c].impl_types.iter().any(|t| hints.contains(t)))
            .collect();
        (typed, false)
    }

    /// `Qual::name(…)`: `Self`/type-qualified → that type's fns;
    /// lowercase qualifier → free fns, preferring a `qual.rs` /
    /// `qual/` module match.
    fn resolve_path(
        &self,
        units: &[Unit],
        id: usize,
        qual: &str,
        name: &str,
        argc: usize,
    ) -> Vec<usize> {
        let upper = qual.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        if qual == "Self" || upper {
            let tys: Vec<&str> = if qual == "Self" {
                self.fns[id].impl_types.iter().map(|s| s.as_str()).collect()
            } else {
                vec![qual]
            };
            return self
                .candidates(name)
                .iter()
                .copied()
                .filter(|&c| {
                    let f = &self.fns[c];
                    f.impl_types.iter().any(|t| tys.contains(&t.as_str()))
                        && (f.arity == argc || (f.has_self && f.arity + 1 == argc))
                })
                .collect();
        }
        let free: Vec<usize> = self
            .candidates(name)
            .iter()
            .copied()
            .filter(|&c| self.fns[c].impl_types.is_empty() && self.fns[c].arity == argc)
            .collect();
        let module: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&c| {
                let rel = &units[self.fns[c].unit].rel;
                rel.ends_with(&format!("/{qual}.rs")) || rel.contains(&format!("/{qual}/"))
            })
            .collect();
        if module.is_empty() {
            free
        } else {
            module
        }
    }

    /// Bare `name(…)`: free fns, preferring same-file candidates (the
    /// shadowing approximation — a local `fn helper` wins over one in
    /// another module).
    fn resolve_free(&self, unit: usize, name: &str, argc: usize) -> Vec<usize> {
        let free: Vec<usize> = self
            .candidates(name)
            .iter()
            .copied()
            .filter(|&c| {
                self.fns[c].impl_types.is_empty()
                    && !self.fns[c].has_self
                    && self.fns[c].arity == argc
            })
            .collect();
        let local: Vec<usize> =
            free.iter().copied().filter(|&c| self.fns[c].unit == unit).collect();
        if local.is_empty() {
            free
        } else {
            local
        }
    }
}

struct Sig {
    has_self: bool,
    arity: usize,
    params: Vec<(String, BTreeSet<String>)>,
    ret: BTreeSet<String>,
}

/// Parses a fn signature: generics skipped, parameters split on
/// top-level commas (angle-bracket aware), `Self` replaced by the impl
/// context in hints.
fn signature(t: &[Tok], f: &FnSpan, ctx: &[String]) -> Sig {
    let mut sig = Sig { has_self: false, arity: 0, params: Vec::new(), ret: BTreeSet::new() };
    let mut j = f.start + 2;
    if scan::is_at(t, j, "<") {
        j = skip_generics(t, j);
    }
    if !scan::is_at(t, j, "(") {
        return sig;
    }
    let close = matching_close(t, j);
    let mut seg_start = j + 1;
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut segs: Vec<(usize, usize)> = Vec::new();
    for m in j + 1..close.min(t.len()) {
        match t[m].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "<" if depth == 0 => angle += 1,
            ">" if depth == 0 && angle > 0 && !(m > 0 && scan::is(&t[m - 1], "-")) => angle -= 1,
            "," if depth == 0 && angle == 0 => {
                segs.push((seg_start, m));
                seg_start = m + 1;
            }
            _ => {}
        }
    }
    if seg_start < close {
        segs.push((seg_start, close));
    }
    let subst = |h: &mut BTreeSet<String>| {
        if h.remove("Self") {
            h.extend(ctx.iter().cloned());
        }
    };
    for (s, e) in segs {
        // Skip leading `&`, `mut`, lifetimes to the head ident.
        let mut m = s;
        while m < e
            && (scan::is(&t[m], "&") || scan::is(&t[m], "mut") || t[m].kind == Kind::Lifetime)
        {
            m += 1;
        }
        if m < e && scan::is(&t[m], "self") {
            sig.has_self = true;
            continue;
        }
        sig.arity += 1;
        if m < e && t[m].kind == Kind::Ident && scan::is_at(t, m + 1, ":") {
            let mut h: BTreeSet<String> = t[m + 2..e]
                .iter()
                .filter(|x| x.kind == Kind::Ident)
                .map(|x| x.text.clone())
                .collect();
            subst(&mut h);
            sig.params.push((t[m].text.clone(), h));
        }
    }
    // Return type: `-> …` up to `{` / `;` / `where`.
    let mut m = close + 1;
    if scan::is_at(t, m, "-") && scan::is_at(t, m + 1, ">") {
        m += 2;
        let mut depth = 0i32;
        while m < t.len() {
            match t[m].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" | "where" if depth == 0 => break,
                _ => {}
            }
            if t[m].kind == Kind::Ident {
                sig.ret.insert(t[m].text.clone());
            }
            m += 1;
        }
        subst(&mut sig.ret);
    }
    sig
}

/// `impl [Trait for] Type { … }` and `trait Name { … }` blocks as
/// `(body open, body close, type names)`. For a trait impl the method
/// context carries both the concrete type and the trait (so trait
/// dispatch through either name finds it).
fn impl_contexts(lx: &Lexed) -> Vec<(usize, usize, Vec<String>)> {
    let t = &lx.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if scan::is(&t[i], "trait") && t.get(i + 1).is_some_and(|x| x.kind == Kind::Ident) {
            let name = t[i + 1].text.clone();
            let mut j = i + 2;
            while j < t.len() && !scan::is(&t[j], "{") && !scan::is(&t[j], ";") {
                j += 1;
            }
            if scan::is_at(t, j, "{") {
                out.push((j, scan::matching_brace(t, j), vec![name]));
            }
            i = j;
        } else if scan::is(&t[i], "impl") {
            let mut j = i + 1;
            if scan::is_at(t, j, "<") {
                j = skip_generics(t, j);
            }
            // Collect path idents (angle-depth 0) until `for`/`where`/`{`.
            let mut first: Vec<String> = Vec::new();
            let mut second: Vec<String> = Vec::new();
            let mut saw_for = false;
            let mut angle = 0i32;
            while j < t.len() {
                match t[j].text.as_str() {
                    "{" if angle == 0 => break,
                    ";" => break,
                    "where" if angle == 0 => {
                        while j < t.len() && !scan::is(&t[j], "{") {
                            j += 1;
                        }
                        break;
                    }
                    "for" if angle == 0 => saw_for = true,
                    "<" => angle += 1,
                    ">" if angle > 0 && !(j > 0 && scan::is(&t[j - 1], "-")) => angle -= 1,
                    _ if t[j].kind == Kind::Ident && angle == 0 => {
                        let tgt = if saw_for { &mut second } else { &mut first };
                        if !matches!(t[j].text.as_str(), "dyn" | "mut" | "const") {
                            tgt.push(t[j].text.clone());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if scan::is_at(t, j, "{") {
                let mut tys = Vec::new();
                if saw_for {
                    // `impl Trait for Type`: concrete type first.
                    if let Some(ty) = second.last() {
                        tys.push(ty.clone());
                    }
                    if let Some(tr) = first.last() {
                        tys.push(tr.clone());
                    }
                } else if let Some(ty) = first.last() {
                    tys.push(ty.clone());
                }
                out.push((j, scan::matching_brace(t, j), tys));
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Token ranges covered by `#[cfg(test)]` items and `#[test]` fns.
fn test_ranges(lx: &Lexed) -> Vec<(usize, usize)> {
    let t = &lx.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < t.len() {
        if scan::is(&t[i], "#") && scan::is(&t[i + 1], "[") {
            let close = {
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < t.len() {
                    match t[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j
            };
            let is_test_attr = t[i..=close.min(t.len() - 1)]
                .iter()
                .any(|x| x.kind == Kind::Ident && (x.text == "test" || x.text == "bench"));
            if is_test_attr {
                // The attributed item: from past the `]` to its `{`'s
                // matching brace (or `;`).
                let mut j = close + 1;
                // Skip further attributes.
                while scan::is_at(t, j, "#") && scan::is_at(t, j + 1, "[") {
                    let mut depth = 0i32;
                    while j < t.len() {
                        match t[j].text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                }
                let mut depth = 0i32;
                let mut open = usize::MAX;
                while j < t.len() {
                    match t[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            open = j;
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if open != usize::MAX {
                    out.push((close, scan::matching_brace(t, open) + 1));
                }
            }
            i = close;
        }
        i += 1;
    }
    out
}

/// Struct fields: `name: Type` rows at brace depth 1 of a
/// `struct … { … }` body, merged into the global field-hint table.
fn collect_fields(lx: &Lexed, out: &mut BTreeMap<String, BTreeSet<String>>) {
    let t = &lx.toks;
    let mut i = 0;
    while i < t.len() {
        if scan::is(&t[i], "struct") && t.get(i + 1).is_some_and(|x| x.kind == Kind::Ident) {
            let mut j = i + 2;
            if scan::is_at(t, j, "<") {
                j = skip_generics(t, j);
            }
            while j < t.len()
                && !scan::is(&t[j], "{")
                && !scan::is(&t[j], ";")
                && !scan::is(&t[j], "(")
            {
                j += 1;
            }
            if scan::is_at(t, j, "{") {
                let close = scan::matching_brace(t, j);
                let mut m = j + 1;
                while m < close {
                    if t[m].kind == Kind::Ident
                        && scan::is_at(t, m + 1, ":")
                        && !scan::is_at(t, m + 2, ":")
                        && (scan::is(&t[m - 1], "{")
                            || scan::is(&t[m - 1], ",")
                            || scan::is(&t[m - 1], "pub")
                            || scan::is(&t[m - 1], ")"))
                    {
                        let name = t[m].text.clone();
                        let mut depth = 0i32;
                        let mut e = m + 2;
                        let mut hints = BTreeSet::new();
                        while e < close {
                            match t[e].text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                "," if depth == 0 => break,
                                _ => {}
                            }
                            if t[e].kind == Kind::Ident {
                                hints.insert(t[e].text.clone());
                            }
                            e += 1;
                        }
                        out.entry(name).or_default().extend(hints);
                        m = e;
                    }
                    m += 1;
                }
                i = close;
            } else {
                i = j;
            }
        }
        i += 1;
    }
}

/// Index past the `>` matching the `<` at `i` (a `>` directly after
/// `-` is a return arrow, not a closer). Caps the scan so a stray
/// less-than cannot swallow the file.
fn skip_generics(t: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    for j in i..t.len().min(i + 256) {
        match t[j].text.as_str() {
            "<" => depth += 1,
            ">" if !(j > 0 && scan::is(&t[j - 1], "-")) => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
    }
    i + 1
}

/// Index of the `)`/`]` matching the opener at `open`.
pub fn matching_close(t: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, tok) in t.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    t.len().saturating_sub(1)
}

/// Index of the `(`/`[` matching the closer at `close` (backward scan).
pub fn matching_open(t: &[Tok], close: usize) -> usize {
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        match t[j].text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    0
}

/// Argument count of the call whose `(` sits at `open`: top-level
/// commas + 1 (0 for empty). Commas inside closure parameter pipes are
/// skipped.
pub fn count_args(t: &[Tok], open: usize) -> usize {
    let close = matching_close(t, open);
    if close <= open + 1 {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut in_pipes = false;
    for tok in &t[open + 1..close] {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "|" if depth == 0 => in_pipes = !in_pipes,
            "," if depth == 0 && !in_pipes => commas += 1,
            _ => {}
        }
    }
    commas + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(files: &[(&str, &str)]) -> Vec<Unit> {
        files.iter().map(|(rel, src)| unit(rel, src)).collect()
    }

    #[test]
    fn typed_receiver_resolves_exactly() {
        let us = units(&[(
            "a.rs",
            "struct S { inner: T } struct T; impl T { fn hit(&self) {} }\n\
             impl S { fn go(&self) { self.inner.hit(); } }\n\
             impl Other { fn hit(&self) {} }",
        )]);
        let g = Graph::build(&us);
        let go = g.find("S::go").unwrap();
        let edges = g.edges(go);
        assert_eq!(edges, vec![("T::hit".to_string(), 2, false)]);
    }

    #[test]
    fn untyped_receiver_merges_candidates() {
        let us = units(&[(
            "a.rs",
            "impl A { fn hit(&self) {} } impl B { fn hit(&self) {} }\n\
             fn go(x: &W) { for y in x.items() { y.hit(); } }",
        )]);
        let g = Graph::build(&us);
        let go = g.find("go").unwrap();
        let edges = g.edges(go);
        assert_eq!(edges.len(), 2, "{edges:?}");
        assert!(edges.iter().all(|(_, _, merged)| *merged));
    }

    #[test]
    fn arity_prunes_wrong_candidates() {
        let us = units(&[(
            "a.rs",
            "impl A { fn f(&self, x: u32) {} } impl B { fn f(&self) {} }\n\
             fn go() { let y = mystery(); y.f(1); }",
        )]);
        let g = Graph::build(&us);
        let edges = g.edges(g.find("go").unwrap());
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].0, "A::f");
    }

    #[test]
    fn guard_returning_accessor_types_the_binding() {
        let us = units(&[(
            "a.rs",
            "struct Sh { stream: St } struct St; impl St { fn push(&mut self) {} }\n\
             impl Svc { fn shard(&self) -> MutexGuard<'_, Sh> { todo!() }\n\
             fn go(&self) { let mut s = self.shard(0); s.stream.push(); } }",
        )]);
        let g = Graph::build(&us);
        let edges = g.edges(g.find("Svc::go").unwrap());
        assert!(edges.iter().any(|(q, _, m)| q == "St::push" && !m), "{edges:?}");
    }

    #[test]
    fn test_items_are_not_candidates() {
        let us = units(&[(
            "a.rs",
            "fn helper() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\nfn go() { helper(); }",
        )]);
        let g = Graph::build(&us);
        let edges = g.edges(g.find("go").unwrap());
        assert_eq!(edges.len(), 1);
    }
}
