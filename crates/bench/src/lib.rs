//! Experiment harness regenerating every table and figure of the ALID
//! paper's evaluation (Section 5 + Appendix C).
//!
//! Each binary under `src/bin/` reproduces one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1_complexity` | Table 1 — affinity-matrix complexity in the three `a*` regimes |
//! | `fig6_sparsity` | Fig. 6 — AVG-F / runtime / sparse degree vs LSH segment length `r` |
//! | `fig7_scalability` | Fig. 7 — runtime / memory / AVG-F vs data size |
//! | `table2_palid` | Table 2 — PALID speedup vs executors |
//! | `fig9_sift_scalability` | Fig. 9 — runtime / memory on SIFT subsets |
//! | `fig10_visual_words` | Fig. 10 — qualitative visual-word detection |
//! | `fig11_noise` | Fig. 11 — AVG-F vs noise degree, 8 methods |
//! | `bench_speculation` | beyond the paper: speculative-peeling conflict rates, adaptive round width and exec-layer chunk autotuning on overlap sweeps |
//!
//! Every binary runs at a laptop-friendly quick scale by default and at
//! a larger scale with `--full`; absolute numbers differ from the
//! paper's 2014 hardware, the *shapes* (growth orders, method ordering,
//! crossovers) are what EXPERIMENTS.md compares. Results are printed as
//! aligned tables and mirrored as JSON under `experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod fit;
pub mod fixtures;
pub mod report;
pub mod runners;

pub use fit::loglog_slope;
pub use report::{print_table, save_json};
pub use runners::{RunCfg, RunRecord};

/// Parses the common CLI convention of the figure binaries: `--full`
/// switches to paper-leaning sizes, `--scale=X` multiplies data-set
/// sizes, `--workers=N` pins the exec-layer worker count (the default
/// is [`alid_exec::ExecPolicy::auto`]; results are byte-identical for
/// any count, but parallel speculative peeling records the discarded
/// speculations' work too — pass `--workers=1` when comparing raw cost
/// counters against the paper's sequential growth orders).
pub fn parse_args() -> CliArgs {
    let mut full = false;
    let mut scale = 1.0f64;
    let mut workers = None;
    for arg in std::env::args().skip(1) {
        if arg == "--full" {
            full = true;
        } else if let Some(v) = arg.strip_prefix("--scale=") {
            scale = v.parse().expect("--scale=<float>");
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            let w: usize = v.parse().expect("--workers=<positive integer>");
            assert!(w >= 1, "--workers must be at least 1");
            workers = Some(w);
        } else if arg == "--help" || arg == "-h" {
            eprintln!(
                "options: --full (paper-leaning sizes), --scale=<f64>, \
                 --workers=<n> (default: all cores)"
            );
            std::process::exit(0);
        } else {
            eprintln!("unknown option {arg}; try --help");
            std::process::exit(2);
        }
    }
    CliArgs { full, scale, workers }
}

/// Parsed CLI options.
#[derive(Clone, Copy, Debug)]
pub struct CliArgs {
    /// Run at paper-leaning sizes.
    pub full: bool,
    /// Extra multiplier on data-set sizes.
    pub scale: f64,
    /// Explicit exec-layer worker count (`None` = auto).
    pub workers: Option<usize>,
}

impl CliArgs {
    /// The execution policy the binaries hand to [`RunCfg`]:
    /// `--workers=N` when given, every core otherwise.
    pub fn exec(&self) -> alid_exec::ExecPolicy {
        alid_exec::ExecPolicy::auto_or(self.workers)
    }
}
