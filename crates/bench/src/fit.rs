//! Log-log slope fitting.
//!
//! The paper draws Figs. 7 and 9 in double logarithmic coordinates so
//! the empirical growth order is the slope of the curve
//! (`log(runtime)/log(n)`); Table 1 is verified by comparing fitted
//! slopes against the analytical orders. This module fits that slope by
//! least squares on `(ln x, ln y)`.

/// Least-squares slope of `ln y` against `ln x`. Pairs with a
/// non-positive coordinate are skipped. Returns `NaN` when fewer than
/// two usable pairs remain.
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "coordinate length mismatch");
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return f64::NAN;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return f64::NAN;
    }
    (n * sxy - sx * sy) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_growth_has_slope_two() {
        let xs: Vec<f64> = vec![10.0, 100.0, 1000.0, 10000.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        assert!((loglog_slope(&xs, &ys) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_growth_has_slope_one() {
        let xs: Vec<f64> = vec![8.0, 64.0, 512.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x).collect();
        assert!((loglog_slope(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_growth_has_slope_zero() {
        let xs: Vec<f64> = vec![10.0, 100.0, 1000.0];
        let ys = vec![42.0, 42.0, 42.0];
        assert!(loglog_slope(&xs, &ys).abs() < 1e-9);
    }

    #[test]
    fn fractional_power_recovered() {
        let xs: Vec<f64> = vec![1e2, 1e3, 1e4, 1e5];
        let ys: Vec<f64> = xs.iter().map(|x| x.powf(1.7)).collect();
        assert!((loglog_slope(&xs, &ys) - 1.7).abs() < 1e-9);
    }

    #[test]
    fn skips_non_positive_points() {
        let xs = vec![10.0, 100.0, 1000.0, 10000.0];
        let ys = vec![100.0, 0.0, 1e6, 1e8];
        // The zero point is skipped; remaining points fit y = x^2.
        assert!((loglog_slope(&xs, &ys) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_give_nan() {
        assert!(loglog_slope(&[1.0], &[2.0]).is_nan());
        assert!(loglog_slope(&[5.0, 5.0], &[2.0, 4.0]).is_nan());
    }
}
