//! Workload generators shared between the experiment binaries and the
//! workspace's integration tests, so a bench and the test that proves
//! its workload's properties can never drift apart.

use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_affinity::vector::Dataset;
use alid_core::AlidParams;
use alid_lsh::{signature_hamming, LshParams, ShardRouter};

/// The interleaved-pair chain — the conflict-heavy workload of
/// `tests/exec_parity.rs` and the `bench_speculation` overlap sweep.
///
/// `pairs` tight 1-d pairs at `sep` spacing, the two members of pair
/// `b` holding the *interleaved* ids `b` and `pairs + b` (positions
/// `sep·b` and `sep·b + 0.04`). Under the returned params (sharp
/// kernel, wide first ROI, coarse LSH buckets), consecutive ids are
/// spatially adjacent but immune to each other's pair: every
/// detection's read set covers its id-neighbours while its cluster
/// never does. At small `sep` any round speculating more than one
/// seed conflicts — the adversarial extreme of the paper's
/// overlapping-cluster sweeps (Section 5) and speculation's worst
/// case; at large `sep` the read sets disconnect and speculation runs
/// conflict-free.
pub fn pair_chain(pairs: usize, sep: f64) -> (Dataset, AlidParams) {
    let mut flat = vec![0.0; 2 * pairs];
    for i in 0..pairs {
        flat[i] = i as f64 * sep;
        flat[pairs + i] = i as f64 * sep + 0.04;
    }
    let ds = Dataset::from_flat(1, flat);
    let kernel = LaplacianKernel::l2(6.0);
    let mut p = AlidParams::new(kernel);
    p.first_roi_radius = 1.5; // iteration-1 ROI spans several pairs
    let p = p.with_delta(64).with_lsh(LshParams::new(8, 4, 4.0, 41));
    (ds, p)
}

/// The hyperplane-straddling workload of the cross-shard reducer's
/// acceptance tests (`tests/service.rs`) and the `bench_service`
/// merge-cost scenario.
///
/// One tight 12-member cluster is placed *on* the router's first
/// hyperplane — six members a hair on each side — so its signatures
/// differ in exactly that plane's bit and deterministic routing
/// fragments it across shards, while a well-separated 8-member
/// control cluster sits far along the plane normal. The constructor
/// searches router seeds until the geometry provably splits: the two
/// sides route to *different* shards for every shard count in
/// `{2, 4, 8}` (signature bits feed the mixer, so a single-bit flip
/// lands on the same shard with probability `1/shards` per count —
/// the search pins a seed where it never does).
#[derive(Clone, Debug)]
pub struct StraddleFixture {
    /// Arrival-ordered items (straddler and control interleaved).
    pub items: Vec<Vec<f64>>,
    /// Detection parameters calibrated for the fixture's scale.
    pub params: AlidParams,
    /// The router seed the search pinned (`ServiceConfig.router_seed`).
    pub router_seed: u64,
    /// Global ids (arrival indices) of the straddling cluster.
    pub straddler: Vec<u64>,
    /// Global ids of the control cluster.
    pub control: Vec<u64>,
}

/// Router geometry the fixture is built against: the sharded
/// service's defaults.
pub const STRADDLE_DIM: usize = 2;
/// `ServiceConfig` default signature width.
pub const STRADDLE_BITS: usize = 16;

/// Builds [`StraddleFixture`] — see its docs. Deterministic: the seed
/// search and the geometry are pure functions of the router
/// construction, so every caller gets the identical fixture.
///
/// # Panics
/// Panics if no router seed below the search bound produces a clean
/// split (a fixed RNG regression would surface loudly here).
pub fn straddling_cluster() -> StraddleFixture {
    let kernel = LaplacianKernel::calibrate(0.3, 0.9, LpNorm::L2);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    params.density_threshold = 0.7;
    params.min_cluster_size = 3;
    params.lsh.seed = 5;
    'seed: for router_seed in 0..4096u64 {
        let router = ShardRouter::new(STRADDLE_DIM, STRADDLE_BITS, router_seed);
        let w = router.plane(0); // lifted normal: (w0, w1, bias)
        let nrm2 = w[0] * w[0] + w[1] * w[1];
        if nrm2 < 1e-12 {
            continue;
        }
        // A point on hyperplane 0, and the in-plane / normal frame.
        let p0 = [-w[2] * w[0] / nrm2, -w[2] * w[1] / nrm2];
        if p0[0].hypot(p0[1]) > 20.0 {
            continue; // keep the geometry at fixture scale
        }
        let nrm = nrm2.sqrt();
        let n = [w[0] / nrm, w[1] / nrm];
        let t = [-w[1] / nrm, w[0] / nrm];
        let eps = 0.02;
        let place = |along_n: f64, along_t: f64| {
            vec![p0[0] + along_n * n[0] + along_t * t[0], p0[1] + along_n * n[1] + along_t * t[1]]
        };
        // Twelve straddler members alternating sides, eight control
        // members 30 units along the normal.
        let straddle_pts: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let side = if i % 2 == 0 { -eps } else { eps };
                place(side, (i / 2) as f64 * 0.02 - 0.05)
            })
            .collect();
        let control_pts: Vec<Vec<f64>> =
            (0..8).map(|i| place(30.0, i as f64 * 0.02 - 0.07)).collect();
        // Each side and the control cluster must be signature-pure,
        // and the two sides must differ in exactly the first plane's
        // bit (the top bit: signatures shift in MSB-first).
        let sig = |v: &[f64]| router.signature(v);
        let neg = sig(&straddle_pts[0]);
        let pos = sig(&straddle_pts[1]);
        if neg ^ pos != 1 << (STRADDLE_BITS - 1) {
            continue;
        }
        for (i, p) in straddle_pts.iter().enumerate() {
            if sig(p) != if i % 2 == 0 { neg } else { pos } {
                continue 'seed;
            }
        }
        let ctrl = sig(&control_pts[0]);
        if control_pts.iter().any(|p| sig(p) != ctrl) {
            continue;
        }
        debug_assert_eq!(signature_hamming(neg, pos), 1);
        // The sides must land on different shards at every tested
        // shard count (the mixer decides; the search pins a seed
        // where it splits everywhere).
        for shards in [2usize, 4, 8] {
            if router.route(&straddle_pts[0], shards) == router.route(&straddle_pts[1], shards) {
                continue 'seed;
            }
        }
        // Interleave arrivals so drains exercise both clusters.
        let mut items = Vec::new();
        let mut straddler = Vec::new();
        let mut control = Vec::new();
        let (mut si, mut ci) = (0usize, 0usize);
        while si < straddle_pts.len() || ci < control_pts.len() {
            if si < straddle_pts.len() {
                straddler.push(items.len() as u64);
                items.push(straddle_pts[si].clone());
                si += 1;
            }
            if ci < control_pts.len() {
                control.push(items.len() as u64);
                items.push(control_pts[ci].clone());
                ci += 1;
            }
        }
        return StraddleFixture { items, params, router_seed, straddler, control };
    }
    panic!("no router seed below the search bound splits the straddle fixture");
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_core::Peeler;

    /// The properties the service tests lean on: a deterministic
    /// fixture whose straddler splits across every tested shard
    /// count while each cluster is dominant under its params.
    #[test]
    fn straddle_fixture_splits_and_both_clusters_are_dominant() {
        let fx = straddling_cluster();
        assert_eq!(straddling_cluster().router_seed, fx.router_seed, "search is deterministic");
        assert_eq!(fx.items.len(), 20);
        assert_eq!(fx.straddler.len(), 12);
        assert_eq!(fx.control.len(), 8);
        let router = ShardRouter::new(STRADDLE_DIM, STRADDLE_BITS, fx.router_seed);
        for shards in [2usize, 4, 8] {
            let routes: std::collections::BTreeSet<usize> = fx
                .straddler
                .iter()
                .map(|&id| router.route(&fx.items[id as usize], shards))
                .collect();
            assert_eq!(routes.len(), 2, "{shards} shards: straddler must split in two");
            let ctrl: std::collections::BTreeSet<usize> =
                fx.control.iter().map(|&id| router.route(&fx.items[id as usize], shards)).collect();
            assert_eq!(ctrl.len(), 1, "{shards} shards: control must co-locate");
        }
        // A single-instance detection finds exactly the two planted
        // clusters, dominant under the fixture's own filter.
        let ds = Dataset::from_rows(STRADDLE_DIM, fx.items.iter().map(Vec::as_slice));
        let clustering = Peeler::new(&ds, fx.params, CostModel::shared()).detect_all();
        let dominant = clustering.dominant(fx.params.density_threshold, fx.params.min_cluster_size);
        assert_eq!(dominant.len(), 2, "{dominant:?}");
        let mut sizes: Vec<usize> = dominant.clusters.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![8, 12]);
    }

    /// The property both consumers lean on: the sequential pass
    /// detects exactly the interleaved pairs.
    #[test]
    fn chain_detects_one_cluster_per_pair() {
        let (ds, params) = pair_chain(6, 0.5);
        let clustering = Peeler::new(&ds, params, CostModel::shared()).detect_all();
        assert_eq!(clustering.clusters.len(), 6);
        for (b, c) in clustering.clusters.iter().enumerate() {
            assert_eq!(c.members, vec![b as u32, 6 + b as u32], "pair {b}");
        }
    }
}
