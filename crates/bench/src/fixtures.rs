//! Workload generators shared between the experiment binaries and the
//! workspace's integration tests, so a bench and the test that proves
//! its workload's properties can never drift apart.

use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::vector::Dataset;
use alid_core::AlidParams;
use alid_lsh::LshParams;

/// The interleaved-pair chain — the conflict-heavy workload of
/// `tests/exec_parity.rs` and the `bench_speculation` overlap sweep.
///
/// `pairs` tight 1-d pairs at `sep` spacing, the two members of pair
/// `b` holding the *interleaved* ids `b` and `pairs + b` (positions
/// `sep·b` and `sep·b + 0.04`). Under the returned params (sharp
/// kernel, wide first ROI, coarse LSH buckets), consecutive ids are
/// spatially adjacent but immune to each other's pair: every
/// detection's read set covers its id-neighbours while its cluster
/// never does. At small `sep` any round speculating more than one
/// seed conflicts — the adversarial extreme of the paper's
/// overlapping-cluster sweeps (Section 5) and speculation's worst
/// case; at large `sep` the read sets disconnect and speculation runs
/// conflict-free.
pub fn pair_chain(pairs: usize, sep: f64) -> (Dataset, AlidParams) {
    let mut flat = vec![0.0; 2 * pairs];
    for i in 0..pairs {
        flat[i] = i as f64 * sep;
        flat[pairs + i] = i as f64 * sep + 0.04;
    }
    let ds = Dataset::from_flat(1, flat);
    let kernel = LaplacianKernel::l2(6.0);
    let mut p = AlidParams::new(kernel);
    p.first_roi_radius = 1.5; // iteration-1 ROI spans several pairs
    let p = p.with_delta(64).with_lsh(LshParams::new(8, 4, 4.0, 41));
    (ds, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_core::Peeler;

    /// The property both consumers lean on: the sequential pass
    /// detects exactly the interleaved pairs.
    #[test]
    fn chain_detects_one_cluster_per_pair() {
        let (ds, params) = pair_chain(6, 0.5);
        let clustering = Peeler::new(&ds, params, CostModel::shared()).detect_all();
        assert_eq!(clustering.clusters.len(), 6);
        for (b, c) in clustering.clusters.iter().enumerate() {
            assert_eq!(c.members, vec![b as u32, 6 + b as u32], "pair {b}");
        }
    }
}
