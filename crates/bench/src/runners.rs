//! Uniform method runners: each takes a labelled data set, runs one
//! method end to end (affinity construction included, as the paper
//! measures), and reports runtime, deterministic cost counters and
//! detection quality.

use std::sync::Arc;
use std::time::Instant;

use alid_affinity::clustering::Clustering;
use alid_affinity::cost::CostModel;
use alid_affinity::dense::DenseAffinity;
use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::sparse::{SparseAffinity, SparseBuilder};
use alid_baselines::ap::{ap_detect_all, ApParams};
use alid_baselines::common::HaltPolicy;
use alid_baselines::iid::{iid_detect_all, IidParams};
use alid_baselines::kmeans::{kmeans_detect_all, KmeansParams};
use alid_baselines::meanshift::{meanshift_detect_all, MeanShiftParams};
use alid_baselines::rd::{ds_detect_all, RdParams};
use alid_baselines::sea::{sea_detect_all, SeaParams};
use alid_baselines::spectral::{sc_full_detect_all, sc_nystrom_detect_all, SpectralParams};
use alid_core::palid::{palid_detect, PalidParams};
use alid_core::{AlidParams, Peeler};
use alid_data::groundtruth::LabeledDataset;
use alid_data::metrics::{avg_f1, precision_recall};
use alid_exec::ExecPolicy;
use alid_lsh::{LshIndex, LshParams};
use serde::{Json, Serialize};

/// Shared run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunCfg {
    /// Affinity the kernel should take at the data set's `scale`
    /// distance (calibrates `k` of Eq. 1).
    pub target_affinity: f64,
    /// Dominant-cluster density threshold (paper: 0.75).
    pub dominant_density: f64,
    /// Dominant-cluster minimum size.
    pub dominant_min_size: usize,
    /// Memory budget in bytes for matrix-holding methods; a method whose
    /// matrix would not fit is reported as OOM instead of run (the
    /// paper stops baselines at its 12 GB RAM the same way).
    pub budget_bytes: u64,
    /// Ceiling for the affinity of typical *noise* pairs; the kernel is
    /// sharpened until unrelated items fall below it (matters on bounded
    /// feature spaces, where noise cannot get arbitrarily far).
    pub noise_floor: f64,
    /// Halt policy handed to the full-graph peeling baselines.
    pub halt: HaltPolicy,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution policy threaded through every exec-layer phase (ALID
    /// speculative peeling, sparse/LSH builds, spectral matrix work).
    /// `Default` keeps it sequential so library tests compare the
    /// paper's sequential cost traces; the figure binaries override it
    /// from `--workers` (auto when absent) via [`Self::with_exec`].
    pub exec: ExecPolicy,
}

impl Default for RunCfg {
    fn default() -> Self {
        Self {
            target_affinity: 0.9,
            dominant_density: 0.75,
            dominant_min_size: 3,
            budget_bytes: 1_500_000_000,
            noise_floor: 0.35,
            halt: HaltPolicy::StopBelowDensity { threshold: 0.5, patience: 20 },
            seed: 0xbe7c,
            exec: ExecPolicy::sequential(),
        }
    }
}

impl RunCfg {
    /// Replaces the execution policy (builder form for the binaries).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// The calibrated kernel for a data set (intra-cluster affinity at
    /// `target_affinity`, noise affinity at most `noise_floor`).
    pub fn kernel(&self, ds: &LabeledDataset) -> LaplacianKernel {
        ds.suggested_kernel(self.target_affinity, self.noise_floor)
    }

    /// AP parameters: bounded sweeps (AP with damping 0.5 converges well
    /// before 300 on these workloads) and an exemplar preference midway
    /// between the noise floor and the intra-cluster affinity — the
    /// "carefully tuned" setting of Section 5. The canonical
    /// median-similarity preference sits *at* the noise level on bounded
    /// feature spaces and merges clusters with adjacent noise.
    pub fn ap_params(&self) -> ApParams {
        ApParams {
            max_iters: 300,
            convits: 30,
            preference: Some(0.5 * (self.noise_floor + self.target_affinity)),
            ..Default::default()
        }
    }

    /// ALID parameters for a data set.
    pub fn alid_params(&self, ds: &LabeledDataset) -> AlidParams {
        let mut p = AlidParams::new(self.kernel(ds));
        p.first_roi_radius = p.kernel.distance_at(0.5);
        p.density_threshold = self.dominant_density;
        p.min_cluster_size = self.dominant_min_size;
        p.lsh.seed = self.seed;
        p.exec = self.exec;
        p
    }
}

/// One method's measured outcome on one data set.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Method tag ("ALID", "IID", ...).
    pub method: String,
    /// Data-set name.
    pub dataset: String,
    /// Data-set size.
    pub n: usize,
    /// Wall-clock seconds, affinity construction included.
    pub runtime_s: f64,
    /// Kernel evaluations (deterministic time proxy).
    pub kernel_evals: u64,
    /// Peak memory in MiB per the cost model (matrix entries + aux).
    pub peak_mib: f64,
    /// Peak memory of affinity-matrix entries alone, MiB (Table 1's
    /// quantity — excludes LSH tables and other auxiliary structures).
    pub matrix_peak_mib: f64,
    /// AVG-F against the ground truth.
    pub avg_f: f64,
    /// Corpus precision of clustered items.
    pub precision: f64,
    /// Corpus recall of positive items.
    pub recall: f64,
    /// Clusters surviving the dominant filter (or all clusters for
    /// partitioning methods).
    pub clusters: usize,
    /// Sparse degree of the matrix the method ran on, when applicable.
    pub sparse_degree: Option<f64>,
    /// The method was skipped because its matrix exceeded the budget.
    pub oom: bool,
}

// Hand-written where the real serde would derive: the offline serde
// shim has no proc macro (see DESIGN.md, "Dependency shims").
impl Serialize for RunRecord {
    fn to_json(&self) -> Json {
        Json::object([
            ("method", self.method.to_json()),
            ("dataset", self.dataset.to_json()),
            ("n", self.n.to_json()),
            ("runtime_s", self.runtime_s.to_json()),
            ("kernel_evals", self.kernel_evals.to_json()),
            ("peak_mib", self.peak_mib.to_json()),
            ("matrix_peak_mib", self.matrix_peak_mib.to_json()),
            ("avg_f", self.avg_f.to_json()),
            ("precision", self.precision.to_json()),
            ("recall", self.recall.to_json()),
            ("clusters", self.clusters.to_json()),
            ("sparse_degree", self.sparse_degree.to_json()),
            ("oom", self.oom.to_json()),
        ])
    }
}

impl RunRecord {
    fn oom(method: &str, ds: &LabeledDataset) -> Self {
        Self {
            method: method.into(),
            dataset: ds.name.clone(),
            n: ds.len(),
            runtime_s: f64::NAN,
            kernel_evals: 0,
            peak_mib: f64::NAN,
            matrix_peak_mib: f64::NAN,
            avg_f: f64::NAN,
            precision: f64::NAN,
            recall: f64::NAN,
            clusters: 0,
            sparse_degree: None,
            oom: true,
        }
    }

    fn finish(
        method: &str,
        ds: &LabeledDataset,
        started: Instant,
        cost: &CostModel,
        clustering: &Clustering,
        sparse_degree: Option<f64>,
    ) -> Self {
        let snap = cost.snapshot();
        let (precision, recall) = precision_recall(&ds.truth, clustering);
        Self {
            method: method.into(),
            dataset: ds.name.clone(),
            n: ds.len(),
            runtime_s: started.elapsed().as_secs_f64(),
            kernel_evals: snap.kernel_evals,
            peak_mib: snap.peak_mib(),
            matrix_peak_mib: snap.entries_peak as f64 * 8.0 / (1024.0 * 1024.0),
            avg_f: avg_f1(&ds.truth, clustering),
            precision,
            recall,
            clusters: clustering.len(),
            sparse_degree,
            oom: false,
        }
    }
}

/// Whether a dense `n x n` matrix (plus AP's two message planes when
/// `ap` is set) fits the budget.
fn dense_fits(n: usize, budget: u64, ap: bool) -> bool {
    let planes: u64 = if ap { 3 } else { 1 };
    (n as u64 * n as u64).saturating_mul(8 * planes) <= budget
}

/// ALID with the data-set-calibrated parameters.
pub fn run_alid(ds: &LabeledDataset, cfg: &RunCfg) -> RunRecord {
    run_alid_with(ds, cfg, cfg.alid_params(ds))
}

/// ALID with explicit parameters (used by Fig. 6, which pins the LSH
/// module across methods, and by the ablations).
pub fn run_alid_with(ds: &LabeledDataset, cfg: &RunCfg, params: AlidParams) -> RunRecord {
    let cost = CostModel::shared();
    let started = Instant::now();
    let clustering = Peeler::new(&ds.data, params, Arc::clone(&cost)).detect_all();
    let dominant = clustering.dominant(cfg.dominant_density, cfg.dominant_min_size);
    let n2 = (ds.len() * ds.len()) as f64;
    let sparse_degree = (1.0 - cost.snapshot().kernel_evals as f64 / n2.max(1.0)).max(0.0);
    RunRecord::finish("ALID", ds, started, &cost, &dominant, Some(sparse_degree))
}

/// PALID with the given executor count.
pub fn run_palid(ds: &LabeledDataset, cfg: &RunCfg, executors: usize) -> RunRecord {
    let params = cfg.alid_params(ds);
    let cost = CostModel::shared();
    let pp = PalidParams::with_executors(executors);
    let started = Instant::now();
    let clustering = palid_detect(&ds.data, &params, &pp, &cost);
    let dominant = clustering.dominant(cfg.dominant_density, cfg.dominant_min_size);
    let mut rec = RunRecord::finish("PALID", ds, started, &cost, &dominant, None);
    rec.method = format!("PALID-{executors}");
    rec
}

/// IID on the full dense matrix.
pub fn run_iid_dense(ds: &LabeledDataset, cfg: &RunCfg) -> RunRecord {
    if !dense_fits(ds.len(), cfg.budget_bytes, false) {
        return RunRecord::oom("IID", ds);
    }
    let cost = CostModel::shared();
    let kernel = cfg.kernel(ds);
    let started = Instant::now();
    let graph = DenseAffinity::build_with(&ds.data, &kernel, Arc::clone(&cost), cfg.exec);
    let params = IidParams { halt: cfg.halt, ..Default::default() };
    let clustering = iid_detect_all(&graph, &params);
    let dominant = clustering.dominant(cfg.dominant_density, cfg.dominant_min_size);
    RunRecord::finish("IID", ds, started, &cost, &dominant, Some(0.0))
}

/// Dominant Sets (replicator dynamics) on the full dense matrix.
pub fn run_ds_dense(ds: &LabeledDataset, cfg: &RunCfg) -> RunRecord {
    if !dense_fits(ds.len(), cfg.budget_bytes, false) {
        return RunRecord::oom("DS", ds);
    }
    let cost = CostModel::shared();
    let kernel = cfg.kernel(ds);
    let started = Instant::now();
    let graph = DenseAffinity::build_with(&ds.data, &kernel, Arc::clone(&cost), cfg.exec);
    let params = RdParams { halt: cfg.halt, ..Default::default() };
    let clustering = ds_detect_all(&graph, &params);
    let dominant = clustering.dominant(cfg.dominant_density, cfg.dominant_min_size);
    RunRecord::finish("DS", ds, started, &cost, &dominant, Some(0.0))
}

/// SEA on the full dense matrix.
pub fn run_sea_dense(ds: &LabeledDataset, cfg: &RunCfg) -> RunRecord {
    if !dense_fits(ds.len(), cfg.budget_bytes, false) {
        return RunRecord::oom("SEA", ds);
    }
    let cost = CostModel::shared();
    let kernel = cfg.kernel(ds);
    let started = Instant::now();
    let graph = DenseAffinity::build_with(&ds.data, &kernel, Arc::clone(&cost), cfg.exec);
    let params = SeaParams { halt: cfg.halt, ..Default::default() };
    let clustering = sea_detect_all(&graph, &params);
    let dominant = clustering.dominant(cfg.dominant_density, cfg.dominant_min_size);
    RunRecord::finish("SEA", ds, started, &cost, &dominant, Some(0.0))
}

/// AP on the full dense matrix.
pub fn run_ap_dense(ds: &LabeledDataset, cfg: &RunCfg) -> RunRecord {
    if !dense_fits(ds.len(), cfg.budget_bytes, true) {
        return RunRecord::oom("AP", ds);
    }
    let cost = CostModel::shared();
    let kernel = cfg.kernel(ds);
    let started = Instant::now();
    let graph = DenseAffinity::build_with(&ds.data, &kernel, Arc::clone(&cost), cfg.exec);
    let clustering = ap_detect_all(&graph, &cfg.ap_params(), &cost);
    let dominant = clustering.dominant(cfg.dominant_density, cfg.dominant_min_size);
    RunRecord::finish("AP", ds, started, &cost, &dominant, Some(0.0))
}

/// Builds the LSH-sparsified matrix of Section 5.1 and reports its
/// sparse degree.
pub fn sparsify(
    ds: &LabeledDataset,
    kernel: &LaplacianKernel,
    lsh: LshParams,
    cost: &Arc<CostModel>,
    exec: ExecPolicy,
) -> SparseAffinity {
    let index = LshIndex::build_with(&ds.data, lsh, cost, exec);
    let lists = index.neighbor_lists(&ds.data);
    let mut builder = SparseBuilder::new(ds.len());
    builder.add_neighbor_lists(&lists);
    builder.build_with(&ds.data, kernel, Arc::clone(cost), exec)
}

/// IID / SEA / AP on an LSH-sparsified matrix (Fig. 6). `method` picks
/// which baseline; budget gating uses the *sparse* size.
pub fn run_sparse_baseline(
    method: &str,
    ds: &LabeledDataset,
    cfg: &RunCfg,
    lsh: LshParams,
) -> RunRecord {
    let cost = CostModel::shared();
    let kernel = cfg.kernel(ds);
    let started = Instant::now();
    let graph = sparsify(ds, &kernel, lsh, &cost, cfg.exec);
    if graph.nnz() as u64 * 8 * 3 > cfg.budget_bytes {
        return RunRecord::oom(method, ds);
    }
    let sd = graph.sparse_degree();
    let clustering = match method {
        "IID" => {
            let params = IidParams { halt: cfg.halt, ..Default::default() };
            iid_detect_all(&graph, &params)
        }
        "SEA" => {
            let params = SeaParams { halt: cfg.halt, ..Default::default() };
            sea_detect_all(&graph, &params)
        }
        "AP" => ap_detect_all(&graph, &cfg.ap_params(), &cost),
        other => panic!("unknown sparse baseline {other}"),
    };
    let dominant = clustering.dominant(cfg.dominant_density, cfg.dominant_min_size);
    RunRecord::finish(method, ds, started, &cost, &dominant, Some(sd))
}

/// k-means with `K = true clusters + 1` (noise as an extra cluster, the
/// Fig. 11 protocol).
pub fn run_kmeans(ds: &LabeledDataset, cfg: &RunCfg) -> RunRecord {
    let k = ds.truth.cluster_count() + 1;
    let cost = CostModel::shared();
    let started = Instant::now();
    let params = KmeansParams { seed: cfg.seed, ..KmeansParams::with_k(k.min(ds.len())) };
    let clustering = kmeans_detect_all(&ds.data, &params);
    RunRecord::finish("KM", ds, started, &cost, &clustering, None)
}

/// Spectral clustering on the full matrix, `K = true clusters + 1`.
pub fn run_sc_full(ds: &LabeledDataset, cfg: &RunCfg) -> RunRecord {
    if !dense_fits(ds.len(), cfg.budget_bytes, false) {
        return RunRecord::oom("SC-FL", ds);
    }
    let k = (ds.truth.cluster_count() + 1).min(ds.len());
    let cost = CostModel::shared();
    let kernel = cfg.kernel(ds);
    let started = Instant::now();
    let params = SpectralParams { seed: cfg.seed, exec: cfg.exec, ..SpectralParams::with_k(k) };
    let clustering = sc_full_detect_all(&ds.data, &kernel, &params, &cost);
    RunRecord::finish("SC-FL", ds, started, &cost, &clustering, None)
}

/// Nyström spectral clustering, `K = true clusters + 1`.
pub fn run_sc_nystrom(ds: &LabeledDataset, cfg: &RunCfg) -> RunRecord {
    let k = (ds.truth.cluster_count() + 1).min(ds.len());
    let cost = CostModel::shared();
    let kernel = cfg.kernel(ds);
    let started = Instant::now();
    let params = SpectralParams { seed: cfg.seed, exec: cfg.exec, ..SpectralParams::with_k(k) };
    let clustering = sc_nystrom_detect_all(&ds.data, &kernel, &params, &cost);
    RunRecord::finish("SC-NYS", ds, started, &cost, &clustering, None)
}

/// Gaussian mean shift; the bandwidth defaults to twice the data set's
/// intra-cluster scale (a "properly fitting" setting per Appendix C).
pub fn run_meanshift(ds: &LabeledDataset, _cfg: &RunCfg) -> RunRecord {
    let cost = CostModel::shared();
    let started = Instant::now();
    let params = MeanShiftParams::with_bandwidth(ds.scale * 2.0);
    let clustering = meanshift_detect_all(&ds.data, &params);
    RunRecord::finish("MS", ds, started, &cost, &clustering, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_data::ndi::ndi_with;

    fn tiny() -> LabeledDataset {
        ndi_with(3, 45, 30, 9)
    }

    #[test]
    fn alid_and_iid_agree_on_a_tiny_instance() {
        let ds = tiny();
        let cfg = RunCfg::default();
        let alid = run_alid(&ds, &cfg);
        let iid = run_iid_dense(&ds, &cfg);
        assert!(!alid.oom && !iid.oom);
        assert!(alid.avg_f > 0.95, "ALID AVG-F {}", alid.avg_f);
        assert!(iid.avg_f > 0.95, "IID AVG-F {}", iid.avg_f);
        // ALID computes strictly fewer kernels than the full matrix.
        assert!(alid.kernel_evals < iid.kernel_evals);
        assert!(alid.peak_mib < iid.peak_mib);
    }

    #[test]
    fn oom_gate_fires() {
        let ds = tiny();
        let cfg = RunCfg { budget_bytes: 1, ..Default::default() };
        assert!(run_iid_dense(&ds, &cfg).oom);
        assert!(run_ap_dense(&ds, &cfg).oom);
        assert!(!run_alid(&ds, &cfg).oom, "ALID never allocates the matrix");
    }

    #[test]
    fn sparse_baseline_reports_sparse_degree() {
        let ds = tiny();
        let cfg = RunCfg::default();
        let kernel = cfg.kernel(&ds);
        let lsh = LshParams::new(8, 8, kernel.distance_at(0.5), 3);
        let rec = run_sparse_baseline("SEA", &ds, &cfg, lsh);
        let sd = rec.sparse_degree.expect("sparse degree reported");
        assert!((0.0..=1.0).contains(&sd));
    }

    #[test]
    fn partitioning_methods_cover_everything() {
        let ds = tiny();
        let cfg = RunCfg::default();
        for rec in [run_kmeans(&ds, &cfg), run_sc_nystrom(&ds, &cfg)] {
            assert!(rec.avg_f > 0.3, "{}: AVG-F {}", rec.method, rec.avg_f);
            assert!(rec.clusters >= 1);
        }
    }
}
