//! Aligned console tables plus JSON mirrors under `experiments/`.

use std::fs;
use std::io::Write;
use std::path::Path;

use serde::{Json, Serialize};

/// The provenance header every `experiments/*.json` report starts
/// with, so trajectories are comparable across machines and commits:
/// a schema tag (report format, versioned by its producer), the git
/// revision the binary was built from (best effort — "unknown"
/// outside a checkout), the host's CPU count, and the effective
/// exec-layer worker count the run used. `host_cpus` vs `workers` is
/// what lets a reader tell a 1-CPU-container curve from a genuinely
/// multi-core one (the long-carried ROADMAP re-measure item). The
/// `metrics` field is a flat snapshot of the process-global registry
/// at header-build time (pool activity, autotuner state, peeler
/// telemetry), so every report carries the machine state that shaped
/// its numbers — build the header *after* the measured work.
pub fn run_header(schema: &str, workers: usize) -> Vec<(&'static str, Json)> {
    vec![
        ("schema", schema.to_json()),
        ("git_rev", git_rev().to_json()),
        ("host_cpus", host_cpus().to_json()),
        ("workers", workers.to_json()),
        ("metrics", metrics_snapshot()),
    ]
}

/// The process-global metrics registry as a flat `series -> value`
/// JSON object (histograms appear as their `_count`/`_sum` pair).
pub fn metrics_snapshot() -> Json {
    // alid-lint: allow(no-metric-branching) -- provenance exposition: values land in the report header, never in measured outputs
    let samples = alid_obs::global().snapshot_samples();
    Json::Obj(samples.into_iter().map(|s| (s.series, s.value.to_json())).collect())
}

/// The parallelism the OS reports for this host (1 when detection
/// fails) — recorded so shard/worker curves are interpretable.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// `git rev-parse --short HEAD`, or "unknown" when git or the
/// repository is unavailable (the report must never fail over
/// provenance).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Prints a titled, column-aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "\n== {title} ==");
    let head: Vec<String> = headers.iter().zip(&widths).map(|(h, w)| format!("{h:<w$}")).collect();
    let _ = writeln!(out, "{}", head.join("  "));
    let _ = writeln!(out, "{}", "-".repeat(head.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
}

/// Serialises `value` to `experiments/<name>.json` (best effort — the
/// tables on stdout are the primary artifact).
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("experiments");
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            let _ = fs::write(&path, s);
            eprintln!("[saved {}]", path.display());
        }
        Err(e) => eprintln!("[json error for {name}: {e}]"),
    }
}

/// Formats a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.001 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_covers_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(f64::NAN), "-");
        assert_eq!(fmt(1.5), "1.500");
        assert!(fmt(123456.0).contains('e'));
        assert!(fmt(0.00001).contains('e'));
    }

    #[test]
    fn run_header_has_the_five_provenance_fields() {
        let header = run_header("alid-bench/test/1", 4);
        let obj = Json::Obj(header.iter().map(|(k, v)| (k.to_string(), v.clone())).collect());
        assert_eq!(obj.get("schema").and_then(Json::as_str), Some("alid-bench/test/1"));
        assert_eq!(obj.get("workers").and_then(Json::as_u64), Some(4));
        let rev = obj.get("git_rev").and_then(Json::as_str).unwrap();
        assert!(!rev.is_empty());
        let cpus = obj.get("host_cpus").and_then(Json::as_u64).unwrap();
        assert!(cpus >= 1, "host CPU count must be at least 1");
        // The metrics snapshot is always present (possibly empty when
        // nothing registered yet) and flat: series name -> number.
        let metrics = obj.get("metrics").expect("metrics snapshot field");
        assert!(matches!(metrics, Json::Obj(_)), "{metrics:?}");
    }

    /// Registered global series must surface in the header snapshot —
    /// this is the path that stamps tuner/pool state into every
    /// `experiments/*.json`.
    #[test]
    fn metrics_snapshot_carries_registered_series() {
        alid_obs::global().counter("alid_bench_header_probe_total", "test probe", &[]).add(3);
        let snap = metrics_snapshot();
        assert_eq!(snap.get("alid_bench_header_probe_total").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_widths() {
        print_table(
            "t",
            &["a", "long-header"],
            &[vec!["xxxxxxxxxx".into(), "1".into()], vec!["y".into(), "2".into()]],
        );
    }
}
