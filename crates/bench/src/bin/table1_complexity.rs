//! Table 1 — complexity of the affinity matrix under the three `a*`
//! regimes, verified empirically.
//!
//! The paper derives (Section 4.5): time `O(C(a*+δ)n)` and space
//! `O(a*(a*+δ))`, which specialise to
//!
//! | regime | time order in n | space order in n |
//! |---|---|---|
//! | `a* = ωn` | 2 | 2 |
//! | `a* = n^η` (η=0.9) | 1+η = 1.9 | 2η = 1.8 |
//! | `a* <= P` | 1 | 0 |
//!
//! This binary runs ALID over a size sweep per regime, counts kernel
//! evaluations (time) and peak stored entries (space) with the
//! deterministic cost model, and fits the log-log slopes — the same
//! verification the paper performs via Fig. 7.

use alid_bench::report::fmt;
use alid_bench::{loglog_slope, parse_args, print_table, save_json, RunCfg};
use alid_data::synthetic::{generate, Regime, SyntheticConfig};

fn main() {
    let args = parse_args();
    let sizes: Vec<usize> = if args.full {
        vec![1_000, 2_000, 4_000, 8_000, 16_000, 32_000]
    } else {
        vec![500, 1_000, 2_000, 4_000]
    };
    let sizes: Vec<usize> =
        sizes.iter().map(|&n| ((n as f64 * args.scale) as usize).max(200)).collect();
    // In quick mode the size cap P must sit below the smallest n or the
    // bounded regime degenerates into the proportional one.
    let p_cap = if args.full { 1000 } else { 400 };
    let regimes = [
        ("a*=wn (w=1.0)".to_string(), Regime::Proportional { omega: 1.0 }, 2.0, 2.0),
        ("a*=n^eta (eta=0.9)".to_string(), Regime::Sublinear { eta: 0.9 }, 1.9, 1.8),
        (format!("a*<=P (P={p_cap})"), Regime::Bounded { p: p_cap }, 1.0, 0.0),
    ];
    // Table 1 *is* the sequential cost counters: its only output fits
    // log-log slopes of kernel evals / peak entries against the paper's
    // theoretical growth orders, and parallel speculative peeling
    // records discarded speculations' work (and raises the live-entries
    // peak), which would silently distort the fitted slopes. So unlike
    // the other figure binaries this one defaults to one worker; an
    // explicit --workers=N still overrides for wall-clock comparisons.
    let cfg =
        RunCfg::default().with_exec(alid_exec::ExecPolicy::workers(args.workers.unwrap_or(1)));
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (label, regime, t_theory, s_theory) in regimes {
        let mut ns = Vec::new();
        let mut evals = Vec::new();
        let mut walls = Vec::new();
        let mut peaks = Vec::new();
        for &n in &sizes {
            let ds = generate(&SyntheticConfig::paper(n, regime, 42));
            let rec = alid_bench::runners::run_alid(&ds, &cfg);
            eprintln!(
                "[{label} n={n}] evals={} peak={} MiB avg_f={:.3} in {:.2}s",
                rec.kernel_evals,
                fmt(rec.matrix_peak_mib),
                rec.avg_f,
                rec.runtime_s
            );
            ns.push(n as f64);
            evals.push(rec.kernel_evals as f64);
            walls.push(rec.runtime_s);
            peaks.push(rec.matrix_peak_mib);
            records.push(rec);
        }
        // Fit on the asymptotic tail: the paper's orders are asymptotic
        // and the additive δ-terms flatten the smallest sizes.
        let tail = ns.len().saturating_sub(3);
        let t_slope = loglog_slope(&ns[tail..], &evals[tail..]);
        let w_slope = loglog_slope(&ns[tail..], &walls[tail..]);
        let s_slope = loglog_slope(&ns[tail..], &peaks[tail..]);
        rows.push(vec![
            label.clone(),
            format!("{t_theory:.1}"),
            fmt(t_slope),
            fmt(w_slope),
            format!("{s_theory:.1}"),
            fmt(s_slope),
        ]);
    }
    print_table(
        "Table 1 — affinity-matrix growth orders (theory vs fitted log-log slope)",
        &[
            "regime",
            "time order (theory)",
            "kernel-eval slope",
            "wall-clock slope",
            "space order (theory)",
            "space slope",
        ],
        &rows,
    );
    println!(
        "
notes: kernel-eval slope isolates the affinity-matrix work Table 1 bounds;\n\
         wall-clock additionally carries the O(n) LSH/indexing term (the quantity\n\
         Fig. 7 plots). In the bounded regime the matrix work saturates (the paper's\n\
         O(C(P+δ)n) is an upper bound) while wall-clock keeps the linear term."
    );
    save_json("table1_complexity", &records);
}
