//! Fig. 11 — noise-resistance study (Appendix C).
//!
//! AVG-F of eight methods as the noise degree (#noise / #ground-truth)
//! grows from 0 to 6, on NART and Sub-NDI. The paper's claims: the
//! partitioning methods (KM, SC-FL, SC-NYS) fall off fast — they force
//! noise into clusters — while the affinity-based methods (AP, IID,
//! SEA, ALID) degrade slowly; mean shift sits in between, fine on NART
//! but poor on the image features.

use alid_bench::report::fmt;
use alid_bench::runners::{
    run_alid, run_ap_dense, run_iid_dense, run_kmeans, run_meanshift, run_sc_full, run_sc_nystrom,
    run_sea_dense,
};
use alid_bench::{parse_args, print_table, save_json, RunCfg};
use alid_data::groundtruth::LabeledDataset;
use alid_data::nart::nart_with;
use alid_data::ndi::sub_ndi;

fn main() {
    let args = parse_args();
    let scale = if args.full { 0.6 } else { 0.2 } * args.scale;
    let degrees = [0.0, 1.0, 2.0, 4.0, 6.0];
    let cfg = RunCfg::default().with_exec(args.exec());
    let mut all = Vec::new();
    for corpus in ["nart", "sub-ndi"] {
        let mut rows = Vec::new();
        for &degree in &degrees {
            let ds: LabeledDataset = if corpus == "nart" {
                let positive = (734.0 * scale).round() as usize;
                nart_with(scale, Some((positive as f64 * degree).round() as usize), 23)
            } else {
                let positive = (1420.0 * scale).round() as usize;
                sub_ndi(scale, Some((positive as f64 * degree).round() as usize), 23)
            };
            eprintln!(
                "[{corpus} ND={degree}] n={} ({} positive / {} noise)",
                ds.len(),
                ds.truth.positive_count(),
                ds.truth.noise_count()
            );
            let recs = vec![
                run_ap_dense(&ds, &cfg),
                run_iid_dense(&ds, &cfg),
                run_sea_dense(&ds, &cfg),
                run_alid(&ds, &cfg),
                run_kmeans(&ds, &cfg),
                run_sc_full(&ds, &cfg),
                run_sc_nystrom(&ds, &cfg),
                run_meanshift(&ds, &cfg),
            ];
            for rec in recs {
                eprintln!("  {}: AVG-F {}", rec.method, fmt(rec.avg_f));
                rows.push(vec![
                    format!("{degree}"),
                    rec.method.clone(),
                    fmt(rec.avg_f),
                    fmt(rec.runtime_s),
                ]);
                all.push(rec);
            }
        }
        print_table(
            &format!("Fig. 11 on {corpus}-sim — AVG-F vs noise degree"),
            &["noise degree", "method", "AVG-F", "runtime_s"],
            &rows,
        );
    }
    save_json("fig11_noise", &all);
}
