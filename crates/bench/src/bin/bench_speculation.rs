//! Speculative-peeling conflict study — closes the ROADMAP item
//! "measure conflict rates on overlapping-cluster workloads and
//! consider adaptive batch width" with numbers.
//!
//! The workload family is the adversarial interleaved-pair chain of
//! `tests/exec_parity.rs` with the pair separation swept from heavily
//! overlapping read sets down to fully disjoint ones (the regime the
//! paper varies in its Section 5 overlap/noise sweeps). For every
//! `(separation, workers, width schedule)` cell the study runs a full
//! peel pass, checks the clustering is byte-identical to the
//! sequential pass (parity is the whole point of the speculation
//! design), and records the [`alid_core::PeelStats`] telemetry:
//! rounds, accepted / absorbed / re-run speculations, conflict rate
//! and mean round width.
//!
//! A second section exercises the exec layer's autotuned phases (LSH
//! build, sparse edge evaluation, matmul) and reports each call
//! site's tuner state — the chosen chunk size and the measured
//! per-item cost — read back from the shared metrics registry (each
//! build site exports its `TuneState` as `alid_tune_*{site=...}`
//! gauges) rather than by reaching into every crate's static.
//!
//! Output: an aligned table on stdout plus
//! `experiments/BENCH_speculation.json`.
//!
//! Flags: `--smoke` (tiny sizes for CI), `--full` (larger sweep),
//! `--scale=<f64>`, `--workers=<n>` (extra worker count to include),
//! `--trace-out=<path>` (record phase spans, drained to JSONL at
//! exit).

use std::sync::Arc;
use std::time::Instant;

use alid_affinity::cost::CostModel;
use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::sparse::SparseBuilder;
use alid_affinity::vector::Dataset;
use alid_bench::fixtures::pair_chain;
use alid_bench::report::fmt;
use alid_bench::{print_table, save_json};
use alid_core::{PeelStats, Peeler, SpeculationParams};
use alid_exec::ExecPolicy;
use alid_linalg::matrix::Mat;
use alid_lsh::{LshIndex, LshParams, SimHashIndex, SimHashParams};
use serde::{Json, Serialize};

struct Cli {
    smoke: bool,
    full: bool,
    scale: f64,
    workers: Option<usize>,
    trace_out: Option<std::path::PathBuf>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli { smoke: false, full: false, scale: 1.0, workers: None, trace_out: None };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            cli.smoke = true;
        } else if arg == "--full" {
            cli.full = true;
        } else if let Some(v) = arg.strip_prefix("--scale=") {
            cli.scale = v.parse().expect("--scale=<float>");
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            let w: usize = v.parse().expect("--workers=<positive integer>");
            assert!(w >= 1, "--workers must be at least 1");
            cli.workers = Some(w);
        } else if let Some(v) = arg.strip_prefix("--trace-out=") {
            cli.trace_out = Some(std::path::PathBuf::from(v));
        } else if arg == "--help" || arg == "-h" {
            eprintln!(
                "options: --smoke (tiny CI sizes), --full (larger sweep), \
                 --scale=<f64>, --workers=<n> (extra worker count), \
                 --trace-out=<path> (span events as JSONL)"
            );
            std::process::exit(0);
        } else {
            eprintln!("unknown option {arg}; try --help");
            std::process::exit(2);
        }
    }
    cli
}

struct Cell {
    workers: usize,
    adaptive: bool,
    runtime_s: f64,
    stats: PeelStats,
}

impl Serialize for Cell {
    fn to_json(&self) -> Json {
        Json::object([
            ("workers", self.workers.to_json()),
            ("adaptive", self.adaptive.to_json()),
            ("runtime_s", self.runtime_s.to_json()),
            ("rounds", self.stats.rounds.len().to_json()),
            ("speculated", self.stats.speculated.to_json()),
            ("accepted", self.stats.accepted.to_json()),
            ("absorbed", self.stats.absorbed.to_json()),
            ("rerun", self.stats.rerun.to_json()),
            ("wasted", self.stats.wasted().to_json()),
            ("conflict_rounds", self.stats.conflict_rounds().to_json()),
            ("conflict_rate", self.stats.conflict_rate().to_json()),
            ("mean_width", self.stats.mean_width().to_json()),
        ])
    }
}

struct Workload {
    name: String,
    sep: f64,
    n: usize,
    cells: Vec<Cell>,
}

impl Serialize for Workload {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("sep", self.sep.to_json()),
            ("n", self.n.to_json()),
            ("runs", self.cells.to_json()),
        ])
    }
}

/// Reads every exported autotuner back out of the process-global
/// registry: `alid_tune_<field>{site="<site>"}` gauge series, grouped
/// by site into the same `{site, per_item_ns, last_chunk, samples}`
/// objects the report has always carried.
fn autotune_from_registry() -> Vec<Json> {
    let samples = alid_bench::report::metrics_snapshot();
    let field_of = |site: &str, field: &str| {
        samples.get(&format!("alid_tune_{field}{{site=\"{site}\"}}")).and_then(Json::as_f64)
    };
    let mut sites: Vec<String> = match &samples {
        Json::Obj(fields) => fields
            .iter()
            .filter_map(|(k, _)| {
                k.strip_prefix("alid_tune_per_item_ns{site=\"")
                    .and_then(|rest| rest.strip_suffix("\"}"))
                    .map(str::to_string)
            })
            .collect(),
        _ => Vec::new(),
    };
    sites.sort();
    sites
        .into_iter()
        .map(|site| {
            Json::object([
                ("site", site.to_json()),
                ("per_item_ns", field_of(&site, "per_item_ns").unwrap_or(0.0).to_json()),
                ("last_chunk", (field_of(&site, "last_chunk").unwrap_or(0.0) as u64).to_json()),
                ("samples", (field_of(&site, "samples").unwrap_or(0.0) as u64).to_json()),
            ])
        })
        .collect()
}

/// Asserts the speculative clustering is byte-identical to the
/// sequential baseline — the bench doubles as a parity harness.
fn assert_parity(
    seq: &alid_affinity::clustering::Clustering,
    par: &alid_affinity::clustering::Clustering,
    tag: &str,
) {
    assert_eq!(seq.clusters.len(), par.clusters.len(), "{tag}: cluster count diverged");
    for (a, b) in seq.clusters.iter().zip(&par.clusters) {
        assert_eq!(a.members, b.members, "{tag}: members diverged");
        let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
        let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
        assert_eq!(aw, bw, "{tag}: weights diverged");
        assert_eq!(a.density.to_bits(), b.density.to_bits(), "{tag}: density diverged");
    }
}

/// Exercises the autotuned exec phases so the tune report reflects
/// parallel measurements, not just sequential ones: an LSH build, a
/// sparse build over its neighbour lists, and a matmul.
fn exercise_autotuned_phases(n: usize, exec: ExecPolicy) {
    let flat: Vec<f64> = (0..n).map(|i| (i % 97) as f64 * 0.21 + (i / 97) as f64).collect();
    let ds = Dataset::from_flat(1, flat);
    let cost = CostModel::shared();
    let index = LshIndex::build_with(&ds, LshParams::new(6, 4, 1.0, 9), &cost, exec);
    let _ = SimHashIndex::build_with(&ds, SimHashParams::default(), &cost, exec);
    let lists = index.neighbor_lists(&ds);
    let mut b = SparseBuilder::new(ds.len());
    b.add_neighbor_lists(&lists);
    let kernel = LaplacianKernel::l2(1.0);
    let _ = b.build_with(&ds, &kernel, Arc::clone(&cost), exec);
    let dim = 64usize.min(n);
    let data: Vec<f64> =
        (0..dim * dim).map(|e| ((e / dim * 31 + e % dim * 7) % 13) as f64 * 0.1).collect();
    let a = Mat::from_vec(dim, dim, data);
    let _ = a.matmul_with(&a, exec);
}

fn main() {
    let cli = parse_cli();
    // Tracing is observation only — assert_parity still proves the
    // speculative outputs byte-identical with it on.
    if cli.trace_out.is_some() {
        alid_obs::trace::enable(alid_obs::trace::DEFAULT_CAPACITY);
    }
    let pairs = if cli.smoke {
        8
    } else if cli.full {
        96
    } else {
        32
    };
    let pairs = ((pairs as f64 * cli.scale) as usize).max(4);
    let seps: &[f64] = if cli.smoke { &[0.5, 2.0] } else { &[0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0] };
    let mut worker_counts = vec![2usize, 4, 8];
    if let Some(w) = cli.workers {
        if !worker_counts.contains(&w) {
            worker_counts.push(w);
        }
    }

    let mut workloads = Vec::new();
    let mut rows = Vec::new();
    for &sep in seps {
        let (ds, params) = pair_chain(pairs, sep);
        let seq_started = Instant::now();
        let (seq, _) = Peeler::new(&ds, params, CostModel::shared()).detect_all_with_stats();
        let seq_runtime = seq_started.elapsed().as_secs_f64();
        let mut cells = Vec::new();
        for &workers in &worker_counts {
            for adaptive in [true, false] {
                let p = params
                    .with_exec(ExecPolicy::workers(workers))
                    .with_speculation(SpeculationParams { adaptive, initial_width: 0 });
                let started = Instant::now();
                let (cl, stats) = Peeler::new(&ds, p, CostModel::shared()).detect_all_with_stats();
                let runtime_s = started.elapsed().as_secs_f64();
                assert_parity(&seq, &cl, &format!("sep={sep} workers={workers}"));
                rows.push(vec![
                    format!("{sep}"),
                    workers.to_string(),
                    if adaptive { "adaptive".into() } else { "fixed".to_string() },
                    stats.rounds.len().to_string(),
                    stats.accepted.to_string(),
                    stats.absorbed.to_string(),
                    stats.rerun.to_string(),
                    fmt(stats.conflict_rate()),
                    fmt(stats.mean_width()),
                    fmt(runtime_s),
                ]);
                cells.push(Cell { workers, adaptive, runtime_s, stats });
            }
        }
        eprintln!(
            "sep={sep}: {} clusters sequential in {:.3}s; swept {} parallel cells",
            seq.clusters.len(),
            seq_runtime,
            cells.len()
        );
        workloads.push(Workload { name: format!("pairs_sep_{sep}"), sep, n: ds.len(), cells });
    }
    print_table(
        "Speculative peeling under overlap — conflict rates and adaptive width",
        &[
            "sep",
            "workers",
            "schedule",
            "rounds",
            "accepted",
            "absorbed",
            "rerun",
            "conflict_rate",
            "mean_width",
            "runtime_s",
        ],
        &rows,
    );

    // Autotuner telemetry: run the tuned phases at the largest worker
    // count (and sequentially for the 1-worker sample) before the
    // snapshot.
    let tune_n = if cli.smoke { 2_000 } else { 20_000 };
    exercise_autotuned_phases(tune_n, ExecPolicy::sequential());
    let max_workers = worker_counts.iter().copied().max().unwrap_or(2);
    exercise_autotuned_phases(tune_n, ExecPolicy::workers(max_workers));
    // Every tuner the run touched exported itself into the registry at
    // its build site — including any this bench doesn't know by name.
    let autotune = autotune_from_registry();
    let mut tune_rows = Vec::new();
    for t in &autotune {
        if let Json::Obj(fields) = t {
            tune_rows.push(
                fields
                    .iter()
                    .map(|(_, v)| match v {
                        Json::Str(s) => s.clone(),
                        Json::Num(x) => fmt(*x),
                        Json::UInt(u) => u.to_string(),
                        other => format!("{other:?}"),
                    })
                    .collect::<Vec<String>>(),
            );
        }
    }
    print_table(
        "Chunk autotuner state after the sweep",
        &["site", "per_item_ns", "last_chunk", "samples"],
        &tune_rows,
    );

    let mut fields = alid_bench::report::run_header("alid-bench/speculation/1", max_workers);
    fields.extend([
        ("smoke", cli.smoke.to_json()),
        ("pairs", pairs.to_json()),
        ("workloads", workloads.to_json()),
        ("autotune", Json::Arr(autotune)),
    ]);
    save_json("BENCH_speculation", &Json::object(fields));

    if let Some(path) = &cli.trace_out {
        match alid_obs::trace::drain_to_file(path) {
            Ok(n) => eprintln!("[traced {n} span events to {}]", path.display()),
            Err(e) => eprintln!("[trace-out {}: {e}]", path.display()),
        }
    }
}
