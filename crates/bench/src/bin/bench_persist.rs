//! Persistence cost study: full-snapshot rewrites vs O(delta) journal
//! appends.
//!
//! For each dataset size the bench builds a journaled service, loads a
//! base stream, then measures two ways of making the next mutation
//! durable:
//!
//! - **journal append** — ingest one item, drain, and wait on the
//!   group-commit barrier: the per-mutation cost of the append-only
//!   log (a handful of frame bytes plus one batched fsync).
//! - **full snapshot** — serialize the whole service, write it to a
//!   temp file and fsync: the cost the journal replaces, which grows
//!   with everything admitted so far.
//!
//! The O(delta) claim falls out of the table: journal append latency
//! and bytes stay flat as the dataset grows, while the snapshot column
//! scales with it. The bench asserts the byte-level version of the
//! claim (appended bytes per mutation at least 10x smaller than the
//! snapshot at the largest size, and size-independent within noise);
//! latency ratios are reported rather than asserted because fsync cost
//! is hardware-dependent.
//!
//! Output: an aligned table on stdout plus
//! `experiments/BENCH_persist.json` (stamped with the
//! schema/git_rev/workers provenance header).
//!
//! Flags: `--smoke` (tiny sizes for CI), `--full` (larger sweep),
//! `--scale=<f64>` (size multiplier), `--workers=<n>`.

use std::io::Write as _;
use std::time::Instant;

use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_bench::report::{fmt, run_header};
use alid_bench::{print_table, save_json};
use alid_core::AlidParams;
use alid_data::stream::{generate_stream, Burst, StreamConfig};
use alid_exec::ExecPolicy;
use alid_service::{
    recover_and_open, snapshot_bytes_with_meta, JournalConfig, Service, ServiceConfig,
};
use serde::{Json, Serialize};

struct Cli {
    smoke: bool,
    full: bool,
    scale: f64,
    workers: Option<usize>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli { smoke: false, full: false, scale: 1.0, workers: None };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            cli.smoke = true;
        } else if arg == "--full" {
            cli.full = true;
        } else if let Some(v) = arg.strip_prefix("--scale=") {
            cli.scale = v.parse().expect("--scale=<float>");
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            let w: usize = v.parse().expect("--workers=<positive integer>");
            assert!(w >= 1, "--workers must be at least 1");
            cli.workers = Some(w);
        } else if arg == "--help" || arg == "-h" {
            eprintln!("options: --smoke (tiny CI sizes), --full (larger sweep), --scale=<f64>, --workers=<n>");
            std::process::exit(0);
        } else {
            eprintln!("unknown option {arg}; try --help");
            std::process::exit(2);
        }
    }
    cli
}

/// Same burst-in-noise workload shape as `bench_service`, sized to
/// `total` items.
fn workload(total: usize) -> (Vec<Vec<f64>>, AlidParams) {
    let dim = 8;
    let burst = total / 6;
    let cfg = StreamConfig {
        dim,
        total,
        bursts: vec![
            Burst { start: total / 10, size: burst, spacing: 1 },
            Burst { start: total / 2, size: burst, spacing: 1 },
            Burst { start: total * 7 / 10, size: burst, spacing: 1 },
        ],
        jitter: 0.05,
        noise_span: 25.0,
        seed: 0x9e15,
    };
    let scenario = generate_stream(&cfg);
    let kernel = LaplacianKernel::calibrate(scenario.scale * 2.0, 0.9, LpNorm::L2);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    params.density_threshold = 0.75;
    params.min_cluster_size = 4;
    params.lsh.seed = 11;
    let items = scenario.data.iter().map(<[f64]>::to_vec).collect();
    (items, params)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Total bytes currently held by the journal's segment files.
fn journal_disk_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                total += meta.len();
            }
        }
    }
    total
}

struct Cell {
    items: usize,
    append_p50_ms: f64,
    append_p99_ms: f64,
    append_bytes_per_item: f64,
    snapshot_p50_ms: f64,
    snapshot_bytes: usize,
    latency_ratio: f64,
    bytes_ratio: f64,
}

impl Serialize for Cell {
    fn to_json(&self) -> Json {
        Json::object([
            ("items", self.items.to_json()),
            ("append_p50_ms", self.append_p50_ms.to_json()),
            ("append_p99_ms", self.append_p99_ms.to_json()),
            ("append_bytes_per_item", self.append_bytes_per_item.to_json()),
            ("snapshot_p50_ms", self.snapshot_p50_ms.to_json()),
            ("snapshot_bytes", self.snapshot_bytes.to_json()),
            ("latency_ratio", self.latency_ratio.to_json()),
            ("bytes_ratio", self.bytes_ratio.to_json()),
        ])
    }
}

/// One dataset-size cell: load `total - probes` items, then measure
/// `probes` durable appends and `snap_reps` full snapshot writes.
fn run_cell(
    total: usize,
    probes: usize,
    snap_reps: usize,
    params: AlidParams,
    items: &[Vec<f64>],
    exec: ExecPolicy,
) -> Cell {
    let dir =
        std::env::temp_dir().join(format!("alid_bench_persist_{}_{total}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg =
        ServiceConfig::new(8, 2, params).with_batch(32).with_queue_capacity(4096).with_exec(exec);
    let mut service = Service::new(cfg);
    let journal =
        recover_and_open(JournalConfig { dir: dir.clone(), compact_every: 0 }, &service, 0)
            .expect("open bench journal");
    service.set_journal(journal);

    let base = total - probes;
    for item in &items[..base] {
        service.ingest(item);
        service.drain();
    }
    if let Some(j) = service.journal() {
        j.barrier();
    }

    // Journal side: per-mutation durable append, group commit included.
    let bytes_before = journal_disk_bytes(&dir);
    let mut append_ms = Vec::with_capacity(probes);
    for item in &items[base..] {
        let started = Instant::now();
        service.ingest(item);
        service.drain();
        if let Some(j) = service.journal() {
            j.barrier();
        }
        append_ms.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let append_bytes_per_item = (journal_disk_bytes(&dir) - bytes_before) as f64 / probes as f64;
    append_ms.sort_by(f64::total_cmp);

    // Snapshot side: serialize everything, write, fsync — the cost a
    // snapshot-per-mutation design would pay each time.
    let snap_path = dir.join("bench-snapshot.tmp");
    let mut snap_ms = Vec::with_capacity(snap_reps);
    let mut snapshot_bytes = 0usize;
    for _ in 0..snap_reps {
        let started = Instant::now();
        let (bytes, _pos) = snapshot_bytes_with_meta(&service);
        let mut file = std::fs::File::create(&snap_path).expect("create snapshot temp");
        file.write_all(&bytes).expect("write snapshot temp");
        file.sync_all().expect("fsync snapshot temp");
        snap_ms.push(started.elapsed().as_secs_f64() * 1e3);
        snapshot_bytes = bytes.len();
    }
    snap_ms.sort_by(f64::total_cmp);

    drop(service);
    let _ = std::fs::remove_dir_all(&dir);

    let append_p50_ms = percentile(&append_ms, 0.50);
    let snapshot_p50_ms = percentile(&snap_ms, 0.50);
    Cell {
        items: total,
        append_p50_ms,
        append_p99_ms: percentile(&append_ms, 0.99),
        append_bytes_per_item,
        snapshot_p50_ms,
        snapshot_bytes,
        latency_ratio: snapshot_p50_ms / append_p50_ms,
        bytes_ratio: snapshot_bytes as f64 / append_bytes_per_item,
    }
}

fn main() {
    let cli = parse_cli();
    let sizes: Vec<usize> = if cli.smoke {
        vec![150, 450]
    } else if cli.full {
        vec![500, 2_000, 8_000, 16_000]
    } else {
        vec![500, 2_000, 6_000]
    };
    let sizes: Vec<usize> =
        sizes.iter().map(|&n| ((n as f64 * cli.scale) as usize).max(100)).collect();
    let probes = if cli.smoke { 32 } else { 64 };
    let snap_reps = if cli.smoke { 3 } else { 5 };
    let exec = ExecPolicy::auto_or(cli.workers);

    let mut cells = Vec::new();
    for &total in &sizes {
        let (items, params) = workload(total);
        let cell = run_cell(total, probes, snap_reps, params, &items, exec);
        eprintln!(
            "items={total}: append p50 {:.3}ms p99 {:.3}ms ({:.0} B/item), snapshot p50 {:.2}ms ({} B) — {:.0}x bytes",
            cell.append_p50_ms,
            cell.append_p99_ms,
            cell.append_bytes_per_item,
            cell.snapshot_p50_ms,
            cell.snapshot_bytes,
            cell.bytes_ratio,
        );
        cells.push(cell);
    }

    // The O(delta) claim, in its hardware-independent form: per-item
    // journal bytes are flat across sizes and at least 10x smaller
    // than one full snapshot at the largest size.
    let first = &cells[0];
    let last = &cells[cells.len() - 1];
    assert!(
        last.bytes_ratio >= 10.0,
        "journal append must be at least 10x cheaper in bytes than a full snapshot \
         at the largest size (got {:.1}x: {:.0} B/item vs {} B)",
        last.bytes_ratio,
        last.append_bytes_per_item,
        last.snapshot_bytes,
    );
    assert!(
        last.append_bytes_per_item <= first.append_bytes_per_item * 2.0,
        "per-item journal bytes must not grow with dataset size \
         ({:.0} B at {} items vs {:.0} B at {} items)",
        last.append_bytes_per_item,
        last.items,
        first.append_bytes_per_item,
        first.items,
    );

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.items.to_string(),
                fmt(c.append_p50_ms),
                fmt(c.append_p99_ms),
                fmt(c.append_bytes_per_item),
                fmt(c.snapshot_p50_ms),
                c.snapshot_bytes.to_string(),
                fmt(c.latency_ratio),
                fmt(c.bytes_ratio),
            ]
        })
        .collect();
    print_table(
        "Persistence cost — O(delta) journal appends vs full snapshot rewrites",
        &[
            "items",
            "append_p50_ms",
            "append_p99_ms",
            "append_B/item",
            "snap_p50_ms",
            "snap_bytes",
            "lat_ratio",
            "bytes_ratio",
        ],
        &rows,
    );

    let mut fields = run_header("alid-bench/persist/1", exec.worker_count());
    fields.extend([
        ("smoke", cli.smoke.to_json()),
        ("probes", probes.to_json()),
        ("snapshot_reps", snap_reps.to_json()),
        ("cells", cells.to_json()),
    ]);
    save_json("BENCH_persist", &Json::object(fields));
}
