//! Fig. 10 — qualitative visual-word detection ("KFC grandpa").
//!
//! Partial-duplicate images share regions whose SIFT descriptors form
//! tight visual words; descriptors from random regions are noise. The
//! paper plots detected descriptors in green and filtered noise in red
//! per method (PALID, ALID, IID, SEA, AP). Without images, the same
//! content is a table: per method, how many true visual-word
//! descriptors were detected (recall, "green points") and how much
//! noise was filtered out (precision).

use alid_bench::report::fmt;
use alid_bench::runners::{run_alid, run_ap_dense, run_iid_dense, run_palid, run_sea_dense};
use alid_bench::{parse_args, print_table, save_json, RunCfg};
use alid_data::sift::partial_duplicate_scene;

fn main() {
    let args = parse_args();
    let images = if args.full { 200 } else { 50 };
    let images = ((images as f64 * args.scale) as usize).max(10);
    let ds = partial_duplicate_scene(images, 17);
    eprintln!(
        "scene: {} images sharing {} regions -> {} word descriptors + {} noise",
        images,
        ds.truth.cluster_count(),
        ds.truth.positive_count(),
        ds.truth.noise_count()
    );
    let cfg = RunCfg::default().with_exec(args.exec());
    let recs = vec![
        run_palid(&ds, &cfg, 4),
        run_alid(&ds, &cfg),
        run_iid_dense(&ds, &cfg),
        run_sea_dense(&ds, &cfg),
        run_ap_dense(&ds, &cfg),
    ];
    let positives = ds.truth.positive_count() as f64;
    let noise = ds.truth.noise_count() as f64;
    let rows: Vec<Vec<String>> = recs
        .iter()
        .map(|r| {
            let detected_pos = (r.recall * positives).round() as usize;
            let clustered = if r.precision > 0.0 { detected_pos as f64 / r.precision } else { 0.0 };
            let noise_kept = (clustered - detected_pos as f64).max(0.0);
            let noise_filtered = noise - noise_kept;
            vec![
                r.method.clone(),
                format!("{detected_pos}/{}", positives as usize),
                fmt(r.recall),
                fmt(r.precision),
                format!("{:.0}/{}", noise_filtered, noise as usize),
                fmt(r.avg_f),
            ]
        })
        .collect();
    print_table(
        "Fig. 10 — visual words: detected descriptors (green) vs filtered noise (red)",
        &["method", "detected positives", "recall", "precision", "noise filtered", "AVG-F"],
        &rows,
    );
    save_json("fig10_visual_words", &recs);
}
