//! Fig. 7 — scalability of the affinity-based methods.
//!
//! Twelve panels in the paper: runtime (a–d), memory (e–h) and AVG-F
//! (i–l) against data-set size, on the three synthetic regimes
//! (ω = 1.0, η = 0.9, P = 1000) and on NDI. The claims to reproduce:
//! ALID's runtime/memory growth orders match Table 1 and sit far below
//! AP/IID/SEA (which are ~quadratic and hit the memory wall first),
//! while AVG-F stays comparable across methods.

use alid_bench::report::fmt;
use alid_bench::runners::{run_alid, run_ap_dense, run_iid_dense, run_sea_dense};
use alid_bench::{loglog_slope, parse_args, print_table, save_json, RunCfg, RunRecord};
use alid_data::groundtruth::LabeledDataset;
use alid_data::ndi::ndi;
use alid_data::synthetic::{generate, Regime, SyntheticConfig};

/// Per-method accumulators: (name, sizes, runtimes, peak MiB).
type MethodSeries = (&'static str, Vec<f64>, Vec<f64>, Vec<f64>);
/// One figure panel: a label plus its data-set factory.
type Panel = (&'static str, Box<dyn Fn(usize) -> LabeledDataset>);

fn main() {
    let args = parse_args();
    let sizes: Vec<usize> = if args.full {
        vec![1_000, 2_000, 4_000, 8_000, 16_000]
    } else {
        vec![500, 1_000, 2_000, 4_000]
    };
    let sizes: Vec<usize> =
        sizes.iter().map(|&n| ((n as f64 * args.scale) as usize).max(200)).collect();
    let cfg = RunCfg::default().with_exec(args.exec());
    let mut all = Vec::new();

    let panels: Vec<Panel> = vec![
        (
            "synthetic a*=wn",
            Box::new(|n| {
                generate(&SyntheticConfig::paper(n, Regime::Proportional { omega: 1.0 }, 7))
            }),
        ),
        (
            "synthetic a*=n^0.9",
            Box::new(|n| generate(&SyntheticConfig::paper(n, Regime::Sublinear { eta: 0.9 }, 7))),
        ),
        (
            "synthetic a*<=1000",
            Box::new(|n| generate(&SyntheticConfig::paper(n, Regime::Bounded { p: 1000 }, 7))),
        ),
        (
            "NDI-sim",
            Box::new(|n| {
                // Subsets of NDI by fractional scale (the paper samples
                // the original data set).
                ndi(n as f64 / 109_815.0, 7)
            }),
        ),
    ];

    for (panel, make) in panels {
        let mut rows = Vec::new();
        let mut per_method: Vec<MethodSeries> = vec![
            ("AP", vec![], vec![], vec![]),
            ("IID", vec![], vec![], vec![]),
            ("SEA", vec![], vec![], vec![]),
            ("ALID", vec![], vec![], vec![]),
        ];
        for &n in &sizes {
            let ds = make(n);
            let recs = [
                run_ap_dense(&ds, &cfg),
                run_iid_dense(&ds, &cfg),
                run_sea_dense(&ds, &cfg),
                run_alid(&ds, &cfg),
            ];
            for (slot, rec) in per_method.iter_mut().zip(recs) {
                eprintln!(
                    "[{panel} n={}] {}: {} s, {} MiB, AVG-F {}",
                    ds.len(),
                    rec.method,
                    fmt(rec.runtime_s),
                    fmt(rec.peak_mib),
                    fmt(rec.avg_f)
                );
                rows.push(vec![
                    format!("{}", ds.len()),
                    rec.method.clone(),
                    if rec.oom { "OOM".into() } else { fmt(rec.runtime_s) },
                    if rec.oom { "OOM".into() } else { fmt(rec.peak_mib) },
                    fmt(rec.avg_f),
                ]);
                if !rec.oom {
                    slot.1.push(ds.len() as f64);
                    slot.2.push(rec.runtime_s);
                    slot.3.push(rec.peak_mib);
                }
                all.push(rec);
            }
        }
        print_table(
            &format!("Fig. 7 panel: {panel} (runtime / memory / AVG-F vs n)"),
            &["n", "method", "runtime_s", "peak_MiB", "AVG-F"],
            &rows,
        );
        let slope_rows: Vec<Vec<String>> = per_method
            .iter()
            .map(|(m, ns, ts, ms)| {
                vec![m.to_string(), fmt(loglog_slope(ns, ts)), fmt(loglog_slope(ns, ms))]
            })
            .collect();
        print_table(
            &format!("{panel}: fitted log-log growth orders"),
            &["method", "runtime slope", "memory slope"],
            &slope_rows,
        );
    }
    save_json("fig7_scalability", &all);
    summarize(&all);
}

fn summarize(all: &[RunRecord]) {
    // The paper's headline: at the largest common size ALID is the
    // fastest and smallest affinity-based method.
    let max_n = all.iter().filter(|r| !r.oom).map(|r| r.n).max().unwrap_or(0);
    let at_max: Vec<&RunRecord> = all.iter().filter(|r| r.n == max_n && !r.oom).collect();
    if let Some(fastest) = at_max.iter().min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s)) {
        eprintln!("\nfastest method at n={max_n}: {}", fastest.method);
    }
}
