//! Closed-loop load generator for the sharded serving layer — the
//! serving analogue of Table 2's PALID speedup study.
//!
//! For every `(shard count, request batch size)` cell the generator
//! starts an in-process `alid-service` HTTP front end on a loopback
//! port, replays a deterministic burst stream through `POST /ingest`
//! in a closed loop (one request in flight; the next departs when the
//! response lands), then exercises `/clusters`, `/assign` and
//! `/snapshot`. Per-request latencies give p50/p90/p99; wall-clock
//! over the whole replay gives item throughput. Because routing and
//! per-shard application are deterministic, the final `/clusters`
//! answer must be identical across request batch sizes at a fixed
//! shard count — the bench asserts it, doubling as a parity harness
//! like `bench_speculation`.
//!
//! Output: an aligned table on stdout plus
//! `experiments/BENCH_service.json` (stamped with the
//! schema/git_rev/workers provenance header).
//!
//! Flags: `--smoke` (tiny sizes for CI), `--full` (larger sweep),
//! `--scale=<f64>` (item-count multiplier), `--workers=<n>` (exec
//! workers inside the service), `--addr=<host:port>` (drive an
//! *external* server through one ingest/assign/snapshot cycle instead
//! of the sweep — the CI smoke mode; the server must be started with
//! `--snapshot`, since the endpoint never takes a client path).

use std::sync::Arc;
use std::time::{Duration, Instant};

use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_bench::report::{fmt, run_header};
use alid_bench::{print_table, save_json};
use alid_core::AlidParams;
use alid_data::stream::{generate_stream, Burst, StreamConfig};
use alid_exec::ExecPolicy;
use alid_service::http::{self, Client, HttpOptions};
use alid_service::{Service, ServiceConfig};
use serde::{Json, Serialize};

struct Cli {
    smoke: bool,
    full: bool,
    scale: f64,
    workers: Option<usize>,
    addr: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli { smoke: false, full: false, scale: 1.0, workers: None, addr: None };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            cli.smoke = true;
        } else if arg == "--full" {
            cli.full = true;
        } else if let Some(v) = arg.strip_prefix("--scale=") {
            cli.scale = v.parse().expect("--scale=<float>");
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            let w: usize = v.parse().expect("--workers=<positive integer>");
            assert!(w >= 1, "--workers must be at least 1");
            cli.workers = Some(w);
        } else if let Some(v) = arg.strip_prefix("--addr=") {
            cli.addr = Some(v.to_string());
        } else if arg == "--help" || arg == "-h" {
            eprintln!(
                "options: --smoke (tiny CI sizes), --full (larger sweep), \
                 --scale=<f64>, --workers=<n>, --addr=<host:port> (drive an \
                 external server instead of the in-process sweep)"
            );
            std::process::exit(0);
        } else {
            eprintln!("unknown option {arg}; try --help");
            std::process::exit(2);
        }
    }
    cli
}

/// The replayed workload: a deterministic burst stream (hot events
/// inside background noise) from the data crate's generator, plus the
/// calibrated detection parameters for it.
fn workload(total: usize) -> (Vec<Vec<f64>>, AlidParams) {
    let dim = 8;
    let burst = total / 6; // three bursts, half the stream is signal
    let cfg = StreamConfig {
        dim,
        total,
        bursts: vec![
            Burst { start: total / 10, size: burst, spacing: 1 },
            Burst { start: total / 2, size: burst, spacing: 1 },
            Burst { start: total * 7 / 10, size: burst, spacing: 1 },
        ],
        jitter: 0.05,
        noise_span: 25.0,
        seed: 0xbe9c,
    };
    let scenario = generate_stream(&cfg);
    let kernel = LaplacianKernel::calibrate(scenario.scale * 2.0, 0.9, LpNorm::L2);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    params.density_threshold = 0.75;
    params.min_cluster_size = 4;
    params.lsh.seed = 11;
    let items = scenario.data.iter().map(<[f64]>::to_vec).collect();
    (items, params)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct Cell {
    shards: usize,
    req_batch: usize,
    items: usize,
    requests: usize,
    busy: usize,
    elapsed_s: f64,
    throughput: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    clusters: usize,
    snapshot_bytes: usize,
}

impl Serialize for Cell {
    fn to_json(&self) -> Json {
        Json::object([
            ("shards", self.shards.to_json()),
            ("req_batch", self.req_batch.to_json()),
            ("items", self.items.to_json()),
            ("requests", self.requests.to_json()),
            ("busy", self.busy.to_json()),
            ("elapsed_s", self.elapsed_s.to_json()),
            ("throughput_items_per_s", self.throughput.to_json()),
            ("p50_ms", self.p50_ms.to_json()),
            ("p90_ms", self.p90_ms.to_json()),
            ("p99_ms", self.p99_ms.to_json()),
            ("clusters", self.clusters.to_json()),
            ("snapshot_bytes", self.snapshot_bytes.to_json()),
        ])
    }
}

/// One shard-count cell of the straddling-cluster scenario: merge
/// cost (pairs tested, unions re-run) and reduce-phase latency of the
/// cross-shard fragment join, plus the cached repeat.
struct StraddleCell {
    shards: usize,
    raw_clusters: usize,
    merged_clusters: usize,
    pairs_tested: usize,
    pairs_linked: usize,
    groups_rerun: usize,
    union_items: usize,
    clusters_merged: usize,
    reduce_ms: f64,
    cached_ms: f64,
}

impl Serialize for StraddleCell {
    fn to_json(&self) -> Json {
        Json::object([
            ("shards", self.shards.to_json()),
            ("raw_clusters", self.raw_clusters.to_json()),
            ("merged_clusters", self.merged_clusters.to_json()),
            ("pairs_tested", self.pairs_tested.to_json()),
            ("pairs_linked", self.pairs_linked.to_json()),
            ("groups_rerun", self.groups_rerun.to_json()),
            ("union_items", self.union_items.to_json()),
            ("clusters_merged", self.clusters_merged.to_json()),
            ("reduce_ms", self.reduce_ms.to_json()),
            ("cached_ms", self.cached_ms.to_json()),
        ])
    }
}

/// Runs the straddling-cluster merge scenario across shard counts:
/// a tight cluster split by the router's first hyperplane, reduced by
/// the merged view. Asserts the CI-smoke guarantee along the way —
/// merged member sets identical at every shard count (the raw view
/// fragments, the reduce joins) and the cached repeat query free of
/// reduction cost.
fn straddle_cells(exec: ExecPolicy, shard_counts: &[usize]) -> Vec<StraddleCell> {
    let fx = alid_bench::fixtures::straddling_cluster();
    let mut reference: Option<Vec<Vec<u64>>> = None;
    let mut cells = Vec::new();
    for &shards in shard_counts {
        let mut params = fx.params;
        params.exec = exec;
        let mut cfg = ServiceConfig::new(2, shards, params).with_batch(8).with_exec(exec);
        cfg.router_seed = fx.router_seed;
        let svc = Service::new(cfg);
        for v in &fx.items {
            svc.ingest(v);
            svc.drain();
        }
        svc.sweep();
        let raw_clusters = svc.summaries().len();
        let started = Instant::now();
        let view = svc.merged_view();
        let reduce_ms = started.elapsed().as_secs_f64() * 1e3;
        let started = Instant::now();
        let again = svc.merged_view();
        let cached_ms = started.elapsed().as_secs_f64() * 1e3;
        assert!(std::sync::Arc::ptr_eq(&view, &again), "repeat query must hit the cache");
        let mut sets: Vec<Vec<u64>> = view.clusters.iter().map(|c| c.members.clone()).collect();
        sets.sort();
        match &reference {
            None => {
                assert!(
                    sets.contains(&fx.straddler),
                    "single-shard reference must hold the straddler whole"
                );
                reference = Some(sets);
            }
            Some(r) => {
                assert!(
                    shards == 1 || raw_clusters > view.clusters.len(),
                    "{shards} shards: the raw view must fragment the straddler"
                );
                assert_eq!(
                    r, &sets,
                    "{shards} shards: merged member sets diverge from the single-shard run"
                );
            }
        }
        cells.push(StraddleCell {
            shards,
            raw_clusters,
            merged_clusters: view.clusters.len(),
            pairs_tested: view.stats.pairs_tested,
            pairs_linked: view.stats.pairs_linked,
            groups_rerun: view.stats.groups_rerun,
            union_items: view.stats.union_items,
            clusters_merged: view.stats.clusters_merged,
            reduce_ms,
            cached_ms,
        });
    }
    cells
}

fn items_json(batch: &[Vec<f64>]) -> Json {
    Json::object([(
        "items",
        Json::Arr(
            batch.iter().map(|v| Json::Arr(v.iter().map(|&x| Json::Num(x)).collect())).collect(),
        ),
    )])
}

/// Replays `items` through `client` in request batches of `req_batch`,
/// returning (per-request latencies, busy verdict count).
fn replay(client: &mut Client, items: &[Vec<f64>], req_batch: usize) -> (Vec<f64>, usize) {
    let mut latencies = Vec::with_capacity(items.len() / req_batch + 1);
    let mut busy = 0usize;
    for batch in items.chunks(req_batch) {
        let body = items_json(batch);
        let started = Instant::now();
        let (status, resp) = client.request("POST", "/ingest", Some(&body)).expect("ingest");
        latencies.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200, "{resp:?}");
        let results = resp.get("results").and_then(Json::as_arr).expect("results array");
        busy += results
            .iter()
            .filter(|r| r.get("status").and_then(Json::as_str) == Some("busy"))
            .count();
    }
    (latencies, busy)
}

/// One full cycle against a served address: ingest, clusters, assign,
/// snapshot. Returns the cell metrics plus the final clusters answer
/// (for cross-cell parity checks).
fn drive(addr: &str, items: &[Vec<f64>], req_batch: usize) -> (Cell, Json) {
    let mut client = Client::connect(addr).expect("connect");
    // Shard count from the server itself, so the report's provenance
    // is true in external-address mode too.
    let (status, health) = client.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200, "{health:?}");
    let shards = health.get("shards").and_then(Json::as_u64).expect("healthz shards") as usize;
    let started = Instant::now();
    let (mut latencies, busy) = replay(&mut client, items, req_batch);
    let elapsed_s = started.elapsed().as_secs_f64();
    let requests = latencies.len();
    latencies.sort_by(f64::total_cmp);

    let (status, clusters_resp) = client.request("GET", "/clusters", None).expect("clusters");
    assert_eq!(status, 200);
    let clusters = clusters_resp.get("clusters").and_then(Json::as_arr).map_or(0, <[Json]>::len);

    // Spot-check the assignment path on the first admitted item.
    let (status, _) = client.request("GET", "/assign?id=0", None).expect("assign");
    assert_eq!(status, 200);

    // The server writes to its configured --snapshot path; client
    // paths are deliberately not honoured.
    let (status, snap) = client.request("POST", "/snapshot", None).expect("snapshot");
    assert_eq!(status, 200, "{snap:?}");
    let snapshot_bytes = snap.get("bytes").and_then(Json::as_u64).unwrap_or(0) as usize;
    // The compaction-trigger contract: the response must carry the
    // write latency and the journal bytes freed (0 without a journal).
    snap.get("duration_ms").and_then(Json::as_f64).expect("snapshot duration_ms");
    snap.get("journal_truncated_bytes")
        .and_then(Json::as_u64)
        .expect("snapshot journal_truncated_bytes");

    let cell = Cell {
        shards,
        req_batch,
        items: items.len(),
        requests,
        busy,
        elapsed_s,
        throughput: items.len() as f64 / elapsed_s,
        p50_ms: percentile(&latencies, 0.50),
        p90_ms: percentile(&latencies, 0.90),
        p99_ms: percentile(&latencies, 0.99),
        clusters,
        snapshot_bytes,
    };
    (cell, clusters_resp)
}

fn main() {
    let cli = parse_cli();
    let total = if cli.smoke {
        180
    } else if cli.full {
        6_000
    } else {
        1_500
    };
    let total = ((total as f64 * cli.scale) as usize).max(60);
    let (items, params) = workload(total);
    let exec = ExecPolicy::auto_or(cli.workers);
    let snapshot_path =
        std::env::temp_dir().join(format!("alid_bench_snap_{}.bin", std::process::id()));

    let mut cells: Vec<Cell> = Vec::new();
    if let Some(addr) = &cli.addr {
        // External-server mode: one ingest/assign/snapshot cycle — the
        // CI smoke path driving a separately spawned `alid serve`.
        http::wait_ready(addr, Duration::from_secs(30)).expect("server never became ready");
        let (cell, _) = drive(addr, &items, 16);
        eprintln!(
            "external cycle against {addr}: {} items in {:.2}s, {} clusters, snapshot {} bytes",
            cell.items, cell.elapsed_s, cell.clusters, cell.snapshot_bytes
        );
        cells.push(cell);
    } else {
        let shard_counts: &[usize] = if cli.smoke { &[1, 2] } else { &[1, 2, 4, 8] };
        let req_batches: &[usize] = if cli.smoke { &[16] } else { &[1, 16, 64] };
        for &shards in shard_counts {
            let mut parity: Option<Json> = None;
            for &req_batch in req_batches {
                let cfg = ServiceConfig::new(8, shards, params)
                    .with_batch(32)
                    .with_queue_capacity(4096)
                    .with_exec(exec);
                let service = Arc::new(Service::new(cfg));
                let server = http::start(
                    service,
                    "127.0.0.1:0",
                    HttpOptions { http_workers: 2, snapshot_path: Some(snapshot_path.clone()) },
                )
                .expect("bind loopback");
                let addr = server.addr().to_string();
                let (cell, clusters) = drive(&addr, &items, req_batch);
                server.shutdown();
                eprintln!(
                    "shards={shards} req_batch={req_batch}: {:.0} items/s, p99 {:.2}ms, {} clusters",
                    cell.throughput, cell.p99_ms, cell.clusters
                );
                // Request batching must not change detection output.
                match &parity {
                    None => parity = Some(clusters),
                    Some(reference) => assert_eq!(
                        reference, &clusters,
                        "request batch size changed the clustering at {shards} shards"
                    ),
                }
                cells.push(cell);
            }
        }
    }
    let _ = std::fs::remove_file(&snapshot_path);

    // The straddling-cluster merge scenario (library-level; skipped
    // when driving an external server whose config we don't own).
    let straddle = if cli.addr.is_none() {
        let counts: &[usize] = if cli.smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
        straddle_cells(exec, counts)
    } else {
        Vec::new()
    };

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.shards.to_string(),
                c.req_batch.to_string(),
                c.items.to_string(),
                c.requests.to_string(),
                c.busy.to_string(),
                fmt(c.elapsed_s),
                fmt(c.throughput),
                fmt(c.p50_ms),
                fmt(c.p90_ms),
                fmt(c.p99_ms),
                c.clusters.to_string(),
            ]
        })
        .collect();
    print_table(
        "Sharded service under closed-loop load — throughput and latency percentiles",
        &[
            "shards",
            "req_batch",
            "items",
            "requests",
            "busy",
            "elapsed_s",
            "items/s",
            "p50_ms",
            "p90_ms",
            "p99_ms",
            "clusters",
        ],
        &rows,
    );

    if !straddle.is_empty() {
        let rows: Vec<Vec<String>> = straddle
            .iter()
            .map(|c| {
                vec![
                    c.shards.to_string(),
                    c.raw_clusters.to_string(),
                    c.merged_clusters.to_string(),
                    c.pairs_tested.to_string(),
                    c.pairs_linked.to_string(),
                    c.groups_rerun.to_string(),
                    c.union_items.to_string(),
                    fmt(c.reduce_ms),
                    fmt(c.cached_ms),
                ]
            })
            .collect();
        print_table(
            "Straddling-cluster reduce — merge cost of joining cross-shard fragments",
            &[
                "shards",
                "raw",
                "merged",
                "pairs",
                "linked",
                "unions",
                "union_items",
                "reduce_ms",
                "cached_ms",
            ],
            &rows,
        );
    }

    let mut fields = run_header("alid-bench/service/1", exec.worker_count());
    fields.extend([
        ("smoke", cli.smoke.to_json()),
        ("external_addr", cli.addr.clone().map(Json::Str).unwrap_or(Json::Null)),
        ("total_items", total.to_json()),
        ("cells", cells.to_json()),
        ("straddle", straddle.to_json()),
    ]);
    save_json("BENCH_service", &Json::object(fields));
}
