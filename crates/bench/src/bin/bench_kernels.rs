//! Blocked-kernel microbenchmark — the measurement half of ROADMAP
//! item 3's raw-speed work.
//!
//! For every dimension in the sweep the harness evaluates one query
//! against `n` rows with (a) the scalar reference path
//! ([`LaplacianKernel::eval`] per row, exactly what every call site
//! did before blocking) and (b) [`BlockEval::eval_rows_blocked`]
//! across a sweep of block heights, including the
//! [`default_block_rows`] choice. Each cell reports best-of-reps
//! per-pair nanoseconds; every blocked run is asserted bit-identical
//! to the scalar output before its timing counts (the bench doubles
//! as a parity harness, like `bench_speculation`).
//!
//! The autotuner's state needs no bespoke plumbing here: `BlockEval`
//! exports `KERNEL_BLOCK_TUNE` as `alid_tune_*{site="kernel_block"}`
//! gauges, and the report header's `metrics` snapshot picks those up
//! along with everything else the process registered. The report also
//! records whether explicit SIMD lanes (`--features simd-lanes` +
//! runtime AVX detection) were active.
//!
//! Output: aligned tables on stdout plus
//! `experiments/BENCH_kernels.json`.
//!
//! Flags: `--smoke` (tiny CI sizes), `--full` (larger sweep),
//! `--scale=<f64>`.

use std::time::Instant;

use alid_affinity::block::{default_block_rows, lanes_active, BlockEval};
use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_affinity::vector::Dataset;
use alid_bench::report::fmt;
use alid_bench::{print_table, save_json};
use serde::{Json, Serialize};

struct Cli {
    smoke: bool,
    full: bool,
    scale: f64,
}

fn parse_cli() -> Cli {
    let mut cli = Cli { smoke: false, full: false, scale: 1.0 };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            cli.smoke = true;
        } else if arg == "--full" {
            cli.full = true;
        } else if let Some(v) = arg.strip_prefix("--scale=") {
            cli.scale = v.parse().expect("--scale=<float>");
        } else if arg == "--help" || arg == "-h" {
            eprintln!("options: --smoke (tiny CI sizes), --full (larger sweep), --scale=<f64>");
            std::process::exit(0);
        } else {
            eprintln!("unknown option {arg}; try --help");
            std::process::exit(2);
        }
    }
    cli
}

/// Deterministic sign-mixed data that defeats constant folding without
/// denormals (this is a throughput bench; the adversarial-value parity
/// lives in `tests/proptest_block.rs`).
fn dataset(n: usize, dim: usize) -> Dataset {
    let data: Vec<f64> =
        (0..n * dim).map(|i| ((i * 2_654_435_761 % 10_007) as f64 - 5_000.0) / 311.0).collect();
    Dataset::from_flat(dim, data)
}

/// Best-of-`reps` wall time for `f`, in nanoseconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

struct CellResult {
    block: usize,
    is_default: bool,
    ns_per_pair: f64,
    speedup: f64,
}

impl Serialize for CellResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("block", self.block.to_json()),
            ("default_block", self.is_default.to_json()),
            ("ns_per_pair", self.ns_per_pair.to_json()),
            ("speedup_vs_scalar", self.speedup.to_json()),
        ])
    }
}

struct DimResult {
    dim: usize,
    n: usize,
    scalar_ns_per_pair: f64,
    cells: Vec<CellResult>,
    best_speedup: f64,
}

impl Serialize for DimResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("dim", self.dim.to_json()),
            ("n", self.n.to_json()),
            ("scalar_ns_per_pair", self.scalar_ns_per_pair.to_json()),
            ("best_speedup", self.best_speedup.to_json()),
            ("blocked", self.cells.to_json()),
        ])
    }
}

fn main() {
    let cli = parse_cli();
    let dims: &[usize] = if cli.smoke {
        &[32]
    } else if cli.full {
        &[8, 32, 128, 512]
    } else {
        &[8, 32, 128]
    };
    // Element budget per dimension sweep: keeps the row data ~1 MiB so
    // the comparison measures the kernels, not DRAM bandwidth (at 8 MiB
    // working sets both paths are memory-bound and indistinguishable).
    let elems = if cli.smoke { 32_768 } else { 131_072 };
    let elems = ((elems as f64 * cli.scale) as usize).max(4_096);
    let reps = if cli.smoke {
        5
    } else if cli.full {
        31
    } else {
        15
    };
    let kern = LaplacianKernel::new(0.8, LpNorm::L2);

    let mut results = Vec::new();
    let mut rows = Vec::new();
    for &dim in dims {
        let n = (elems / dim).max(256);
        let ds = dataset(n, dim);
        let query = ds.get(n / 2).to_vec();

        // Scalar reference: the exact pre-blocking per-pair call.
        let mut want = vec![0.0; n];
        let scalar_ns = best_of(reps, || {
            for (i, w) in want.iter_mut().enumerate() {
                *w = kern.eval(ds.get(i), &query);
            }
            std::hint::black_box(&want);
        });
        let scalar_pp = scalar_ns as f64 / n as f64;

        let def = default_block_rows(dim);
        let mut blocks: Vec<usize> = vec![8, 32, 64, 128];
        if !blocks.contains(&def) {
            blocks.push(def);
            blocks.sort_unstable();
        }
        let mut scratch = BlockEval::new();
        let mut out = vec![0.0; n];
        let mut cells = Vec::new();
        let mut best_speedup = 0.0f64;
        for &block in &blocks {
            let ns = best_of(reps, || {
                scratch.eval_rows_blocked(&kern, dim, ds.as_flat(), &query, &mut out, block);
                std::hint::black_box(&out);
            });
            // Parity gate: a timing only counts if the bits agree.
            for (i, (&got, &w)) in out.iter().zip(&want).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    w.to_bits(),
                    "blocked result diverged from scalar at dim={dim} block={block} row={i}"
                );
            }
            let pp = ns as f64 / n as f64;
            let speedup = scalar_pp / pp;
            best_speedup = best_speedup.max(speedup);
            rows.push(vec![
                dim.to_string(),
                if block == def { format!("{block}*") } else { block.to_string() },
                fmt(scalar_pp),
                fmt(pp),
                format!("{speedup:.2}x"),
            ]);
            cells.push(CellResult { block, is_default: block == def, ns_per_pair: pp, speedup });
        }
        eprintln!(
            "dim={dim}: scalar {scalar_pp:.1} ns/pair, best blocked speedup {best_speedup:.2}x"
        );
        results.push(DimResult { dim, n, scalar_ns_per_pair: scalar_pp, cells, best_speedup });
    }

    print_table(
        "Blocked kernel evaluation vs scalar (ns/pair, * = default block)",
        &["dim", "block", "scalar", "blocked", "speedup"],
        &rows,
    );

    // Header built after the sweep: its `metrics` snapshot then
    // carries `alid_tune_*{site="kernel_block"}` — the autotuner state
    // the old bespoke `kernel_block_tune` field used to duplicate.
    let mut fields = alid_bench::report::run_header("alid-bench/kernels/1", 1);
    fields.extend([
        ("smoke", cli.smoke.to_json()),
        ("elems", elems.to_json()),
        ("reps", reps.to_json()),
        ("simd_lanes_active", lanes_active().to_json()),
        ("dims", results.to_json()),
    ]);
    save_json("BENCH_kernels", &Json::object(fields));
}
