//! Table 2 — parallel performance of PALID on the SIFT workload.
//!
//! The paper runs PALID on Apache Spark over 50 million SIFT
//! descriptors: 17.2 h on 1 executor down to 2.29 h on 8 (speedup
//! 7.51). This reproduction swaps Spark for an in-process executor pool
//! (DESIGN.md records the substitution); the quantity under test — the
//! speedup ratio of the embarrassingly parallel map phase versus the
//! executor count — is the same. The SIFT simulator is size-scaled so
//! the run fits a laptop; pass `--full` for a larger sweep.

use alid_bench::report::fmt;
use alid_bench::runners::run_palid;
use alid_bench::{parse_args, print_table, save_json, RunCfg};
use alid_data::sift::{sift, SiftConfig};

fn main() {
    let args = parse_args();
    let total = if args.full { 200_000 } else { 20_000 };
    let total = ((total as f64 * args.scale) as usize).max(2_000);
    let ds = sift(&SiftConfig::scaled(total, 11));
    eprintln!(
        "SIFT workload: {} descriptors, {} visual words, {} noise",
        ds.len(),
        ds.truth.cluster_count(),
        ds.truth.noise_count()
    );
    let cfg = RunCfg::default().with_exec(args.exec());
    let executors = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut t1 = f64::NAN;
    for &e in &executors {
        let rec = run_palid(&ds, &cfg, e);
        if e == 1 {
            t1 = rec.runtime_s;
        }
        let speedup = t1 / rec.runtime_s;
        eprintln!(
            "PALID-{e}: {:.2}s (speedup {:.2}), AVG-F {}",
            rec.runtime_s,
            speedup,
            fmt(rec.avg_f)
        );
        rows.push(vec![
            format!("PALID-{e}Exec"),
            e.to_string(),
            fmt(rec.runtime_s),
            fmt(speedup),
            fmt(rec.avg_f),
        ]);
        records.push(rec);
    }
    print_table(
        "Table 2 — PALID on the SIFT workload (paper: 17.2h -> 2.29h, speedup 7.51 at 8 executors)",
        &["method", "executors", "runtime_s", "speedup ratio", "AVG-F"],
        &rows,
    );
    save_json("table2_palid", &records);
}
