//! Developer utility: time each method on one workload (not a paper
//! artifact; used to size the quick-mode figure runs).

use alid_bench::runners::*;
use alid_bench::{parse_args, RunCfg};
use alid_data::sift::partial_duplicate_scene;
use std::time::Instant;

fn main() {
    let args = parse_args();
    let ds = partial_duplicate_scene(50, 17);
    eprintln!("n = {}", ds.len());
    let cfg = RunCfg::default().with_exec(args.exec());
    type Stage<'a> = (&'a str, Box<dyn Fn() -> RunRecord + 'a>);
    let stages: Vec<Stage> = vec![
        ("ALID", Box::new(|| run_alid(&ds, &cfg))),
        ("PALID-4", Box::new(|| run_palid(&ds, &cfg, 4))),
        ("IID", Box::new(|| run_iid_dense(&ds, &cfg))),
        ("SEA", Box::new(|| run_sea_dense(&ds, &cfg))),
        ("AP", Box::new(|| run_ap_dense(&ds, &cfg))),
    ];
    for (name, f) in stages {
        let t = Instant::now();
        let rec = f();
        eprintln!(
            "{name}: {:.2}s (avg_f {:.3}, {} clusters)",
            t.elapsed().as_secs_f64(),
            rec.avg_f,
            rec.clusters
        );
    }
}
