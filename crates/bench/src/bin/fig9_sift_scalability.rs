//! Fig. 9 — single-machine scalability on SIFT subsets.
//!
//! The paper samples subsets of SIFT-50M and runs the affinity-based
//! methods until each hits the 12 GB RAM wall; ALID processes 1.29M
//! descriptors where the baselines stop around 0.04M, with visibly
//! lower runtime/memory growth orders. Here the budget is configurable
//! (default 1.5 GB) and the subsets are scaled down; the ordering and
//! the slopes are the reproduced shape.

use alid_bench::report::fmt;
use alid_bench::runners::{run_alid, run_ap_dense, run_iid_dense, run_sea_dense};
use alid_bench::RunCfg;
use alid_bench::{loglog_slope, parse_args, print_table, save_json};
use alid_data::sift::{sift, SiftConfig};

/// Per-method accumulators: (name, sizes, runtimes, peak MiB).
type MethodSeries = (&'static str, Vec<f64>, Vec<f64>, Vec<f64>);

fn main() {
    let args = parse_args();
    let sizes: Vec<usize> = if args.full {
        vec![2_000, 5_000, 10_000, 20_000, 50_000, 100_000]
    } else {
        vec![1_000, 2_000, 4_000, 8_000]
    };
    let sizes: Vec<usize> =
        sizes.iter().map(|&n| ((n as f64 * args.scale) as usize).max(500)).collect();
    let cfg = RunCfg::default().with_exec(args.exec());
    let mut rows = Vec::new();
    let mut all = Vec::new();
    let mut per_method: Vec<MethodSeries> = vec![
        ("AP", vec![], vec![], vec![]),
        ("IID", vec![], vec![], vec![]),
        ("SEA", vec![], vec![], vec![]),
        ("ALID", vec![], vec![], vec![]),
    ];
    for &n in &sizes {
        let ds = sift(&SiftConfig::scaled(n, 13));
        let recs = [
            run_ap_dense(&ds, &cfg),
            run_iid_dense(&ds, &cfg),
            run_sea_dense(&ds, &cfg),
            run_alid(&ds, &cfg),
        ];
        for (slot, rec) in per_method.iter_mut().zip(recs) {
            eprintln!(
                "[n={n}] {}: {} s, {} MiB",
                rec.method,
                if rec.oom { "OOM".into() } else { fmt(rec.runtime_s) },
                if rec.oom { "OOM".into() } else { fmt(rec.peak_mib) },
            );
            rows.push(vec![
                n.to_string(),
                rec.method.clone(),
                if rec.oom { "OOM".into() } else { fmt(rec.runtime_s) },
                if rec.oom { "OOM".into() } else { fmt(rec.peak_mib) },
                fmt(rec.avg_f),
            ]);
            if !rec.oom {
                slot.1.push(n as f64);
                slot.2.push(rec.runtime_s);
                slot.3.push(rec.peak_mib);
            }
            all.push(rec);
        }
    }
    print_table(
        "Fig. 9 — SIFT subsets: runtime & memory per method (OOM = exceeds budget, like the paper's 12 GB wall)",
        &["n", "method", "runtime_s", "peak_MiB", "AVG-F"],
        &rows,
    );
    let slope_rows: Vec<Vec<String>> = per_method
        .iter()
        .map(|(m, ns, ts, ms)| {
            vec![m.to_string(), fmt(loglog_slope(ns, ts)), fmt(loglog_slope(ns, ms))]
        })
        .collect();
    print_table(
        "Fig. 9 — fitted log-log growth orders",
        &["method", "runtime slope", "memory slope"],
        &slope_rows,
    );
    save_json("fig9_sift_scalability", &all);
}
