//! Fig. 6 — influence of the sparse degree (Section 5.1).
//!
//! AP/SEA/IID run on an LSH-sparsified affinity matrix; the LSH segment
//! length `r` steers the sparse degree (fraction of zero entries). ALID
//! uses the same LSH module inside CIVS but always computes *exact*
//! local submatrices. The paper's claims: (a) everyone's AVG-F rises as
//! the sparse degree falls (cohesiveness is restored); (b) ALID reaches
//! its plateau AVG-F while still pruning ~99.8% of the matrix; (c) at
//! low sparse degree the baselines' runtimes blow up (AP worst) while
//! ALID stays flat.

use alid_bench::report::fmt;
use alid_bench::runners::{run_alid_with, run_sparse_baseline};
use alid_bench::{parse_args, print_table, save_json, RunCfg};
use alid_data::groundtruth::LabeledDataset;
use alid_data::nart::nart_with;
use alid_data::ndi::sub_ndi;
use alid_lsh::LshParams;

fn main() {
    let args = parse_args();
    // Quick mode shrinks the corpora (the paper's NART is 5 301 items,
    // Sub-NDI 9 940) and lightens the LSH ensemble; full mode uses the
    // paper's 40 projections x 50 tables.
    let (scale, tables, projections) = if args.full { (1.0, 50, 40) } else { (0.22, 16, 12) };
    let scale = scale * args.scale;
    let datasets: Vec<LabeledDataset> = vec![nart_with(scale, None, 5), sub_ndi(scale, None, 5)];
    // Segment lengths as multiples of the kernel's half-affinity
    // distance (the paper sweeps r in feature-space units; our
    // simulators have their own scales, so the sweep is expressed
    // relative to the calibrated kernel).
    // The top factors push the matrices toward dense (low sparse
    // degree), where the paper's runtime blow-up of the baselines shows.
    let r_factors = [0.3, 0.8, 1.5, 3.0, 5.0, 8.0];
    let cfg = RunCfg::default().with_exec(args.exec());
    let mut all = Vec::new();
    for ds in &datasets {
        let kernel = cfg.kernel(ds);
        let d_half = kernel.distance_at(0.5);
        let mut rows = Vec::new();
        for &f in &r_factors {
            let r = f * d_half;
            let lsh = LshParams { tables, projections, r, seed: cfg.seed };
            for method in ["AP", "SEA", "IID"] {
                let rec = run_sparse_baseline(method, ds, &cfg, lsh);
                eprintln!(
                    "[{} r={:.3}] {}: SD={} AVG-F={} {}s",
                    ds.name,
                    r,
                    rec.method,
                    fmt(rec.sparse_degree.unwrap_or(f64::NAN)),
                    fmt(rec.avg_f),
                    fmt(rec.runtime_s)
                );
                rows.push(vec![
                    format!("{f:.2}"),
                    rec.method.clone(),
                    fmt(rec.sparse_degree.unwrap_or(f64::NAN)),
                    fmt(rec.avg_f),
                    if rec.oom { "OOM".into() } else { fmt(rec.runtime_s) },
                ]);
                all.push(rec);
            }
            // ALID with the *same* LSH module (Section 5.1: parameter
            // settings of LSH kept identical across methods).
            let mut params = cfg.alid_params(ds);
            params.lsh = lsh;
            let rec = run_alid_with(ds, &cfg, params);
            eprintln!(
                "[{} r={:.3}] ALID: SD={} AVG-F={} {}s",
                ds.name,
                r,
                fmt(rec.sparse_degree.unwrap_or(f64::NAN)),
                fmt(rec.avg_f),
                fmt(rec.runtime_s)
            );
            rows.push(vec![
                format!("{f:.2}"),
                rec.method.clone(),
                fmt(rec.sparse_degree.unwrap_or(f64::NAN)),
                fmt(rec.avg_f),
                fmt(rec.runtime_s),
            ]);
            all.push(rec);
        }
        print_table(
            &format!(
                "Fig. 6 on {} — AVG-F & runtime vs LSH segment length (r = factor x {:.3})",
                ds.name, d_half
            ),
            &["r factor", "method", "sparse degree", "AVG-F", "runtime_s"],
            &rows,
        );
    }
    save_json("fig6_sparsity", &all);
}
