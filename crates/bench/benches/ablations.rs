//! Ablations of ALID's design choices (DESIGN.md section 6):
//!
//! * ROI schedule — the growing θ(c) radius vs jumping straight to the
//!   outer ball (more candidates early → more kernel evaluations);
//! * CIVS multi-query — querying with every supporting item vs only the
//!   ball centre (paper Fig. 4: single-query recall starves detection);
//! * δ cap — how the candidate budget trades work for coverage.
//!
//! These measure *work* (kernel evaluations via the cost model) as well
//! as time, so the effect survives machine noise.

use alid_affinity::cost::CostModel;
use alid_core::civs::civs;
use alid_core::{detect_one, AlidParams};
use alid_data::sift::{sift, SiftConfig};
use alid_lsh::LshIndex;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn workload() -> alid_data::groundtruth::LabeledDataset {
    sift(&SiftConfig { words: 6, word_size: 60, noise: 1_500, seed: 29 })
}

fn params_for(ds: &alid_data::groundtruth::LabeledDataset) -> AlidParams {
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut p = AlidParams::new(kernel);
    p.first_roi_radius = kernel.distance_at(0.5);
    p
}

fn bench_delta_sweep(c: &mut Criterion) {
    let ds = workload();
    let base = params_for(&ds);
    let cost = CostModel::shared();
    let index = LshIndex::build(&ds.data, base.lsh, &cost);
    let seed = ds.truth.clusters()[0][0];
    let mut group = c.benchmark_group("ablation_delta");
    for delta in [50usize, 200, 800] {
        let params = base.with_delta(delta);
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, _| {
            b.iter(|| black_box(detect_one(&ds.data, &params, &index, seed, &cost)));
        });
    }
    group.finish();
}

fn bench_civs_queries(c: &mut Criterion) {
    // Multi-query CIVS (one LSH probe per supporting item, Fig. 4b) vs a
    // single probe (Fig. 4a). Both variants use the SAME support for the
    // candidate-exclusion set — only the probe count differs — so the
    // retrieved-candidate gap isolates retrieval coverage. The support is
    // half of one visual word; the candidates to find are the other half.
    let ds = workload();
    let base = params_for(&ds);
    let cost = CostModel::shared();
    let index = LshIndex::build(&ds.data, base.lsh, &cost);
    let word = &ds.truth.clusters()[0];
    let alpha: Vec<u32> = word[..word.len() / 2].to_vec();
    let idx: Vec<usize> = alpha.iter().map(|&a| a as usize).collect();
    let center = ds.data.centroid(&idx);
    let radius = base.kernel.distance_at(0.4);
    let kernel = base.kernel;
    let mut group = c.benchmark_group("ablation_civs");
    group.bench_function("multi_query_half_word", |b| {
        b.iter(|| black_box(civs(&ds.data, &kernel, &index, &alpha, &center, radius, 800)));
    });
    // Single probe from the first supporting item, same exclusions: pass
    // the probe item first and tombstone-free full alpha via the filter
    // by running civs with alpha but probing one item only — emulated by
    // querying with a one-item support then dropping alpha hits.
    group.bench_function("single_query_one_probe", |b| {
        let single = [alpha[0]];
        b.iter(|| {
            let mut res = civs(&ds.data, &kernel, &index, &single, &center, radius, 800);
            res.psi.retain(|id| !alpha.contains(id));
            black_box(res)
        });
    });
    // Recall comparison (outside the timing loop), identical exclusions.
    let multi = civs(&ds.data, &kernel, &index, &alpha, &center, radius, 800);
    let single = {
        let mut res = civs(&ds.data, &kernel, &index, &[alpha[0]], &center, radius, 800);
        res.psi.retain(|id| !alpha.contains(id));
        res
    };
    eprintln!(
        "[civs ablation] multi-query retrieved {} in-ROI candidates, single probe {}",
        multi.psi.len(),
        single.psi.len()
    );
    group.finish();
}

fn bench_roi_schedule(c: &mut Criterion) {
    // Growing schedule (C=10, θ(c)) vs a single-iteration jump to the
    // first radius estimate: the latter must scan more candidates per
    // iteration on noisy data.
    let ds = workload();
    let base = params_for(&ds);
    let cost = CostModel::shared();
    let index = LshIndex::build(&ds.data, base.lsh, &cost);
    let seed = ds.truth.clusters()[1][0];
    let mut group = c.benchmark_group("ablation_roi_schedule");
    group.bench_function("growing_theta_c10", |b| {
        b.iter(|| black_box(detect_one(&ds.data, &base, &index, seed, &cost)));
    });
    let eager = base.with_iteration_caps(2, base.max_lid_iters);
    group.bench_function("eager_two_iterations", |b| {
        b.iter(|| black_box(detect_one(&ds.data, &eager, &index, seed, &cost)));
    });
    group.finish();
}

/// Bounded measurement so the whole workspace bench suite stays
/// laptop-friendly; pass your own criterion flags to override.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_delta_sweep, bench_civs_queries, bench_roi_schedule
}
criterion_main!(benches);
