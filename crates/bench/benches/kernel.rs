//! Microbenchmarks of the metric/kernel substrate: the innermost hot
//! loop of every method in the workspace.

use alid_affinity::cost::CostModel;
use alid_affinity::dense::DenseAffinity;
use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_affinity::vector::Dataset;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn make_vectors(dim: usize, n: usize) -> Dataset {
    let mut ds = Dataset::with_capacity(dim, n);
    let mut row = vec![0.0; dim];
    for i in 0..n {
        for (d, r) in row.iter_mut().enumerate() {
            *r = ((i * 31 + d * 7) as f64 * 0.013).sin();
        }
        ds.push(&row);
    }
    ds
}

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [32usize, 128, 350] {
        let ds = make_vectors(dim, 2);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("l2", dim), &dim, |b, _| {
            let norm = LpNorm::L2;
            b.iter(|| black_box(norm.distance(ds.get(0), ds.get(1))));
        });
        group.bench_with_input(BenchmarkId::new("l1", dim), &dim, |b, _| {
            let norm = LpNorm::L1;
            b.iter(|| black_box(norm.distance(ds.get(0), ds.get(1))));
        });
    }
    group.finish();
}

fn bench_kernel_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_eval");
    for dim in [128usize, 350] {
        let ds = make_vectors(dim, 2);
        let kernel = LaplacianKernel::l2(0.7);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| black_box(kernel.eval(ds.get(0), ds.get(1))));
        });
    }
    group.finish();
}

fn bench_dense_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_matrix_build");
    group.sample_size(10);
    for n in [200usize, 500] {
        let ds = make_vectors(64, n);
        let kernel = LaplacianKernel::l2(0.7);
        group.throughput(Throughput::Elements((n * n) as u64 / 2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(DenseAffinity::build(&ds, &kernel, CostModel::shared())));
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let n = 1000;
    let ds = make_vectors(64, n);
    let kernel = LaplacianKernel::l2(0.7);
    let a = DenseAffinity::build(&ds, &kernel, CostModel::shared());
    let x = vec![1.0 / n as f64; n];
    let mut out = vec![0.0; n];
    c.bench_function("dense_matvec_1000", |b| {
        b.iter(|| {
            a.matvec(black_box(&x), black_box(&mut out));
        })
    });
}

/// Bounded measurement so the whole workspace bench suite stays
/// laptop-friendly; pass your own criterion flags to override.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_distance, bench_kernel_eval, bench_dense_build, bench_matvec
}
criterion_main!(benches);
