//! End-to-end method comparison on one mid-sized workload: the
//! bench-suite companion of Fig. 7 (one size, all methods).

use alid_bench::runners::{run_alid, run_ap_dense, run_iid_dense, run_palid, run_sea_dense};
use alid_bench::RunCfg;
use alid_data::ndi::ndi_with;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    // 4 duplicate groups of 30 images in 600 noise images.
    let ds = ndi_with(4, 120, 600, 21);
    let cfg = RunCfg::default();
    let mut group = c.benchmark_group("methods_end_to_end_720");
    group.sample_size(10);
    group.bench_function("ALID", |b| b.iter(|| black_box(run_alid(&ds, &cfg))));
    group.bench_function("PALID-4", |b| b.iter(|| black_box(run_palid(&ds, &cfg, 4))));
    group.bench_function("IID", |b| b.iter(|| black_box(run_iid_dense(&ds, &cfg))));
    group.bench_function("SEA", |b| b.iter(|| black_box(run_sea_dense(&ds, &cfg))));
    group.bench_function("AP", |b| b.iter(|| black_box(run_ap_dense(&ds, &cfg))));
    group.finish();
}

/// Bounded measurement so the whole workspace bench suite stays
/// laptop-friendly; pass your own criterion flags to override.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_methods
}
criterion_main!(benches);
