//! Ablation: PALID's LSH-bucket seed sampling (Section 4.6) versus
//! naive uniform random seeds.
//!
//! Bucket sampling starts detections inside dense regions, so the task
//! list is shorter (fewer wasted noise detections) for the same recall
//! of dominant clusters. Work is measured in kernel evaluations via the
//! cost model, alongside wall time.

use alid_affinity::cost::CostModel;
use alid_core::palid::{palid_detect, PalidParams};
use alid_core::seeding::{sample_seeds, sample_seeds_paper};
use alid_core::AlidParams;
use alid_data::metrics::avg_f1;
use alid_data::sift::{sift, SiftConfig};
use alid_lsh::LshIndex;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn workload() -> alid_data::groundtruth::LabeledDataset {
    sift(&SiftConfig { words: 8, word_size: 60, noise: 2_000, seed: 41 })
}

fn params_for(ds: &alid_data::groundtruth::LabeledDataset) -> AlidParams {
    let kernel = ds.suggested_kernel(0.9, 0.35);
    let mut p = AlidParams::new(kernel);
    p.first_roi_radius = kernel.distance_at(0.5);
    p
}

fn bench_seed_sampling(c: &mut Criterion) {
    let ds = workload();
    let params = params_for(&ds);
    let cost = CostModel::shared();
    let index = LshIndex::build(&ds.data, params.lsh, &cost);
    let mut group = c.benchmark_group("ablation_seeding");
    group.bench_function("bucket_sampling", |b| {
        b.iter(|| black_box(sample_seeds_paper(&index, 7)));
    });
    group.bench_function("bucket_sampling_rate_0.5", |b| {
        b.iter(|| black_box(sample_seeds(&index, 6, 0.5, 7)));
    });
    // Report seed-list quality once (outside timing): what fraction of
    // sampled seeds land in true clusters?
    let seeds = sample_seeds_paper(&index, 7);
    let labels = ds.truth.labels();
    let hits = seeds.iter().filter(|&&s| labels[s as usize].is_some()).count();
    eprintln!(
        "[seeding ablation] bucket sampling: {}/{} seeds inside true clusters \
         (corpus is {:.0}% positive)",
        hits,
        seeds.len(),
        100.0 * ds.truth.positive_count() as f64 / ds.len() as f64
    );
    group.finish();
}

fn bench_palid_with_seeding(c: &mut Criterion) {
    let ds = workload();
    let params = params_for(&ds);
    let mut group = c.benchmark_group("ablation_palid_seeding");
    group.sample_size(10);
    group.bench_function("bucket_seeds", |b| {
        b.iter(|| {
            let pp = PalidParams::with_executors(2);
            black_box(palid_detect(&ds.data, &params, &pp, &CostModel::shared()))
        });
    });
    // Quality check (outside timing): bucket seeding must not lose
    // clusters relative to exhaustive seeding.
    let pp = PalidParams::with_executors(2);
    let bucket = palid_detect(&ds.data, &params, &pp, &CostModel::shared());
    let bucket_f = avg_f1(&ds.truth, &bucket.dominant(0.75, 3));
    eprintln!("[seeding ablation] PALID with bucket seeds: AVG-F {bucket_f:.3}");
    group.finish();
}

/// Bounded measurement so the whole workspace bench suite stays
/// laptop-friendly; pass your own criterion flags to override.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_seed_sampling, bench_palid_with_seeding
}
criterion_main!(benches);
