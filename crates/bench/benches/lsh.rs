//! Microbenchmarks of the LSH substrate: index construction and the
//! multi-query retrieval CIVS performs every ALID iteration.

use alid_affinity::cost::CostModel;
use alid_data::sift::{sift, SiftConfig};
use alid_lsh::{LshIndex, LshParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsh_build");
    group.sample_size(10);
    for n in [1_000usize, 5_000] {
        let ds = sift(&SiftConfig::scaled(n, 3));
        let params = LshParams::new(12, 16, 0.8, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(LshIndex::build(&ds.data, params, &CostModel::shared())));
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let ds = sift(&SiftConfig::scaled(10_000, 3));
    let params = LshParams::new(12, 16, 0.8, 7);
    let index = LshIndex::build(&ds.data, params, &CostModel::shared());
    c.bench_function("lsh_single_query_10k", |b| {
        b.iter(|| black_box(index.query(ds.data.get(5))));
    });
    // The CIVS pattern: one query per supporting item of a converged
    // cluster (here: 32 supports).
    let supports: Vec<&[f64]> = (0..32).map(|i| ds.data.get(i * 7)).collect();
    c.bench_function("lsh_civs_multiquery_32x10k", |b| {
        b.iter(|| black_box(index.multi_query(supports.iter().copied())));
    });
}

/// Bounded measurement so the whole workspace bench suite stays
/// laptop-friendly; pass your own criterion flags to override.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_build, bench_query
}
criterion_main!(benches);
