//! Microbenchmarks of the game dynamics: a LID iteration is O(|β|) by
//! design (Algorithm 1); this pins the constant and contrasts a whole
//! localized detection against a full-matrix IID detection.

use alid_affinity::cost::CostModel;
use alid_affinity::dense::DenseAffinity;
use alid_affinity::local::LocalAffinity;
use alid_bench::RunCfg;
use alid_core::lid::{lid_converge, LidState};
use alid_core::{detect_one, AlidParams};
use alid_data::sift::{sift, SiftConfig};
use alid_lsh::LshIndex;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lid_converge(c: &mut Criterion) {
    let mut group = c.benchmark_group("lid_converge");
    for beta in [64usize, 256, 1024] {
        let ds = sift(&SiftConfig { words: 1, word_size: beta / 2, noise: beta / 2, seed: 5 });
        let kernel = ds.suggested_kernel(0.9, 0.35);
        let range: Vec<u32> = (0..ds.len() as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(beta), &beta, |b, _| {
            b.iter(|| {
                let mut aff =
                    LocalAffinity::new(&ds.data, kernel, CostModel::shared(), range.clone());
                let mut state = LidState::from_vertex(&mut aff, 0);
                black_box(lid_converge(&mut aff, &mut state, 5_000, 1e-9))
            });
        });
    }
    group.finish();
}

fn bench_detect_one(c: &mut Criterion) {
    let ds = sift(&SiftConfig { words: 10, word_size: 50, noise: 2_000, seed: 9 });
    let cfg = RunCfg::default();
    let params: AlidParams = cfg.alid_params(&ds);
    let cost = CostModel::shared();
    let index = LshIndex::build(&ds.data, params.lsh, &cost);
    // Seed inside a word vs a noise seed: the local property means the
    // noise detection should be much cheaper.
    let word_seed = ds.truth.clusters()[0][0];
    let labels = ds.truth.labels();
    let noise_seed = (0..ds.len()).find(|&i| labels[i].is_none()).expect("noise exists") as u32;
    c.bench_function("detect_one_word_seed", |b| {
        b.iter(|| black_box(detect_one(&ds.data, &params, &index, word_seed, &cost)));
    });
    c.bench_function("detect_one_noise_seed", |b| {
        b.iter(|| black_box(detect_one(&ds.data, &params, &index, noise_seed, &cost)));
    });
}

fn bench_full_iid_contrast(c: &mut Criterion) {
    use alid_baselines::iid::{iid_converge, IidParams};
    let ds = sift(&SiftConfig { words: 4, word_size: 50, noise: 300, seed: 13 });
    let cfg = RunCfg::default();
    let kernel = cfg.kernel(&ds);
    let graph = DenseAffinity::build(&ds.data, &kernel, CostModel::shared());
    let n = ds.len();
    c.bench_function("iid_converge_full_graph_500", |b| {
        b.iter(|| {
            let alive = vec![true; n];
            let mut x = vec![1.0 / n as f64; n];
            let mut gvec = vec![0.0; n];
            let support: Vec<usize> = (0..n).collect();
            graph.matvec_support(&x, &support, &mut gvec);
            let mut col = vec![0.0; n];
            black_box(iid_converge(
                &graph,
                &alive,
                &mut x,
                &mut gvec,
                &mut col,
                &IidParams::default(),
            ))
        });
    });
}

/// Bounded measurement so the whole workspace bench suite stays
/// laptop-friendly; pass your own criterion flags to override.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_lid_converge, bench_detect_one, bench_full_iid_contrast
}
criterion_main!(benches);
