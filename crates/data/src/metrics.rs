//! The evaluation protocol of Section 5: the Average F1 score (AVG-F).
//!
//! AVG-F averages, over every *true* dominant cluster, the best F1 score
//! any detected cluster achieves against it (the criterion of Chen &
//! Saad that the paper adopts; entropy/NMI are inappropriate because the
//! data are only partially clustered). A higher score means detected
//! clusters deviate less from the truth.

use alid_affinity::clustering::Clustering;

use crate::groundtruth::GroundTruth;

/// `|a ∩ b|` for ascending-sorted id slices.
fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// F1 between one true cluster and one detected cluster (both sorted).
pub fn f1(truth: &[u32], detected: &[u32]) -> f64 {
    if truth.is_empty() || detected.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(truth, detected) as f64;
    if inter == 0.0 {
        return 0.0;
    }
    2.0 * inter / (truth.len() + detected.len()) as f64
}

/// The AVG-F score: mean over true clusters of the best F1 any detected
/// cluster achieves. Returns 0 when the ground truth has no clusters.
pub fn avg_f1(truth: &GroundTruth, clustering: &Clustering) -> f64 {
    let gt = truth.clusters();
    if gt.is_empty() {
        return 0.0;
    }
    let total: f64 = gt
        .iter()
        .map(|t| clustering.clusters.iter().map(|d| f1(t, &d.members)).fold(0.0f64, f64::max))
        .sum();
    total / gt.len() as f64
}

/// One true cluster's best match among the detected clusters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterMatch {
    /// Index of the true cluster.
    pub truth_index: usize,
    /// Size of the true cluster.
    pub truth_size: usize,
    /// Index of the best-matching detected cluster, if any matched at
    /// all.
    pub detected_index: Option<usize>,
    /// The best F1.
    pub f1: f64,
}

/// Per-true-cluster best matches — the breakdown AVG-F averages.
/// Useful for reporting which events/groups a method missed.
pub fn match_report(truth: &GroundTruth, clustering: &Clustering) -> Vec<ClusterMatch> {
    truth
        .clusters()
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let mut best: Option<(usize, f64)> = None;
            for (di, d) in clustering.clusters.iter().enumerate() {
                let score = f1(t, &d.members);
                if score > 0.0 && best.is_none_or(|(_, b)| score > b) {
                    best = Some((di, score));
                }
            }
            ClusterMatch {
                truth_index: ti,
                truth_size: t.len(),
                detected_index: best.map(|(di, _)| di),
                f1: best.map_or(0.0, |(_, s)| s),
            }
        })
        .collect()
}

/// Corpus-level precision and recall of the clustered items against the
/// positive (ground-truth) items: precision = clustered ∩ positive /
/// clustered, recall = clustered ∩ positive / positive. Used for the
/// qualitative visual-word experiment (Fig. 10), where "green points"
/// are true positives and "red points" filtered noise.
pub fn precision_recall(truth: &GroundTruth, clustering: &Clustering) -> (f64, f64) {
    let labels = truth.labels();
    let mut clustered = 0usize;
    let mut hit = 0usize;
    let mut item_seen = vec![false; truth.n()];
    for c in &clustering.clusters {
        for &m in &c.members {
            if !item_seen[m as usize] {
                item_seen[m as usize] = true;
                clustered += 1;
                if labels[m as usize].is_some() {
                    hit += 1;
                }
            }
        }
    }
    let positives = truth.positive_count();
    let precision = if clustered == 0 { 0.0 } else { hit as f64 / clustered as f64 };
    let recall = if positives == 0 { 0.0 } else { hit as f64 / positives as f64 };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::clustering::DetectedCluster;

    fn clustering(n: usize, sets: Vec<Vec<u32>>) -> Clustering {
        let mut c = Clustering::new(n);
        for (i, members) in sets.into_iter().enumerate() {
            c.clusters.push(DetectedCluster::uniform(members, 0.9 - i as f64 * 0.01));
        }
        c
    }

    #[test]
    fn perfect_detection_scores_one() {
        let gt = GroundTruth::new(8, vec![vec![0, 1, 2], vec![4, 5]]);
        let det = clustering(8, vec![vec![0, 1, 2], vec![4, 5]]);
        assert!((avg_f1(&gt, &det) - 1.0).abs() < 1e-12);
        let (p, r) = precision_recall(&gt, &det);
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn missing_cluster_halves_the_score() {
        let gt = GroundTruth::new(8, vec![vec![0, 1, 2], vec![4, 5]]);
        let det = clustering(8, vec![vec![0, 1, 2]]);
        assert!((avg_f1(&gt, &det) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_matches_hand_computation() {
        // truth {0,1,2,3}, detected {2,3,4}: inter 2, F1 = 2*2/(4+3).
        assert!((f1(&[0, 1, 2, 3], &[2, 3, 4]) - 4.0 / 7.0).abs() < 1e-12);
        assert_eq!(f1(&[], &[1]), 0.0);
        assert_eq!(f1(&[1], &[]), 0.0);
        assert_eq!(f1(&[1, 2], &[3, 4]), 0.0);
    }

    #[test]
    fn best_match_is_taken_per_true_cluster() {
        let gt = GroundTruth::new(8, vec![vec![0, 1, 2, 3]]);
        // Two candidates: a sloppy superset and a tight subset.
        let det = clustering(8, vec![vec![0, 1, 2, 3, 4, 5, 6, 7], vec![0, 1, 2]]);
        let superset = f1(&[0, 1, 2, 3], &[0, 1, 2, 3, 4, 5, 6, 7]);
        let subset = f1(&[0, 1, 2, 3], &[0, 1, 2]);
        assert!((avg_f1(&gt, &det) - superset.max(subset)).abs() < 1e-12);
    }

    #[test]
    fn noise_only_detection_scores_zero() {
        let gt = GroundTruth::new(8, vec![vec![0, 1]]);
        let det = clustering(8, vec![vec![5, 6, 7]]);
        assert_eq!(avg_f1(&gt, &det), 0.0);
        let (p, r) = precision_recall(&gt, &det);
        assert_eq!((p, r), (0.0, 0.0));
    }

    #[test]
    fn precision_recall_counts_overlaps_once() {
        let gt = GroundTruth::new(6, vec![vec![0, 1, 2, 3]]);
        // Item 1 claimed by both clusters; item 5 is noise.
        let det = clustering(6, vec![vec![0, 1], vec![1, 2, 5]]);
        let (p, r) = precision_recall(&gt, &det);
        assert!((p - 3.0 / 4.0).abs() < 1e-12); // {0,1,2} of {0,1,2,5}
        assert!((r - 3.0 / 4.0).abs() < 1e-12); // {0,1,2} of {0,1,2,3}
    }

    #[test]
    fn empty_ground_truth_scores_zero() {
        let gt = GroundTruth::new(3, vec![]);
        let det = clustering(3, vec![vec![0]]);
        assert_eq!(avg_f1(&gt, &det), 0.0);
    }

    #[test]
    fn match_report_breaks_down_avg_f() {
        let gt = GroundTruth::new(10, vec![vec![0, 1, 2], vec![5, 6]]);
        let det = clustering(10, vec![vec![0, 1, 2], vec![8, 9]]);
        let report = match_report(&gt, &det);
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].detected_index, Some(0));
        assert!((report[0].f1 - 1.0).abs() < 1e-12);
        assert_eq!(report[1].detected_index, None, "cluster {{5,6}} unmatched");
        assert_eq!(report[1].f1, 0.0);
        // The mean of the report equals AVG-F.
        let mean: f64 = report.iter().map(|m| m.f1).sum::<f64>() / report.len() as f64;
        assert!((mean - avg_f1(&gt, &det)).abs() < 1e-12);
    }
}
