//! NART simulator — the news-articles data set of Section 5.
//!
//! The paper crawled 5 301 articles from news.sina.com.cn: 13 real-world
//! "hot events" contribute 734 articles (the dominant clusters) and the
//! remaining 4 567 are daily news forming no cluster. Each article is a
//! normalised 350-dimensional LDA topic vector.
//!
//! The simulator reproduces that geometry directly in topic space: each
//! hot event is a Dirichlet distribution sharply concentrated on a few
//! topics (highly similar articles about one event), while daily news
//! draws from a flat, weakly concentrated Dirichlet (spread across the
//! topic simplex). Cardinalities match the paper at `scale = 1.0`.

use alid_affinity::vector::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::groundtruth::{assemble_shuffled, LabeledDataset};
use crate::rng::dirichlet;

/// Topic-space dimensionality (the paper's LDA setting).
pub const NART_DIM: usize = 350;
/// Number of hot events.
pub const NART_EVENTS: usize = 13;
/// Ground-truth articles at scale 1.
pub const NART_POSITIVE: usize = 734;
/// Daily-news noise articles at scale 1.
pub const NART_NOISE: usize = 4567;

/// Generates a NART-like corpus at the given `scale` (1.0 reproduces the
/// paper's 5 301 articles; CI uses smaller scales). `noise_override`
/// replaces the scaled noise count when set — the knob the
/// noise-resistance study (Fig. 11) turns.
pub fn nart_with(scale: f64, noise_override: Option<usize>, seed: u64) -> LabeledDataset {
    assert!(scale > 0.0, "scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let positive = ((NART_POSITIVE as f64 * scale).round() as usize).max(NART_EVENTS * 2);
    let noise = noise_override.unwrap_or((NART_NOISE as f64 * scale).round() as usize);

    // Split the positive articles over the 13 events with mild size
    // variation (hot events differ in coverage).
    let sizes = event_sizes(positive, NART_EVENTS, &mut rng);

    // Each event concentrates on 4 dominant topics.
    let mut data = Dataset::with_capacity(NART_DIM, positive + noise);
    let mut clusters = Vec::with_capacity(NART_EVENTS);
    let mut doc = vec![0.0; NART_DIM];
    for (e, &size) in sizes.iter().enumerate() {
        let mut alphas = vec![0.05; NART_DIM];
        for t in 0..4 {
            // Deterministically distinct topic sets per event.
            let topic = (e * 27 + t * 7) % NART_DIM;
            // High concentration: articles about one event are nearly
            // identical in topic space (intra distance ~0.06) — the
            // regime where a tuned kernel keeps noise affinities
            // negligible, matching the paper's real-LDA geometry.
            alphas[topic] = 150.0;
        }
        let mut members = Vec::with_capacity(size);
        for _ in 0..size {
            dirichlet(&mut rng, &alphas, &mut doc);
            members.push(data.len() as u32);
            data.push(&doc);
        }
        clusters.push(members);
    }
    // Daily news: each article emphasises its own few topics, like real
    // LDA posteriors. The total concentration must stay SMALL (α₀ ≈ 4):
    // a large diffuse α₀ would concentrate every draw near the simplex
    // centre, silently turning "noise" into one fuzzy ball — sparse
    // draws land near different simplex faces and are mutually distant.
    let mut alphas = vec![0.004; NART_DIM];
    for _ in 0..noise {
        let bumps: Vec<usize> = (0..5).map(|_| rng.gen_range(0..NART_DIM)).collect();
        for &b in &bumps {
            alphas[b] = 0.5;
        }
        dirichlet(&mut rng, &alphas, &mut doc);
        for &b in &bumps {
            alphas[b] = 0.004;
        }
        data.push(&doc);
    }

    let (data, truth) = assemble_shuffled(data, clusters, &mut rng);
    // Typical intra-event L2 distance (measured on generator output):
    // ~0.06 at concentration 150. Unrelated sparse articles sit ~0.7
    // apart (measured; see the nart_geometry test).
    LabeledDataset {
        name: format!("nart-sim-x{scale}"),
        data,
        truth,
        scale: 0.06,
        noise_scale: 0.7,
    }
}

/// The paper-sized corpus (5 301 articles).
pub fn nart(seed: u64) -> LabeledDataset {
    nart_with(1.0, None, seed)
}

/// Splits `total` into `parts` sizes varying within about 2x of each
/// other, summing exactly to `total`.
fn event_sizes(total: usize, parts: usize, rng: &mut StdRng) -> Vec<usize> {
    let weights: Vec<f64> = (0..parts).map(|_| 1.0 + rng.gen::<f64>()).collect();
    let wsum: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> =
        weights.iter().map(|w| ((w / wsum) * total as f64).floor() as usize).collect();
    // Distribute the rounding remainder; keep every event at >= 2.
    let mut used: usize = sizes.iter().sum();
    let mut i = 0;
    while used < total {
        sizes[i % parts] += 1;
        used += 1;
        i += 1;
    }
    for s in sizes.iter_mut() {
        if *s < 2 {
            *s = 2;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::kernel::LpNorm;

    #[test]
    fn paper_scale_cardinalities() {
        let ds = nart_with(1.0, None, 1);
        assert_eq!(ds.truth.cluster_count(), NART_EVENTS);
        assert_eq!(ds.truth.positive_count(), NART_POSITIVE);
        assert_eq!(ds.truth.noise_count(), NART_NOISE);
        assert_eq!(ds.data.dim(), NART_DIM);
        assert_eq!(ds.len(), 5301);
    }

    #[test]
    fn documents_live_on_the_topic_simplex() {
        let ds = nart_with(0.1, Some(50), 2);
        for row in ds.data.iter().take(100) {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "topic vector must be L1-normalised");
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn events_are_tight_and_distinct() {
        let ds = nart_with(0.2, Some(100), 3);
        let norm = LpNorm::L2;
        let c0 = &ds.truth.clusters()[0];
        let c1 = &ds.truth.clusters()[1];
        let d_intra = norm.distance(ds.data.get(c0[0] as usize), ds.data.get(c0[1] as usize));
        let d_inter = norm.distance(ds.data.get(c0[0] as usize), ds.data.get(c1[0] as usize));
        assert!(
            d_intra * 3.0 < d_inter,
            "same-event articles must be far closer: intra {d_intra:.3} inter {d_inter:.3}"
        );
    }

    #[test]
    fn nart_geometry_noise_is_dispersed() {
        // Regression guard: noise documents must be mutually distant
        // (sparse LDA-like draws), not a fuzzy ball near the simplex
        // centre — otherwise "noise" silently becomes one giant cluster.
        let ds = nart_with(0.15, None, 8);
        let norm = LpNorm::L2;
        let labels = ds.truth.labels();
        let noise: Vec<usize> = (0..ds.len()).filter(|&i| labels[i].is_none()).take(40).collect();
        let mut acc = 0.0;
        let mut count = 0;
        for (a, &i) in noise.iter().enumerate() {
            for &j in &noise[a + 1..] {
                acc += norm.distance(ds.data.get(i), ds.data.get(j));
                count += 1;
            }
        }
        let mean = acc / count as f64;
        assert!(
            mean > 5.0 * ds.scale,
            "noise must be far more spread than clusters: {mean} vs scale {}",
            ds.scale
        );
        assert!(
            (mean - ds.noise_scale).abs() < 0.5 * ds.noise_scale,
            "noise_scale hint {} far from measured {mean}",
            ds.noise_scale
        );
    }

    #[test]
    fn noise_override_sets_noise_degree() {
        let ds = nart_with(0.2, Some(294), 4);
        assert_eq!(ds.truth.noise_count(), 294);
        let degree = ds.truth.noise_degree();
        assert!((degree - 2.0).abs() < 0.05, "noise degree ~2, got {degree}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = nart_with(0.05, Some(20), 9);
        let b = nart_with(0.05, Some(20), 9);
        assert_eq!(a.data, b.data);
        let c = nart_with(0.05, Some(20), 10);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn scale_hint_matches_measured_intra_distance() {
        let ds = nart_with(0.3, Some(10), 5);
        let norm = LpNorm::L2;
        let mut acc = 0.0;
        let mut count = 0;
        for members in ds.truth.clusters() {
            for pair in members.windows(2).take(5) {
                acc += norm.distance(ds.data.get(pair[0] as usize), ds.data.get(pair[1] as usize));
                count += 1;
            }
        }
        let measured = acc / count as f64;
        assert!(
            ds.scale > measured / 3.0 && ds.scale < measured * 3.0,
            "scale hint {} vs measured {measured}",
            ds.scale
        );
    }
}
