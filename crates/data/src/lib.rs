//! Workload generators and evaluation metrics for the ALID reproduction.
//!
//! The paper evaluates on two crawled real-world data sets (NART news
//! articles, NDI near-duplicate images), three synthetic regimes and a
//! 50-million SIFT corpus. The raw crawls are not redistributable, so
//! this crate ships *simulators* that reproduce the geometry the
//! algorithms actually see — tight clusters with the paper's exact
//! cardinalities embedded in diffuse background noise — plus the paper's
//! evaluation protocol (AVG-F over true dominant clusters). DESIGN.md
//! documents each substitution and why it preserves the measured
//! behaviour.
//!
//! * [`synthetic`] — 20 partially-overlapping Gaussians + uniform noise
//!   in the three `a*` regimes of Table 1 (`a* = ωn`, `a* = n^η`,
//!   `a* <= P`);
//! * [`nart`] — 13 "hot event" topic clusters among daily-news noise
//!   (350-d LDA-like Dirichlet vectors, 734 positive / 4 567 noise);
//! * [`ndi`] — 57 near-duplicate image clusters (256-d GIST-like
//!   vectors, 11 951 positive / 97 864 noise) and the Sub-NDI subset
//!   (6 clusters, 1 420 / 8 520);
//! * [`sift`] — L2-normalised 128-d "visual word" clusters on the unit
//!   sphere, size-scalable to stand in for SIFT-50M;
//! * [`metrics`] — the AVG-F score of Section 5 plus precision/recall;
//! * [`rng`] — the sampling primitives (normal, gamma, Dirichlet,
//!   sphere) implemented on top of plain `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod groundtruth;
pub mod io;
pub mod metrics;
pub mod nart;
pub mod ndi;
pub mod rng;
pub mod sift;
pub mod stream;
pub mod synthetic;

pub use groundtruth::{GroundTruth, LabeledDataset};
pub use metrics::{avg_f1, precision_recall};
