//! SIFT visual-word simulator — the SIFT-50M stand-in of Section 5.3.
//!
//! SIFT descriptors are L2-normalised 128-dimensional texture vectors.
//! Partial-duplicate image regions ("KFC grandpa" in Fig. 8/10) yield
//! descriptors that are tiny angular perturbations of a shared
//! direction — a *visual word* — while descriptors from random
//! non-duplicate regions scatter uniformly over the sphere. The
//! simulator plants `words` such direction clusters among `noise`
//! uniform-sphere descriptors, at any size `n`, exercising exactly the
//! code path the 50-million-point Spark experiment exercises (DESIGN.md
//! records the substitution).

use alid_affinity::vector::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::groundtruth::{assemble_shuffled, LabeledDataset};
use crate::rng::{standard_normal, unit_sphere};

/// SIFT dimensionality.
pub const SIFT_DIM: usize = 128;

/// Angular jitter of same-word descriptors (per-coordinate Gaussian
/// sigma before renormalisation).
const JITTER: f64 = 0.015;

/// Configuration of the SIFT workload.
#[derive(Clone, Copy, Debug)]
pub struct SiftConfig {
    /// Number of visual words (dominant clusters).
    pub words: usize,
    /// Descriptors per word.
    pub word_size: usize,
    /// Noise descriptors from non-duplicate regions.
    pub noise: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SiftConfig {
    /// A workload with the SIFT-50M *shape* at a manageable size: 60% of
    /// descriptors are noise, visual words hold ~100 descriptors each.
    pub fn scaled(total: usize, seed: u64) -> Self {
        let positive = (total as f64 * 0.4) as usize;
        let word_size = 100.min(positive.max(4) / 2).max(4);
        let words = (positive / word_size).max(1);
        let noise = total - words * word_size;
        Self { words, word_size, noise, seed }
    }

    /// Total descriptor count.
    pub fn total(&self) -> usize {
        self.words * self.word_size + self.noise
    }
}

/// Generates the labelled descriptor set.
pub fn sift(cfg: &SiftConfig) -> LabeledDataset {
    assert!(cfg.words >= 1 && cfg.word_size >= 2, "degenerate visual words");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut data = Dataset::with_capacity(SIFT_DIM, cfg.total());
    let mut clusters = Vec::with_capacity(cfg.words);
    let mut proto = vec![0.0; SIFT_DIM];
    let mut row = vec![0.0; SIFT_DIM];
    for _w in 0..cfg.words {
        unit_sphere(&mut rng, &mut proto);
        let mut members = Vec::with_capacity(cfg.word_size);
        for _ in 0..cfg.word_size {
            let mut norm2 = 0.0;
            for (r, &p) in row.iter_mut().zip(&proto) {
                let v = p + JITTER * standard_normal(&mut rng);
                *r = v;
                norm2 += v * v;
            }
            let inv = norm2.sqrt().recip();
            for r in row.iter_mut() {
                *r *= inv;
            }
            members.push(data.len() as u32);
            data.push(&row);
        }
        clusters.push(members);
    }
    for _ in 0..cfg.noise {
        unit_sphere(&mut rng, &mut row);
        data.push(&row);
    }
    let (data, truth) = assemble_shuffled(data, clusters, &mut rng);
    // Intra-word distance ~ sqrt(2 * 128) * JITTER.
    let scale = (2.0 * SIFT_DIM as f64).sqrt() * JITTER;
    LabeledDataset {
        name: format!("sift-sim-w{}-s{}-n{}", cfg.words, cfg.word_size, cfg.noise),
        data,
        truth,
        scale,
        // Random unit vectors in high dimension are ~sqrt(2) apart: the
        // sphere bounds how "far" noise can get, so kernels must be
        // calibrated against this too (see LabeledDataset::suggested_kernel).
        noise_scale: std::f64::consts::SQRT_2,
    }
}

/// The partial-duplicate-image scenario of Fig. 10: a handful of shared
/// regions ("KFC grandpa") produce strong visual words, everything else
/// is noise from random regions.
pub fn partial_duplicate_scene(images: usize, seed: u64) -> LabeledDataset {
    // Each shared region appears in every image and contributes one
    // descriptor per image; 8 shared regions; each image also carries
    // 24 random-region descriptors.
    let cfg = SiftConfig { words: 8, word_size: images.max(4), noise: images * 24, seed };
    let mut ds = sift(&cfg);
    ds.name = format!("partial-duplicates-{images}imgs");
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::kernel::LpNorm;

    #[test]
    fn descriptors_are_unit_normalised() {
        let ds = sift(&SiftConfig { words: 3, word_size: 10, noise: 20, seed: 1 });
        for row in ds.data.iter() {
            let n: f64 = row.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn words_are_tight_noise_is_spread() {
        let ds = sift(&SiftConfig { words: 2, word_size: 20, noise: 50, seed: 2 });
        let norm = LpNorm::L2;
        let w = &ds.truth.clusters()[0];
        let intra = norm.distance(ds.data.get(w[0] as usize), ds.data.get(w[1] as usize));
        // Random unit vectors in high dimension are ~sqrt(2) apart.
        let labels = ds.truth.labels();
        let noise: Vec<usize> = (0..ds.len()).filter(|&i| labels[i].is_none()).collect();
        let inter = norm.distance(ds.data.get(noise[0]), ds.data.get(noise[1]));
        assert!(intra < 0.5, "intra-word distance {intra}");
        assert!(inter > 1.0, "noise distance {inter}");
    }

    #[test]
    fn scaled_config_adds_up() {
        let cfg = SiftConfig::scaled(10_000, 3);
        assert_eq!(cfg.total(), 10_000);
        let ds = sift(&cfg);
        assert_eq!(ds.len(), 10_000);
        let frac = ds.truth.positive_count() as f64 / ds.len() as f64;
        assert!((0.3..=0.5).contains(&frac), "positive fraction {frac}");
    }

    #[test]
    fn partial_duplicate_scene_shape() {
        let ds = partial_duplicate_scene(50, 4);
        assert_eq!(ds.truth.cluster_count(), 8);
        assert_eq!(ds.truth.positive_count(), 8 * 50);
        assert_eq!(ds.truth.noise_count(), 50 * 24);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SiftConfig { words: 2, word_size: 5, noise: 10, seed: 7 };
        assert_eq!(sift(&cfg).data, sift(&cfg).data);
    }
}
