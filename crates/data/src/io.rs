//! Dataset and ground-truth persistence.
//!
//! A downstream user brings their own vectors; this module gives the
//! library a stable on-disk interchange so experiments are replayable:
//!
//! * **CSV** — one row per item, plain `f64` columns, for interop with
//!   anything;
//! * **ALBD** ("ALID binary data") — a little-endian binary format with
//!   the ground truth embedded, for fast exact round-trips of simulator
//!   outputs.
//!
//! ALBD layout: magic `ALBD`, u32 version, u64 n, u32 dim, the row-major
//! `f64` payload, u32 cluster count, then per cluster a u32 length and
//! the member ids, then the f64 scale hints.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use alid_affinity::vector::Dataset;

use crate::groundtruth::{GroundTruth, LabeledDataset};

const MAGIC: &[u8; 4] = b"ALBD";
const VERSION: u32 = 1;

/// Writes `ds` as headerless CSV (one item per row).
pub fn write_csv(path: &Path, ds: &Dataset) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    let mut line = String::new();
    for row in ds.iter() {
        line.clear();
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{v}"));
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    out.flush()
}

/// Reads a headerless CSV of `f64` columns.
///
/// # Errors
/// Fails on ragged rows, empty files or non-numeric cells.
pub fn read_csv(path: &Path) -> io::Result<Dataset> {
    let reader = BufReader::new(File::open(path)?);
    let mut ds: Option<Dataset> = None;
    let mut row: Vec<f64> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        row.clear();
        for cell in line.split(',') {
            let v: f64 = cell.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad float {cell:?}: {e}", lineno + 1),
                )
            })?;
            row.push(v);
        }
        match &mut ds {
            None => {
                let mut d = Dataset::new(row.len());
                d.push(&row);
                ds = Some(d);
            }
            Some(d) => {
                if row.len() != d.dim() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {}: {} columns, expected {}", lineno + 1, row.len(), d.dim()),
                    ));
                }
                d.push(&row);
            }
        }
    }
    ds.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))
}

/// Writes a labelled data set in the ALBD binary format.
pub fn write_albd(path: &Path, ds: &LabeledDataset) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(ds.len() as u64).to_le_bytes())?;
    out.write_all(&(ds.data.dim() as u32).to_le_bytes())?;
    for v in ds.data.as_flat() {
        out.write_all(&v.to_le_bytes())?;
    }
    let clusters = ds.truth.clusters();
    out.write_all(&(clusters.len() as u32).to_le_bytes())?;
    for members in clusters {
        out.write_all(&(members.len() as u32).to_le_bytes())?;
        for &m in members {
            out.write_all(&m.to_le_bytes())?;
        }
    }
    out.write_all(&ds.scale.to_le_bytes())?;
    out.write_all(&ds.noise_scale.to_le_bytes())?;
    out.flush()
}

/// Reads an ALBD file back; the name is taken from the file stem.
///
/// # Errors
/// Fails on bad magic, version, truncation or out-of-range members.
pub fn read_albd(path: &Path) -> io::Result<LabeledDataset> {
    let mut input = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an ALBD file"));
    }
    let version = read_u32(&mut input)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported ALBD version {version}"),
        ));
    }
    let n = read_u64(&mut input)? as usize;
    let dim = read_u32(&mut input)? as usize;
    if dim == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "zero dimensionality"));
    }
    let mut flat = vec![0.0f64; n * dim];
    let mut buf = [0u8; 8];
    for v in flat.iter_mut() {
        input.read_exact(&mut buf)?;
        *v = f64::from_le_bytes(buf);
    }
    let data = Dataset::from_flat(dim, flat);
    let cluster_count = read_u32(&mut input)? as usize;
    let mut clusters = Vec::with_capacity(cluster_count);
    for _ in 0..cluster_count {
        let len = read_u32(&mut input)? as usize;
        let mut members = Vec::with_capacity(len);
        for _ in 0..len {
            let m = read_u32(&mut input)?;
            if m as usize >= n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("member {m} out of range {n}"),
                ));
            }
            members.push(m);
        }
        clusters.push(members);
    }
    input.read_exact(&mut buf)?;
    let scale = f64::from_le_bytes(buf);
    input.read_exact(&mut buf)?;
    let noise_scale = f64::from_le_bytes(buf);
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "albd".to_string());
    Ok(LabeledDataset { name, data, truth: GroundTruth::new(n, clusters), scale, noise_scale })
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndi::ndi_with;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("alid-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_roundtrip_preserves_values() {
        let ds = Dataset::from_flat(3, vec![1.5, -2.25, 0.0, 1e-9, 4.0, 1e12]);
        let path = tmp("roundtrip.csv");
        write_csv(&path, &ds).expect("write");
        let back = read_csv(&path).expect("read");
        assert_eq!(back.dim(), 3);
        assert_eq!(back.len(), 2);
        for (a, b) in ds.as_flat().iter().zip(back.as_flat()) {
            assert!((a - b).abs() <= a.abs() * 1e-15);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let path = tmp("ragged.csv");
        std::fs::write(&path, "1,2,3\n4,5\n").expect("write");
        assert!(read_csv(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn csv_rejects_garbage() {
        let path = tmp("garbage.csv");
        std::fs::write(&path, "1,two,3\n").expect("write");
        assert!(read_csv(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn albd_roundtrip_is_exact() {
        let ds = ndi_with(3, 24, 40, 5);
        let path = tmp("roundtrip.albd");
        write_albd(&path, &ds).expect("write");
        let back = read_albd(&path).expect("read");
        assert_eq!(back.data, ds.data);
        assert_eq!(back.truth, ds.truth);
        assert_eq!(back.scale, ds.scale);
        assert_eq!(back.noise_scale, ds.noise_scale);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn albd_rejects_bad_magic() {
        let path = tmp("bad.albd");
        std::fs::write(&path, b"NOPE0000000").expect("write");
        assert!(read_albd(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn albd_rejects_truncation() {
        let ds = ndi_with(2, 10, 10, 6);
        let path = tmp("trunc.albd");
        write_albd(&path, &ds).expect("write");
        let bytes = std::fs::read(&path).expect("read bytes");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(read_albd(&path).is_err());
        let _ = std::fs::remove_file(path);
    }
}
