//! Sampling primitives on top of `rand`'s uniform source.
//!
//! The approved dependency set has `rand` but not `rand_distr`, so the
//! handful of distributions the simulators need live here: Box–Muller
//! normals, Marsaglia–Tsang gammas, Dirichlet vectors and uniform
//! directions on the sphere.

use rand::rngs::StdRng;
use rand::Rng;

/// One standard-normal draw (Box–Muller; the sine half is discarded,
/// which keeps the generator stateless).
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Normal draw with the given mean and standard deviation.
///
/// # Panics
/// Panics if `sigma < 0`.
pub fn normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "standard deviation must be non-negative");
    mu + sigma * standard_normal(rng)
}

/// Gamma(shape, 1) via Marsaglia & Tsang's squeeze method, with the
/// standard `shape < 1` boosting trick.
///
/// # Panics
/// Panics unless `shape > 0`.
pub fn gamma(rng: &mut StdRng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v3;
        }
        if u.max(f64::MIN_POSITIVE).ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Fills `out` with one draw from `Dirichlet(alphas)` (normalised gamma
/// draws).
///
/// # Panics
/// Panics if lengths differ or any `alpha <= 0`.
pub fn dirichlet(rng: &mut StdRng, alphas: &[f64], out: &mut [f64]) {
    assert_eq!(alphas.len(), out.len(), "alpha/output length mismatch");
    let mut sum = 0.0;
    for (o, &a) in out.iter_mut().zip(alphas) {
        let g = gamma(rng, a);
        *o = g;
        sum += g;
    }
    if sum <= 0.0 {
        // All-zero pathologies (tiny alphas underflowing): fall back to
        // the uniform centre of the simplex.
        let u = 1.0 / out.len() as f64;
        out.fill(u);
        return;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Fills `out` with a uniformly random direction on the unit sphere.
pub fn unit_sphere(rng: &mut StdRng, out: &mut [f64]) {
    loop {
        let mut norm2 = 0.0;
        for o in out.iter_mut() {
            let g = standard_normal(rng);
            *o = g;
            norm2 += g * g;
        }
        if norm2 > 1e-12 {
            let inv = norm2.sqrt().recip();
            for o in out.iter_mut() {
                *o *= inv;
            }
            return;
        }
    }
}

/// Fisher–Yates shuffle (thin wrapper so the simulators do not need the
/// `rand` trait imports everywhere).
pub fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = rng();
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut r, 2.0, 3.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng();
        for &shape in &[0.5, 1.0, 2.5, 9.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| gamma(&mut r, shape)).sum::<f64>() / n as f64;
            assert!((mean - shape).abs() < 0.12 * shape.max(1.0), "shape {shape}: mean {mean}");
        }
    }

    #[test]
    fn gamma_draws_are_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(gamma(&mut r, 0.3) > 0.0);
        }
    }

    #[test]
    fn dirichlet_lands_on_the_simplex() {
        let mut r = rng();
        let alphas = vec![0.5, 2.0, 5.0, 0.1];
        let mut out = vec![0.0; 4];
        for _ in 0..200 {
            dirichlet(&mut r, &alphas, &mut out);
            let s: f64 = out.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(out.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn dirichlet_concentrates_with_large_alpha() {
        let mut r = rng();
        let k = 10;
        let tight = vec![200.0; k];
        let loose = vec![0.2; k];
        let mut out = vec![0.0; k];
        let spread = |alphas: &[f64], r: &mut StdRng, out: &mut [f64]| {
            let mut acc = 0.0;
            for _ in 0..100 {
                dirichlet(r, alphas, out);
                acc += out.iter().map(|&v| (v - 1.0 / k as f64).abs()).sum::<f64>();
            }
            acc
        };
        let t = spread(&tight, &mut r, &mut out);
        let l = spread(&loose, &mut r, &mut out);
        assert!(t < l / 3.0, "tight {t} vs loose {l}");
    }

    #[test]
    fn sphere_samples_have_unit_norm() {
        let mut r = rng();
        let mut v = vec![0.0; 64];
        for _ in 0..50 {
            unit_sphere(&mut r, &mut v);
            let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sphere_mean_is_near_zero() {
        let mut r = rng();
        let dim = 16;
        let mut acc = vec![0.0; dim];
        let mut v = vec![0.0; dim];
        let n = 5000;
        for _ in 0..n {
            unit_sphere(&mut r, &mut v);
            for (a, &x) in acc.iter_mut().zip(&v) {
                *a += x;
            }
        }
        for a in &acc {
            assert!((a / n as f64).abs() < 0.05);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut r, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
