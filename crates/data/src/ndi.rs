//! NDI simulator — the near-duplicate-image data set of Section 5.
//!
//! The paper's NDI corpus holds 109 815 images crawled from Google
//! Images: 57 labelled groups of near-duplicates (11 951 images) in
//! 97 864 images of diverse content, each represented by a
//! 256-dimensional GIST descriptor. Sub-NDI (Section 5.1) is the subset
//! with 6 clusters, 1 420 ground-truth and 8 520 noise images.
//!
//! Near-duplicates share global texture, so their GIST vectors are tiny
//! perturbations of a common prototype; unrelated images are essentially
//! independent draws over descriptor space. The simulator reproduces
//! exactly that: cluster = prototype + small Gaussian jitter (clamped to
//! the GIST range `[0, 1]`), noise = independent uniform descriptors.

use alid_affinity::vector::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::groundtruth::{assemble_shuffled, LabeledDataset};
use crate::rng::normal;

/// GIST descriptor dimensionality.
pub const NDI_DIM: usize = 256;
/// Clusters / positives / noise of the full NDI at scale 1.
pub const NDI_CLUSTERS: usize = 57;
/// Ground-truth images at scale 1.
pub const NDI_POSITIVE: usize = 11_951;
/// Noise images at scale 1.
pub const NDI_NOISE: usize = 97_864;
/// Sub-NDI cardinalities (Section 5.1).
pub const SUB_NDI_CLUSTERS: usize = 6;
/// Sub-NDI ground-truth images.
pub const SUB_NDI_POSITIVE: usize = 1_420;
/// Sub-NDI noise images.
pub const SUB_NDI_NOISE: usize = 8_520;

/// Per-coordinate jitter of near-duplicate descriptors.
const JITTER: f64 = 0.02;

/// Generates an NDI-like corpus with explicit cardinalities.
pub fn ndi_with(clusters: usize, positive: usize, noise: usize, seed: u64) -> LabeledDataset {
    assert!(clusters >= 1 && positive >= 2 * clusters, "need >= 2 images per cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::with_capacity(NDI_DIM, positive + noise);
    let mut members_of = Vec::with_capacity(clusters);
    let base = positive / clusters;
    let mut remainder = positive - base * clusters;
    let mut row = vec![0.0; NDI_DIM];
    for _c in 0..clusters {
        let size = base + usize::from(remainder > 0);
        remainder = remainder.saturating_sub(1);
        // Prototype GIST: uniform in [0,1]^256.
        let proto: Vec<f64> = (0..NDI_DIM).map(|_| rng.gen::<f64>()).collect();
        let mut members = Vec::with_capacity(size);
        for _ in 0..size {
            for (r, &p) in row.iter_mut().zip(&proto) {
                *r = (p + normal(&mut rng, 0.0, JITTER)).clamp(0.0, 1.0);
            }
            members.push(data.len() as u32);
            data.push(&row);
        }
        members_of.push(members);
    }
    for _ in 0..noise {
        for r in row.iter_mut() {
            *r = rng.gen::<f64>();
        }
        data.push(&row);
    }
    let (data, truth) = assemble_shuffled(data, members_of, &mut rng);
    // Intra-cluster distance ~ sqrt(2 * 256) * JITTER.
    let scale = (2.0 * NDI_DIM as f64).sqrt() * JITTER;
    // Two independent uniform [0,1]^256 descriptors: E||a-b||^2 = d/6.
    let noise_scale = (NDI_DIM as f64 / 6.0).sqrt();
    LabeledDataset {
        name: format!("ndi-sim-c{clusters}-p{positive}-n{noise}"),
        data,
        truth,
        scale,
        noise_scale,
    }
}

/// The full NDI at a fractional `scale` (1.0 = 109 815 images).
pub fn ndi(scale: f64, seed: u64) -> LabeledDataset {
    assert!(scale > 0.0, "scale must be positive");
    let clusters = ((NDI_CLUSTERS as f64 * scale).round() as usize).clamp(1, NDI_CLUSTERS);
    let positive = ((NDI_POSITIVE as f64 * scale).round() as usize).max(2 * clusters);
    let noise = (NDI_NOISE as f64 * scale).round() as usize;
    let mut ds = ndi_with(clusters, positive, noise, seed);
    ds.name = format!("ndi-sim-x{scale}");
    ds
}

/// Sub-NDI (Section 5.1), with `noise_override` for the Fig. 11 noise
/// sweep.
pub fn sub_ndi(scale: f64, noise_override: Option<usize>, seed: u64) -> LabeledDataset {
    assert!(scale > 0.0, "scale must be positive");
    let positive = ((SUB_NDI_POSITIVE as f64 * scale).round() as usize).max(2 * SUB_NDI_CLUSTERS);
    let noise = noise_override.unwrap_or((SUB_NDI_NOISE as f64 * scale).round() as usize);
    let mut ds = ndi_with(SUB_NDI_CLUSTERS, positive, noise, seed);
    ds.name = format!("sub-ndi-sim-x{scale}");
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::kernel::LpNorm;

    #[test]
    fn sub_ndi_matches_section_5_1() {
        let ds = sub_ndi(1.0, None, 1);
        assert_eq!(ds.truth.cluster_count(), SUB_NDI_CLUSTERS);
        assert_eq!(ds.truth.positive_count(), SUB_NDI_POSITIVE);
        assert_eq!(ds.truth.noise_count(), SUB_NDI_NOISE);
        assert_eq!(ds.len(), 9_940);
    }

    #[test]
    fn descriptors_stay_in_gist_range() {
        let ds = ndi_with(3, 30, 30, 2);
        for row in ds.data.iter() {
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn duplicates_are_near_and_noise_is_far() {
        let ds = ndi_with(4, 40, 40, 3);
        let norm = LpNorm::L2;
        let c0 = &ds.truth.clusters()[0];
        let intra = norm.distance(ds.data.get(c0[0] as usize), ds.data.get(c0[1] as usize));
        let labels = ds.truth.labels();
        let noise: Vec<usize> = (0..ds.len()).filter(|&i| labels[i].is_none()).collect();
        let inter = norm.distance(ds.data.get(noise[0]), ds.data.get(noise[1]));
        assert!(
            intra * 5.0 < inter,
            "near-duplicates {intra:.3} must be far tighter than noise {inter:.3}"
        );
        assert!(ds.scale > intra * 0.3 && ds.scale < intra * 3.0);
    }

    #[test]
    fn cluster_sizes_sum_to_positive() {
        let ds = ndi_with(7, 100, 10, 4);
        let sum: usize = ds.truth.clusters().iter().map(Vec::len).sum();
        assert_eq!(sum, 100);
        // Sizes differ by at most one.
        let min = ds.truth.clusters().iter().map(Vec::len).min().unwrap();
        let max = ds.truth.clusters().iter().map(Vec::len).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn fractional_scale_shrinks_everything() {
        let ds = ndi(0.01, 5);
        assert!(ds.len() < 1_200);
        assert!(ds.truth.cluster_count() >= 1);
    }

    #[test]
    fn noise_override_applies() {
        let ds = sub_ndi(0.1, Some(7), 6);
        assert_eq!(ds.truth.noise_count(), 7);
    }
}
