//! Timestamped stream scenarios for the online-ALID extension.
//!
//! The paper's future-work section targets streaming sources (Section 6).
//! This generator emits an *ordered* sequence of items where dominant
//! clusters are temporal bursts — a hot event breaks, produces a run of
//! highly similar items over a window, and fades — interleaved with
//! background noise, plus the ground truth of which arrival belongs to
//! which burst.

use alid_affinity::vector::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::groundtruth::GroundTruth;
use crate::rng::{normal, standard_normal};

/// One burst specification.
#[derive(Clone, Copy, Debug)]
pub struct Burst {
    /// Arrival index at which the burst starts.
    pub start: usize,
    /// Number of burst items.
    pub size: usize,
    /// Mean gap (in arrivals) between consecutive burst items; the gaps
    /// are filled with noise.
    pub spacing: usize,
}

/// Stream generator configuration.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Feature dimensionality.
    pub dim: usize,
    /// Total arrivals.
    pub total: usize,
    /// The bursts (must fit into `total`).
    pub bursts: Vec<Burst>,
    /// Within-burst jitter (std-dev per coordinate).
    pub jitter: f64,
    /// Half-width of the uniform noise box.
    pub noise_span: f64,
    /// RNG seed.
    pub seed: u64,
}

impl StreamConfig {
    /// A two-burst default scenario.
    pub fn two_bursts(seed: u64) -> Self {
        Self {
            dim: 16,
            total: 120,
            bursts: vec![
                Burst { start: 20, size: 12, spacing: 2 },
                Burst { start: 70, size: 12, spacing: 2 },
            ],
            jitter: 0.05,
            noise_span: 25.0,
            seed,
        }
    }
}

/// The generated stream: items in arrival order plus ground truth
/// (burst index per item).
#[derive(Clone, Debug)]
pub struct StreamScenario {
    /// Items in arrival order.
    pub data: Dataset,
    /// Which burst each arrival belongs to (`None` = noise).
    pub burst_of: Vec<Option<usize>>,
    /// Ground truth as clusters over arrival indices.
    pub truth: GroundTruth,
    /// Typical intra-burst distance (kernel calibration hint).
    pub scale: f64,
}

/// Generates the scenario.
///
/// # Panics
/// Panics if a burst does not fit into `total` arrivals.
pub fn generate_stream(cfg: &StreamConfig) -> StreamScenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Burst centres far apart relative to jitter and inside the noise box.
    let centers: Vec<Vec<f64>> = (0..cfg.bursts.len())
        .map(|_| (0..cfg.dim).map(|_| (rng.gen::<f64>() - 0.5) * cfg.noise_span).collect())
        .collect();
    // Schedule: arrival index -> burst id.
    let mut slots: Vec<Option<usize>> = vec![None; cfg.total];
    for (b, burst) in cfg.bursts.iter().enumerate() {
        let mut t = burst.start;
        for _ in 0..burst.size {
            assert!(t < cfg.total, "burst {b} overruns the stream");
            // First free slot at or after t.
            let slot =
                (t..cfg.total).find(|&u| slots[u].is_none()).expect("burst overruns the stream");
            slots[slot] = Some(b);
            t = slot + 1 + rng.gen_range(0..=burst.spacing);
        }
    }
    let mut data = Dataset::with_capacity(cfg.dim, cfg.total);
    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); cfg.bursts.len()];
    let mut row = vec![0.0; cfg.dim];
    for (t, slot) in slots.iter().enumerate() {
        match slot {
            Some(b) => {
                for (r, &c) in row.iter_mut().zip(&centers[*b]) {
                    *r = c + normal(&mut rng, 0.0, cfg.jitter);
                }
                clusters[*b].push(t as u32);
            }
            None => {
                for r in row.iter_mut() {
                    *r = standard_normal(&mut rng) * cfg.noise_span;
                }
            }
        }
        data.push(&row);
    }
    let truth = GroundTruth::new(cfg.total, clusters);
    let scale = cfg.jitter * (2.0 * cfg.dim as f64).sqrt();
    StreamScenario { data, burst_of: slots, truth, scale }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_shape() {
        let sc = generate_stream(&StreamConfig::two_bursts(3));
        assert_eq!(sc.data.len(), 120);
        assert_eq!(sc.truth.cluster_count(), 2);
        assert_eq!(sc.truth.positive_count(), 24);
        assert_eq!(sc.burst_of.iter().flatten().count(), 24);
    }

    #[test]
    fn bursts_are_temporally_localized() {
        let sc = generate_stream(&StreamConfig::two_bursts(5));
        let b0 = &sc.truth.clusters()[0];
        let b1 = &sc.truth.clusters()[1];
        // Burst 0 ends before burst 1 begins (disjoint windows here).
        assert!(b0.iter().max() < b1.iter().min());
        // A burst's arrivals span a window not much larger than
        // size * (1 + spacing).
        let span = (b0[b0.len() - 1] - b0[0]) as usize;
        assert!(span <= 12 * 4, "burst too spread: {span}");
    }

    #[test]
    fn burst_items_are_tight_noise_is_not() {
        let sc = generate_stream(&StreamConfig::two_bursts(7));
        let norm = alid_affinity::kernel::LpNorm::L2;
        let b0 = &sc.truth.clusters()[0];
        let intra = norm.distance(sc.data.get(b0[0] as usize), sc.data.get(b0[1] as usize));
        assert!(intra < sc.scale * 3.0, "intra {intra} vs scale {}", sc.scale);
        let noise: Vec<usize> =
            (0..sc.data.len()).filter(|&i| sc.burst_of[i].is_none()).take(2).collect();
        let inter = norm.distance(sc.data.get(noise[0]), sc.data.get(noise[1]));
        assert!(inter > sc.scale * 10.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_stream(&StreamConfig::two_bursts(11));
        let b = generate_stream(&StreamConfig::two_bursts(11));
        assert_eq!(a.data, b.data);
        assert_eq!(a.burst_of, b.burst_of);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn overrunning_burst_panics() {
        let mut cfg = StreamConfig::two_bursts(1);
        cfg.bursts[1].start = 118; // 12 items cannot fit
        let _ = generate_stream(&cfg);
    }
}
