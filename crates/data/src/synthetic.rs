//! The synthetic benchmark family of Section 5.2.
//!
//! `n` 100-dimensional items are sampled from 20 multivariate Gaussians
//! (the dominant clusters) plus one surrounding uniform distribution
//! (the noise). Some Gaussian means are deliberately placed close
//! together so clusters partially overlap, and every cluster gets its
//! own diagonal covariance with entries in `[0, cov_max]` — both
//! properties the paper calls out. The three regimes of Table 1 control
//! how the largest-cluster size `a*` grows with `n`:
//!
//! * `a* = ω n / 20` — clean sources (positive data is a constant
//!   fraction of the stream);
//! * `a* = n^η / 20` — noisy sources where noise grows faster than
//!   signal;
//! * `a* = P / 20` — size-capped clusters (Dunbar-number-style bounds).

use alid_affinity::vector::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::groundtruth::{GroundTruth, LabeledDataset};
use crate::rng::{normal, shuffle};

/// How the per-cluster ground-truth size scales with `n` (Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Regime {
    /// `a* = ω n / 20` with `ω <= 1`.
    Proportional {
        /// The constant fraction `ω`.
        omega: f64,
    },
    /// `a* = n^η / 20` with `η < 1`.
    Sublinear {
        /// The growth exponent `η`.
        eta: f64,
    },
    /// `a* = P / 20` regardless of `n`.
    Bounded {
        /// The cap `P`.
        p: usize,
    },
}

impl Regime {
    /// Members per cluster at data-set size `n` (the paper divides by
    /// the cluster count 20, which "does not affect the complexity").
    pub fn cluster_size(&self, n: usize, clusters: usize) -> usize {
        let per = match *self {
            Regime::Proportional { omega } => omega * n as f64 / clusters as f64,
            Regime::Sublinear { eta } => (n as f64).powf(eta) / clusters as f64,
            Regime::Bounded { p } => p as f64 / clusters as f64,
        };
        // At least 2 so a cluster is a cluster; never more than n/clusters.
        (per.round() as usize).clamp(2, (n / clusters).max(2))
    }

    /// Short tag used by the experiment harness ("omega", "eta", "P").
    pub fn tag(&self) -> &'static str {
        match self {
            Regime::Proportional { .. } => "omega",
            Regime::Sublinear { .. } => "eta",
            Regime::Bounded { .. } => "P",
        }
    }
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Total items `n`.
    pub n: usize,
    /// Feature dimensionality (paper: 100).
    pub dim: usize,
    /// Number of Gaussian clusters (paper: 20).
    pub clusters: usize,
    /// The `a*` regime.
    pub regime: Regime,
    /// Upper bound of the diagonal covariance entries (paper: 10).
    pub cov_max: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's configuration for a given size and regime
    /// (`dim = 100`, 20 clusters, covariances in `[0, 10]`).
    pub fn paper(n: usize, regime: Regime, seed: u64) -> Self {
        Self { n, dim: 100, clusters: 20, regime, cov_max: 10.0, seed }
    }
}

/// Generates the labelled data set.
///
/// # Panics
/// Panics if the configuration is degenerate (zero clusters/dim, or `n`
/// too small to hold 2 members per cluster).
pub fn generate(cfg: &SyntheticConfig) -> LabeledDataset {
    assert!(cfg.clusters >= 1 && cfg.dim >= 1, "degenerate configuration");
    assert!(
        cfg.n >= 2 * cfg.clusters,
        "n = {} cannot hold {} clusters of >= 2 items",
        cfg.n,
        cfg.clusters
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let per_cluster = cfg.regime.cluster_size(cfg.n, cfg.clusters);
    let positive = per_cluster * cfg.clusters;
    let noise = cfg.n - positive;

    // Cluster means: uniform in [0, L]^d, with consecutive pairs pulled
    // together so some clusters partially overlap (the paper varies the
    // overlap by setting mean vectors close to each other). The box side
    // is sized so that typical inter-mean distance comfortably exceeds
    // the intra-cluster spread sqrt(2 * d * cov_max / 2).
    let spread = (2.0 * cfg.dim as f64 * cfg.cov_max / 2.0).sqrt();
    let side = 3.0 * spread / (cfg.dim as f64).sqrt() * 4.0;
    let mut means: Vec<Vec<f64>> = (0..cfg.clusters)
        .map(|_| (0..cfg.dim).map(|_| rng.gen::<f64>() * side).collect())
        .collect();
    for pair in (0..cfg.clusters.saturating_sub(1)).step_by(4) {
        // Every other pair of clusters overlaps: second mean = first +
        // a nudge of about one intra-cluster spread.
        let base = means[pair].clone();
        let nudged: Vec<f64> = base
            .iter()
            .map(|&m| m + normal(&mut rng, 0.0, spread / (cfg.dim as f64).sqrt()))
            .collect();
        means[pair + 1] = nudged;
    }
    // Per-cluster diagonal standard deviations: variance entries uniform
    // in [0, cov_max].
    let stds: Vec<Vec<f64>> = (0..cfg.clusters)
        .map(|_| (0..cfg.dim).map(|_| (rng.gen::<f64>() * cfg.cov_max).sqrt()).collect())
        .collect();

    let mut data = Dataset::with_capacity(cfg.dim, cfg.n);
    let mut clusters: Vec<Vec<u32>> = Vec::with_capacity(cfg.clusters);
    let mut row = vec![0.0; cfg.dim];
    for c in 0..cfg.clusters {
        let mut members = Vec::with_capacity(per_cluster);
        for _ in 0..per_cluster {
            for ((r, &m), &s) in row.iter_mut().zip(&means[c]).zip(&stds[c]) {
                *r = normal(&mut rng, m, s);
            }
            members.push(data.len() as u32);
            data.push(&row);
        }
        clusters.push(members);
    }
    // Surrounding uniform noise: a box inflated beyond the mean box by
    // one spread on each side.
    let lo = -spread;
    let hi = side + spread;
    for _ in 0..noise {
        for r in row.iter_mut() {
            *r = lo + rng.gen::<f64>() * (hi - lo);
        }
        data.push(&row);
    }

    // Shuffle item order so cluster members are not contiguous.
    let mut perm: Vec<u32> = (0..cfg.n as u32).collect();
    shuffle(&mut rng, &mut perm);
    // perm[new_pos] = old_id; build old -> new for the ground truth.
    let mut old_to_new = vec![0u32; cfg.n];
    for (new_pos, &old_id) in perm.iter().enumerate() {
        old_to_new[old_id as usize] = new_pos as u32;
    }
    let shuffled_idx: Vec<usize> = perm.iter().map(|&i| i as usize).collect();
    let data = data.subset(&shuffled_idx);
    let truth = GroundTruth::new(cfg.n, clusters).permuted(&old_to_new);

    // Typical intra-cluster distance: E||a - b||^2 = 2 * sum(var) with
    // average variance cov_max / 2 per dimension.
    let scale = (2.0 * cfg.dim as f64 * cfg.cov_max / 2.0).sqrt();
    // Noise is uniform over the inflated box: E||a-b||^2 = d*(hi-lo)^2/6.
    let noise_scale = ((cfg.dim as f64) * (hi - lo) * (hi - lo) / 6.0).sqrt();
    LabeledDataset {
        name: format!("synthetic-{}-n{}", cfg.regime.tag(), cfg.n),
        data,
        truth,
        scale,
        noise_scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::kernel::LpNorm;

    #[test]
    fn regime_sizes_match_table_1() {
        let prop = Regime::Proportional { omega: 1.0 };
        assert_eq!(prop.cluster_size(2000, 20), 100);
        let sub = Regime::Sublinear { eta: 0.9 };
        assert_eq!(sub.cluster_size(10_000, 20), ((10_000f64).powf(0.9) / 20.0).round() as usize);
        let cap = Regime::Bounded { p: 1000 };
        assert_eq!(cap.cluster_size(100_000, 20), 50);
        assert_eq!(cap.cluster_size(2_000, 20), 50);
    }

    #[test]
    fn generates_requested_counts() {
        let cfg = SyntheticConfig::paper(2_000, Regime::Proportional { omega: 0.5 }, 1);
        let ds = generate(&cfg);
        assert_eq!(ds.len(), 2_000);
        assert_eq!(ds.truth.cluster_count(), 20);
        assert_eq!(ds.truth.positive_count(), 1_000);
        assert_eq!(ds.truth.noise_count(), 1_000);
        assert_eq!(ds.data.dim(), 100);
    }

    #[test]
    fn clusters_are_tighter_than_noise() {
        let cfg = SyntheticConfig::paper(1_000, Regime::Bounded { p: 400 }, 7);
        let ds = generate(&cfg);
        let norm = LpNorm::L2;
        // Mean intra-cluster distance of cluster 0 vs mean distance
        // between random noise items.
        let members = &ds.truth.clusters()[0];
        let mut intra = 0.0;
        let mut pairs = 0;
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                intra += norm.distance(ds.data.get(a as usize), ds.data.get(b as usize));
                pairs += 1;
            }
        }
        intra /= pairs as f64;
        let labels = ds.truth.labels();
        let noise_ids: Vec<usize> =
            (0..ds.len()).filter(|&i| labels[i].is_none()).take(40).collect();
        let mut inter = 0.0;
        let mut npairs = 0;
        for (i, &a) in noise_ids.iter().enumerate() {
            for &b in &noise_ids[i + 1..] {
                inter += norm.distance(ds.data.get(a), ds.data.get(b));
                npairs += 1;
            }
        }
        inter /= npairs as f64;
        assert!(
            intra * 2.0 < inter,
            "clusters must be much tighter than noise: intra {intra:.1} vs noise {inter:.1}"
        );
        // The scale hint should be in the ballpark of measured intra.
        assert!(ds.scale > intra * 0.5 && ds.scale < intra * 2.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::paper(500, Regime::Sublinear { eta: 0.9 }, 42);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.data, b.data);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn members_are_scattered_by_the_shuffle() {
        let cfg = SyntheticConfig::paper(1_000, Regime::Proportional { omega: 0.4 }, 3);
        let ds = generate(&cfg);
        let first = &ds.truth.clusters()[0];
        let contiguous = first.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(!contiguous, "shuffle should break contiguity");
    }

    #[test]
    fn some_clusters_overlap() {
        // Consecutive pairs are nudged together: the distance between
        // means of clusters 0 and 1 is far below the typical mean gap.
        let cfg = SyntheticConfig::paper(4_000, Regime::Proportional { omega: 1.0 }, 11);
        let ds = generate(&cfg);
        let centroid = |c: usize| {
            let idx: Vec<usize> = ds.truth.clusters()[c].iter().map(|&m| m as usize).collect();
            ds.data.centroid(&idx)
        };
        let norm = LpNorm::L2;
        let d01 = norm.distance(&centroid(0), &centroid(1));
        let d02 = norm.distance(&centroid(0), &centroid(2));
        assert!(d01 < d02, "pair (0,1) is built to overlap: {d01:.1} vs {d02:.1}");
    }
}
