//! Ground truth bookkeeping shared by every simulator.

use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_affinity::vector::Dataset;

/// The true dominant clusters of a labelled data set. Items outside
/// every cluster are background noise.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroundTruth {
    n: usize,
    clusters: Vec<Vec<u32>>,
}

impl GroundTruth {
    /// Builds from per-cluster member lists; members are sorted.
    ///
    /// # Panics
    /// Panics if a member index is out of range or appears in two
    /// clusters.
    pub fn new(n: usize, mut clusters: Vec<Vec<u32>>) -> Self {
        let mut seen = vec![false; n];
        for members in clusters.iter_mut() {
            members.sort_unstable();
            for &m in members.iter() {
                assert!((m as usize) < n, "member {m} out of range {n}");
                assert!(!seen[m as usize], "member {m} in two ground-truth clusters");
                seen[m as usize] = true;
            }
        }
        Self { n, clusters }
    }

    /// Total items in the data set.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The true clusters (members ascending).
    pub fn clusters(&self) -> &[Vec<u32>] {
        &self.clusters
    }

    /// Number of true clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Items belonging to some cluster.
    pub fn positive_count(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }

    /// Items belonging to no cluster.
    pub fn noise_count(&self) -> usize {
        self.n - self.positive_count()
    }

    /// The noise degree `#noise / #ground-truth` of Appendix C (Eq. 35).
    pub fn noise_degree(&self) -> f64 {
        self.noise_count() as f64 / self.positive_count().max(1) as f64
    }

    /// Per-item labels (`None` = noise).
    pub fn labels(&self) -> Vec<Option<usize>> {
        let mut labels = vec![None; self.n];
        for (c, members) in self.clusters.iter().enumerate() {
            for &m in members {
                labels[m as usize] = Some(c);
            }
        }
        labels
    }

    /// Size of the largest cluster — the paper's `a*`.
    pub fn a_star(&self) -> usize {
        self.clusters.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Remaps item ids through `perm` (old id -> new id), e.g. after the
    /// simulators shuffle item order.
    pub fn permuted(&self, perm: &[u32]) -> GroundTruth {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let clusters = self
            .clusters
            .iter()
            .map(|members| {
                let mut m: Vec<u32> = members.iter().map(|&i| perm[i as usize]).collect();
                m.sort_unstable();
                m
            })
            .collect();
        GroundTruth { n: self.n, clusters }
    }
}

/// Shuffles item order (so cluster members are not contiguous — index
/// order must not leak ground truth to seed-order-sensitive methods) and
/// remaps the cluster member lists accordingly.
pub fn assemble_shuffled(
    data: Dataset,
    clusters: Vec<Vec<u32>>,
    rng: &mut rand::rngs::StdRng,
) -> (Dataset, GroundTruth) {
    let n = data.len();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    crate::rng::shuffle(rng, &mut perm);
    let mut old_to_new = vec![0u32; n];
    for (new_pos, &old_id) in perm.iter().enumerate() {
        old_to_new[old_id as usize] = new_pos as u32;
    }
    let idx: Vec<usize> = perm.iter().map(|&i| i as usize).collect();
    let shuffled = data.subset(&idx);
    let truth = GroundTruth::new(n, clusters).permuted(&old_to_new);
    (shuffled, truth)
}

/// A data set bundled with its ground truth and the scale hint used to
/// calibrate the Laplacian kernel.
#[derive(Clone, Debug)]
pub struct LabeledDataset {
    /// Human-readable name ("nart-sim", "sub-ndi-sim", ...).
    pub name: String,
    /// The feature vectors.
    pub data: Dataset,
    /// The true dominant clusters.
    pub truth: GroundTruth,
    /// A typical intra-cluster distance, for
    /// `AlidParams::calibrated(ds, scale, target)` and friends.
    pub scale: f64,
    /// A typical distance between unrelated (noise) items. On unbounded
    /// feature spaces this is far above `scale`; on bounded ones (unit
    /// sphere SIFT) it caps how far apart noise can get, and the kernel
    /// must be calibrated against it too.
    pub noise_scale: f64,
}

impl LabeledDataset {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the data set is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A Laplacian kernel calibrated for this data set: intra-cluster
    /// distances map to `target_affinity`, but `k` is raised if needed
    /// so that typical noise distances map to at most `noise_floor`
    /// (otherwise bounded feature spaces — the unit sphere — leave noise
    /// affinities high enough to form spurious mid-density structure).
    ///
    /// # Panics
    /// Panics unless `0 < noise_floor < target_affinity < 1`.
    pub fn suggested_kernel(&self, target_affinity: f64, noise_floor: f64) -> LaplacianKernel {
        assert!(
            0.0 < noise_floor && noise_floor < target_affinity && target_affinity < 1.0,
            "need 0 < noise_floor < target_affinity < 1"
        );
        let k_intra = -target_affinity.ln() / self.scale;
        let k_noise = -noise_floor.ln() / self.noise_scale;
        LaplacianKernel::new(k_intra.max(k_noise), LpNorm::L2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_degree() {
        let gt = GroundTruth::new(10, vec![vec![0, 1, 2], vec![5, 4]]);
        assert_eq!(gt.positive_count(), 5);
        assert_eq!(gt.noise_count(), 5);
        assert_eq!(gt.cluster_count(), 2);
        assert!((gt.noise_degree() - 1.0).abs() < 1e-12);
        assert_eq!(gt.a_star(), 3);
    }

    #[test]
    fn members_are_sorted() {
        let gt = GroundTruth::new(6, vec![vec![3, 1, 5]]);
        assert_eq!(gt.clusters()[0], vec![1, 3, 5]);
    }

    #[test]
    fn labels_mark_noise_as_none() {
        let gt = GroundTruth::new(4, vec![vec![2]]);
        assert_eq!(gt.labels(), vec![None, None, Some(0), None]);
    }

    #[test]
    #[should_panic(expected = "two ground-truth clusters")]
    fn overlapping_clusters_rejected() {
        let _ = GroundTruth::new(4, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn permutation_remaps_members() {
        let gt = GroundTruth::new(4, vec![vec![0, 1]]);
        // perm: 0->3, 1->2, 2->1, 3->0
        let p = gt.permuted(&[3, 2, 1, 0]);
        assert_eq!(p.clusters()[0], vec![2, 3]);
    }
}
