//! Property-based tests of the evaluation metrics: bounds, symmetry in
//! the right places, and behaviour under perturbation.

use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_data::groundtruth::GroundTruth;
use alid_data::metrics::{avg_f1, f1, precision_recall};
use proptest::prelude::*;

/// A random ground truth over n in 6..=30 items: disjoint clusters built
/// from a shuffled prefix.
fn ground_truth() -> impl Strategy<Value = GroundTruth> {
    (6usize..=30).prop_flat_map(|n| {
        (Just(n), prop::collection::vec(0u8..4, n)).prop_map(|(n, labels)| {
            let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); 4];
            for (i, &l) in labels.iter().enumerate() {
                if l < 3 {
                    clusters[l as usize].push(i as u32);
                } // l == 3 -> noise
            }
            let clusters: Vec<Vec<u32>> = clusters.into_iter().filter(|c| c.len() >= 2).collect();
            GroundTruth::new(n, clusters)
        })
    })
}

fn clustering_from(gt: &GroundTruth) -> Clustering {
    let mut c = Clustering::new(gt.n());
    for (i, members) in gt.clusters().iter().enumerate() {
        c.clusters.push(DetectedCluster::uniform(members.clone(), 0.9 - i as f64 * 0.01));
    }
    c
}

proptest! {
    #[test]
    fn f1_is_bounded_and_symmetric(a in prop::collection::btree_set(0u32..40, 1..10),
                                   b in prop::collection::btree_set(0u32..40, 1..10)) {
        let a: Vec<u32> = a.into_iter().collect();
        let b: Vec<u32> = b.into_iter().collect();
        let ab = f1(&a, &b);
        let ba = f1(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12, "F1 must be symmetric");
        if a == b {
            prop_assert!((ab - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn perfect_detection_scores_one(gt in ground_truth()) {
        prop_assume!(gt.cluster_count() > 0);
        let det = clustering_from(&gt);
        prop_assert!((avg_f1(&gt, &det) - 1.0).abs() < 1e-12);
        let (p, r) = precision_recall(&gt, &det);
        prop_assert!((p - 1.0).abs() < 1e-12);
        prop_assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn avg_f_is_bounded(gt in ground_truth(),
                        extra in prop::collection::vec(0u32..30, 0..8)) {
        let mut det = clustering_from(&gt);
        // Perturb: add a junk cluster of arbitrary (possibly overlapping)
        // items clamped into range.
        let junk: Vec<u32> = extra
            .into_iter()
            .map(|e| e % gt.n() as u32)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        if !junk.is_empty() {
            det.clusters.push(DetectedCluster::uniform(junk, 0.1));
        }
        let score = avg_f1(&gt, &det);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&score));
    }

    #[test]
    fn adding_clusters_never_lowers_avg_f(gt in ground_truth()) {
        prop_assume!(gt.cluster_count() > 1);
        // Detection with only the first true cluster...
        let mut partial = Clustering::new(gt.n());
        partial
            .clusters
            .push(DetectedCluster::uniform(gt.clusters()[0].clone(), 0.9));
        let before = avg_f1(&gt, &partial);
        // ...then add the second: best-match per true cluster can only
        // improve or stay.
        partial
            .clusters
            .push(DetectedCluster::uniform(gt.clusters()[1].clone(), 0.8));
        let after = avg_f1(&gt, &partial);
        prop_assert!(after >= before - 1e-12);
    }

    #[test]
    fn dropping_members_lowers_recall(gt in ground_truth()) {
        prop_assume!(gt.cluster_count() > 0 && gt.clusters()[0].len() >= 4);
        let full = clustering_from(&gt);
        let (_, r_full) = precision_recall(&gt, &full);
        let mut halved = full.clone();
        let keep = halved.clusters[0].members.len() / 2;
        let members: Vec<u32> = halved.clusters[0].members[..keep].to_vec();
        halved.clusters[0] = DetectedCluster::uniform(members, 0.9);
        let (_, r_half) = precision_recall(&gt, &halved);
        prop_assert!(r_half < r_full + 1e-12);
    }
}
