//! Sign-random-projection LSH (SimHash; Charikar 2002) — an alternative
//! hash family for *angular* similarity.
//!
//! The p-stable family of [`crate::index`] is calibrated in absolute L2
//! units via the segment length `r`. For L2-normalised data (the SIFT
//! visual-word workload) angle and L2 distance are monotonically
//! related, and the sign family needs no length parameter at all: each
//! of `bits` random hyperplanes contributes one sign bit,
//! `P[bit collision] = 1 - θ/π` for angle θ. Banding `bits` into one
//! key per table gives the usual recall/selectivity trade-off.
//!
//! Provided as an alternative backend for CIVS-style candidate
//! retrieval on normalised data, and exercised by the ablation suite.

use std::sync::Arc;

use alid_affinity::cost::CostModel;
use alid_affinity::fx::{mix_words, FxHashMap};
use alid_affinity::vector::Dataset;
use alid_exec::{ExecPolicy, SharedSlice, TuneState};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gauss::sample_standard_normal;

/// SimHash configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimHashParams {
    /// Number of tables `l`.
    pub tables: usize,
    /// Sign bits per table key.
    pub bits: usize,
    /// RNG seed for the hyperplane normals.
    pub seed: u64,
}

impl SimHashParams {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics unless `tables >= 1` and `1 <= bits <= 64`.
    pub fn new(tables: usize, bits: usize, seed: u64) -> Self {
        assert!(tables >= 1, "need at least one table");
        assert!((1..=64).contains(&bits), "bits must be in 1..=64, got {bits}");
        Self { tables, bits, seed }
    }
}

impl Default for SimHashParams {
    fn default() -> Self {
        Self::new(12, 14, 0x51)
    }
}

/// Chunk autotuner for the parallel key-computation phase of
/// [`SimHashIndex::build_with`] — one handle for this call site, kept
/// separate from the p-stable index's because sign-bit keys cost a
/// different number of nanoseconds per item than quantised
/// projections. Public for harness telemetry.
pub static SIMHASH_BUILD_TUNE: TuneState = TuneState::new();

struct Table {
    /// Row-major `bits x dim` hyperplane normals.
    planes: Vec<f64>,
    buckets: FxHashMap<u64, Vec<u32>>,
}

/// A SimHash index over a data set (tombstone semantics matching
/// [`crate::index::LshIndex`]).
pub struct SimHashIndex {
    params: SimHashParams,
    dim: usize,
    n: usize,
    tables: Vec<Table>,
    alive: Vec<bool>,
    alive_count: usize,
    /// Permanently retired ids, dropped from the bucket lists by
    /// [`Self::compact_tombstones`].
    retired: Vec<bool>,
    retired_count: usize,
    /// Aux bytes returned to the cost model by compaction so far.
    freed_bytes: u64,
    /// Shared cost model: build records the O(n*l) bucket memory and
    /// every streaming insert records its own growth (Section 4.3).
    cost: Arc<CostModel>,
}

impl SimHashIndex {
    /// Builds the index for every item of `ds`.
    pub fn build(ds: &Dataset, params: SimHashParams, cost: &Arc<CostModel>) -> Self {
        Self::build_with(ds, params, cost, ExecPolicy::sequential())
    }

    /// [`Self::build`] under an execution policy: sign-bit keys are
    /// computed in parallel over the items, then inserted sequentially
    /// in item order — byte-identical buckets for any worker count.
    pub fn build_with(
        ds: &Dataset,
        params: SimHashParams,
        cost: &Arc<CostModel>,
        exec: ExecPolicy,
    ) -> Self {
        let dim = ds.dim();
        let n = ds.len();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut tables = Vec::with_capacity(params.tables);
        for _ in 0..params.tables {
            let planes: Vec<f64> =
                (0..params.bits * dim).map(|_| sample_standard_normal(&mut rng)).collect();
            tables.push(Table { planes, buckets: FxHashMap::default() });
        }
        let mut index = Self {
            params,
            dim,
            n,
            tables,
            alive: vec![true; n],
            alive_count: n,
            retired: vec![false; n],
            retired_count: 0,
            freed_bytes: 0,
            cost: Arc::clone(cost),
        };
        alid_exec::tune::export_tune("simhash_build", &SIMHASH_BUILD_TUNE);
        let table_count = index.tables.len();
        let mut keys = vec![0u64; n * table_count];
        {
            let shared = SharedSlice::new(&mut keys);
            exec.for_each_index_tuned_with(
                &SIMHASH_BUILD_TUNE,
                n,
                || (),
                |(), id| {
                    let row = ds.get(id);
                    for t in 0..table_count {
                        let key = index.key(t, row);
                        // SAFETY: the (id, t) slots of item `id` are
                        // written only by the worker that owns `id`.
                        unsafe { shared.write(id * table_count + t, key) };
                    }
                },
            );
        }
        for id in 0..n {
            for (t, table) in index.tables.iter_mut().enumerate() {
                table.buckets.entry(keys[id * table_count + t]).or_default().push(id as u32);
            }
        }
        cost.record_aux_bytes((n * params.tables * 4 + n) as u64);
        index
    }

    /// Inserts a new item with the next id, hashing it into every
    /// table — the streaming-ingest path, mirroring
    /// [`crate::index::LshIndex::insert`]. Records the per-item
    /// aux-byte growth (`4l` bucket bytes + 1 tombstone byte); like the
    /// p-stable index, tombstoning later frees nothing because the id
    /// stays in the bucket lists.
    ///
    /// # Panics
    /// Panics if `v`'s dimensionality differs from the index's.
    pub fn insert(&mut self, v: &[f64]) -> u32 {
        assert_eq!(v.len(), self.dim, "inserted vector dimensionality mismatch");
        let id = self.n as u32;
        for t in 0..self.tables.len() {
            let key = self.key(t, v);
            self.tables[t].buckets.entry(key).or_default().push(id);
        }
        self.n += 1;
        self.alive.push(true);
        self.alive_count += 1;
        self.retired.push(false);
        self.cost.record_aux_bytes((self.params.tables * 4 + 1) as u64);
        id
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Items not tombstoned.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Tombstones an item (idempotent). Frees no aux bytes until a
    /// caller with *permanent* tombstones runs
    /// [`Self::compact_tombstones`].
    pub fn remove(&mut self, id: u32) {
        let slot = &mut self.alive[id as usize];
        if *slot {
            *slot = false;
            self.alive_count -= 1;
        }
    }

    /// Whether at least half of the bucket entries still held belong to
    /// tombstoned items (see [`crate::index::LshIndex::should_compact`]).
    pub fn should_compact(&self) -> bool {
        let held = self.n - self.retired_count;
        let dead = held - self.alive_count;
        dead > 0 && dead * 2 >= held
    }

    /// Promotes every current tombstone to permanent retirement and
    /// physically drops those ids from the bucket lists, releasing the
    /// freed bytes (4 per dropped entry) from the shared cost model —
    /// the SimHash mirror of
    /// [`crate::index::LshIndex::compact_tombstones`], with the same
    /// permanence caveat. Queries see no difference: they already
    /// filtered dead ids, and survivor order within a bucket is kept.
    pub fn compact_tombstones(&mut self) -> u64 {
        let mut newly = 0u64;
        for (r, &a) in self.retired.iter_mut().zip(&self.alive) {
            if !a && !*r {
                *r = true;
                newly += 1;
            }
        }
        if newly == 0 {
            return 0;
        }
        self.retired_count += newly as usize;
        let retired = std::mem::take(&mut self.retired);
        let mut dropped = 0u64;
        for table in &mut self.tables {
            // alid-lint: allow(no-unordered-iteration) -- per-bucket filtering is order-independent: each bucket is filtered in place (survivor order preserved) and no output is derived from the map's visit order
            table.buckets.retain(|_, bucket| {
                let before = bucket.len();
                bucket.retain(|&id| !retired[id as usize]);
                dropped += (before - bucket.len()) as u64;
                !bucket.is_empty()
            });
        }
        self.retired = retired;
        let freed = dropped * 4;
        self.cost.release_aux_bytes(freed);
        self.freed_bytes += freed;
        freed
    }

    /// Total auxiliary bytes compaction has returned over this index's
    /// lifetime.
    pub fn freed_bytes_total(&self) -> u64 {
        self.freed_bytes
    }

    fn key(&self, t: usize, v: &[f64]) -> u64 {
        debug_assert_eq!(v.len(), self.dim, "query dimensionality mismatch");
        let table = &self.tables[t];
        let mut signature: u64 = 0;
        for b in 0..self.params.bits {
            let plane = &table.planes[b * self.dim..(b + 1) * self.dim];
            let mut dot = 0.0;
            for (p, x) in plane.iter().zip(v) {
                dot += p * x;
            }
            signature = (signature << 1) | u64::from(dot >= 0.0);
        }
        // Mix so low bits are table-friendly even for small `bits`.
        mix_words([signature, t as u64])
    }

    /// Alive items colliding with `v` in any table, deduplicated and
    /// sorted ascending.
    pub fn query(&self, v: &[f64]) -> Vec<u32> {
        let mut out = Vec::new();
        for t in 0..self.tables.len() {
            let key = self.key(t, v);
            if let Some(bucket) = self.tables[t].buckets.get(&key) {
                out.extend(bucket.iter().copied().filter(|&id| self.alive[id as usize]));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Theoretical single-bit collision probability for angle `theta`
    /// (radians): `1 - theta / pi`.
    pub fn bit_collision_probability(theta: f64) -> f64 {
        (1.0 - theta / std::f64::consts::PI).clamp(0.0, 1.0)
    }

    /// Theoretical recall for angle `theta` under this configuration.
    pub fn recall(&self, theta: f64) -> f64 {
        let p_key = Self::bit_collision_probability(theta).powi(self.params.bits as i32);
        1.0 - (1.0 - p_key).powi(self.params.tables as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight direction cones on the unit sphere plus scattered noise.
    fn sphere_dataset() -> Dataset {
        let dim = 24;
        let mut rng = StdRng::seed_from_u64(9);
        let mut ds = Dataset::new(dim);
        let mut proto_a = vec![0.0; dim];
        proto_a[0] = 1.0;
        let mut proto_b = vec![0.0; dim];
        proto_b[1] = -1.0;
        let push_near = |proto: &[f64], ds: &mut Dataset, rng: &mut StdRng| {
            let mut v: Vec<f64> =
                proto.iter().map(|&p| p + 0.02 * sample_standard_normal(rng)).collect();
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm);
            ds.push(&v);
        };
        for _ in 0..15 {
            push_near(&proto_a, &mut ds, &mut rng);
        }
        for _ in 0..15 {
            push_near(&proto_b, &mut ds, &mut rng);
        }
        for _ in 0..30 {
            let mut v: Vec<f64> = (0..dim).map(|_| sample_standard_normal(&mut rng)).collect();
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm);
            ds.push(&v);
        }
        ds
    }

    #[test]
    fn cone_members_collide() {
        let ds = sphere_dataset();
        let idx = SimHashIndex::build(&ds, SimHashParams::new(10, 10, 3), &CostModel::shared());
        let hits = idx.query(ds.get(0));
        let cone_hits = hits.iter().filter(|&&h| h < 15).count();
        assert!(cone_hits >= 12, "cone A recall too low: {cone_hits}/15");
        // The opposite cone must essentially never collide (angle ~pi/2
        // from cone A in these axes — actually orthogonal; recall ~0).
        let cone_b = hits.iter().filter(|&&h| (15..30).contains(&h)).count();
        assert!(cone_b <= 2, "orthogonal cone should not collide: {cone_b}");
    }

    #[test]
    fn tombstones_respected() {
        let ds = sphere_dataset();
        let mut idx = SimHashIndex::build(&ds, SimHashParams::new(10, 10, 3), &CostModel::shared());
        assert!(idx.query(ds.get(0)).contains(&1));
        idx.remove(1);
        assert!(!idx.query(ds.get(0)).contains(&1));
        assert_eq!(idx.alive_count(), ds.len() - 1);
    }

    #[test]
    fn insert_is_queryable_and_records_aux_growth() {
        let ds = sphere_dataset();
        let cost = CostModel::shared();
        let mut idx = SimHashIndex::build(&ds, SimHashParams::new(10, 10, 3), &cost);
        let base = cost.snapshot().aux_bytes;
        // Insert a copy of an existing cone-A member: must collide.
        let v: Vec<f64> = ds.get(0).to_vec();
        let id = idx.insert(&v);
        assert_eq!(id as usize, ds.len());
        assert_eq!(idx.len(), ds.len() + 1);
        assert!(idx.query(&v).contains(&id));
        assert!(idx.query(ds.get(0)).contains(&id));
        assert_eq!(cost.snapshot().aux_bytes, base + (10 * 4 + 1) as u64);
        // Tombstoning frees nothing (the id stays in the buckets).
        idx.remove(id);
        assert_eq!(cost.snapshot().aux_bytes, base + (10 * 4 + 1) as u64);
    }

    #[test]
    fn compact_tombstones_frees_aux_bytes_without_changing_queries() {
        let ds = sphere_dataset();
        let cost = CostModel::shared();
        let mut idx = SimHashIndex::build(&ds, SimHashParams::new(10, 10, 3), &cost);
        let mut plain = SimHashIndex::build(&ds, SimHashParams::new(10, 10, 3), &cost);
        let base = cost.snapshot().aux_bytes;
        // Tombstone cone A in both; compact only one of them.
        for id in 0..15 {
            idx.remove(id);
            plain.remove(id);
        }
        let freed = idx.compact_tombstones();
        assert_eq!(freed, 15 * 10 * 4, "4 bytes per (retired id, table)");
        assert_eq!(idx.freed_bytes_total(), freed);
        assert_eq!(cost.snapshot().aux_bytes, base - freed);
        for probe in 0..ds.len() {
            assert_eq!(
                idx.query(ds.get(probe)),
                plain.query(ds.get(probe)),
                "query {probe} diverged after compaction"
            );
        }
        // No new tombstones: compaction is a no-op.
        assert!(!idx.should_compact());
        assert_eq!(idx.compact_tombstones(), 0);
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let ds = sphere_dataset();
        let params = SimHashParams::new(10, 10, 3);
        let serial = SimHashIndex::build(&ds, params, &CostModel::shared());
        for workers in [2usize, 4] {
            let par = SimHashIndex::build_with(
                &ds,
                params,
                &CostModel::shared(),
                ExecPolicy::workers(workers),
            );
            for probe in 0..ds.len() {
                assert_eq!(
                    par.query(ds.get(probe)),
                    serial.query(ds.get(probe)),
                    "query {probe} diverged at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn recall_model_is_monotone_in_angle() {
        let idx =
            SimHashIndex::build(&sphere_dataset(), SimHashParams::default(), &CostModel::shared());
        let mut prev = idx.recall(0.0);
        assert!((prev - 1.0).abs() < 1e-9);
        for step in 1..=10 {
            let theta = step as f64 * 0.3;
            let r = idx.recall(theta.min(std::f64::consts::PI));
            assert!(r <= prev + 1e-12, "recall must fall with angle");
            prev = r;
        }
    }

    #[test]
    fn empirical_bit_collision_tracks_theory() {
        // Pairs at a fixed angle: empirical single-bit collision rate
        // close to 1 - theta/pi.
        let dim = 16;
        let theta = 0.5f64;
        let mut rng = StdRng::seed_from_u64(77);
        let trials = 600;
        let mut collisions = 0;
        for t in 0..trials {
            let mut a: Vec<f64> = (0..dim).map(|_| sample_standard_normal(&mut rng)).collect();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            a.iter_mut().for_each(|x| *x /= na);
            // Orthogonal direction to rotate towards.
            let mut b: Vec<f64> = (0..dim).map(|_| sample_standard_normal(&mut rng)).collect();
            let proj: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            for (bi, &ai) in b.iter_mut().zip(&a) {
                *bi -= proj * ai;
            }
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            b.iter_mut().for_each(|x| *x /= nb);
            let rotated: Vec<f64> =
                a.iter().zip(&b).map(|(&ai, &bi)| ai * theta.cos() + bi * theta.sin()).collect();
            let mut ds = Dataset::new(dim);
            ds.push(&a);
            ds.push(&rotated);
            let idx =
                SimHashIndex::build(&ds, SimHashParams::new(1, 1, 1000 + t), &CostModel::shared());
            if idx.query(ds.get(0)).contains(&1) {
                collisions += 1;
            }
        }
        let empirical = collisions as f64 / trials as f64;
        let theory = SimHashIndex::bit_collision_probability(theta);
        assert!(
            (empirical - theory).abs() < 0.07,
            "empirical {empirical:.3} vs theory {theory:.3}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = sphere_dataset();
        let a = SimHashIndex::build(&ds, SimHashParams::default(), &CostModel::shared());
        let b = SimHashIndex::build(&ds, SimHashParams::default(), &CostModel::shared());
        assert_eq!(a.query(ds.get(3)), b.query(ds.get(3)));
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn rejects_oversized_bits() {
        let _ = SimHashParams::new(4, 65, 0);
    }
}
