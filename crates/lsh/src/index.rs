//! The LSH index: `l` tables of `mu` concatenated Gaussian projections,
//! with an inverted list and tombstone deletion.

use std::collections::BTreeMap;
use std::sync::Arc;

use alid_affinity::cost::CostModel;
use alid_affinity::fx::mix_words;
use alid_affinity::vector::Dataset;
use alid_exec::{ExecPolicy, SharedSlice, TuneState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gauss::sample_standard_normal;
use crate::params::LshParams;

/// Chunk autotuner for the parallel key-computation phase of
/// [`LshIndex::build_with`] — one handle for this call site, shared by
/// every build in the process so later builds start from the measured
/// per-item cost. Public so harnesses can report the chosen chunk
/// (`bench_speculation` emits its snapshot).
pub static LSH_BUILD_TUNE: TuneState = TuneState::new();

/// One hash table: `mu` projection directions, `mu` offsets and the
/// bucket map from mixed key to member ids.
#[derive(Debug)]
struct Table {
    /// Row-major `mu x dim` projection directions with N(0,1) entries.
    proj: Vec<f64>,
    /// Offsets `b ~ U[0, r)`, one per projection.
    offsets: Vec<f64>,
    /// Bucket key -> item ids (insertion order within a bucket).
    /// BTreeMap so whole-table iteration (`large_buckets`, the sparse
    /// degree estimate) runs in ascending key order — hash-map order
    /// would silently couple seed sampling to the hasher.
    buckets: BTreeMap<u64, Vec<u32>>,
}

/// A p-stable LSH index over a data set.
///
/// Items are addressed by their index in the originating [`Dataset`].
/// Deletion is by tombstone: peeled items stay in the buckets but are
/// filtered from every query, matching the paper's peeling loop which
/// "reiterates on the remaining data items" without rebuilding the
/// tables.
#[derive(Debug)]
pub struct LshIndex {
    params: LshParams,
    dim: usize,
    n: usize,
    tables: Vec<Table>,
    alive: Vec<bool>,
    alive_count: usize,
    /// Permanently retired ids: physically dropped from the bucket lists
    /// by [`Self::compact_tombstones`] and never resurrected by
    /// [`Self::restore_all`].
    retired: Vec<bool>,
    retired_count: usize,
    /// Aux bytes returned to the cost model by compaction so far.
    freed_bytes: u64,
    /// Shared cost model: build records the O(n*l) hash-table memory,
    /// and every streaming insert records its own growth so Section 4.3
    /// memory reports stay truthful as the stream runs.
    cost: Arc<CostModel>,
    /// Reusable signature scratch for the streaming-ingest path.
    scratch: Vec<u64>,
}

impl LshIndex {
    /// Builds the index for every item of `ds`.
    ///
    /// Time `O(n * d * l * mu)`; auxiliary space `O(n * l)` for the
    /// bucket lists (reported to `cost` as the paper's hash-table
    /// memory, Section 4.3).
    pub fn build(ds: &Dataset, params: LshParams, cost: &Arc<CostModel>) -> Self {
        Self::build_with(ds, params, cost, ExecPolicy::sequential())
    }

    /// [`Self::build`] under an execution policy: bucket keys are
    /// computed in parallel over the items (one reusable signature
    /// buffer per worker), then inserted sequentially in item order —
    /// so bucket contents, and therefore every query, are
    /// byte-identical for any worker count.
    pub fn build_with(
        ds: &Dataset,
        params: LshParams,
        cost: &Arc<CostModel>,
        exec: ExecPolicy,
    ) -> Self {
        let dim = ds.dim();
        let n = ds.len();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut tables = Vec::with_capacity(params.tables);
        for _ in 0..params.tables {
            let proj: Vec<f64> =
                (0..params.projections * dim).map(|_| sample_standard_normal(&mut rng)).collect();
            let offsets: Vec<f64> =
                (0..params.projections).map(|_| rng.gen::<f64>() * params.r).collect();
            tables.push(Table { proj, offsets, buckets: BTreeMap::new() });
        }
        let mut index = Self {
            params,
            dim,
            n,
            tables,
            alive: vec![true; n],
            alive_count: n,
            retired: vec![false; n],
            retired_count: 0,
            freed_bytes: 0,
            cost: Arc::clone(cost),
            scratch: vec![0u64; params.projections],
        };
        // Phase 1 (parallel): the key of item `id` in table `t` depends
        // only on (id, t), so keys fan out over the items.
        alid_exec::tune::export_tune("lsh_build", &LSH_BUILD_TUNE);
        let table_count = index.tables.len();
        let mut keys = vec![0u64; n * table_count];
        {
            let shared = SharedSlice::new(&mut keys);
            exec.for_each_index_tuned_with(
                &LSH_BUILD_TUNE,
                n,
                || vec![0u64; params.projections],
                |signature, id| {
                    let row = ds.get(id);
                    for t in 0..table_count {
                        let key = index.key_into(t, row, signature);
                        // SAFETY: the (id, t) slots of item `id` are
                        // written only by the worker that owns `id`.
                        unsafe { shared.write(id * table_count + t, key) };
                    }
                },
            );
        }
        // Phase 2 (sequential): deterministic bucket fill in item order,
        // matching the pushes a fully sequential build performs.
        for id in 0..n {
            for (t, table) in index.tables.iter_mut().enumerate() {
                table.buckets.entry(keys[id * table_count + t]).or_default().push(id as u32);
            }
        }
        // Hash-table memory: one u32 id per (item, table) in the bucket
        // lists, plus one byte per item for the tombstone bitmap. This is
        // the O(n*l) term of Section 4.3.
        cost.record_aux_bytes((n * params.tables * 4 + n) as u64);
        index
    }

    /// Number of indexed items (alive + tombstoned).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Items not yet tombstoned.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Whether item `id` is still alive.
    pub fn is_alive(&self, id: u32) -> bool {
        self.alive[id as usize]
    }

    /// The index parameters.
    pub fn params(&self) -> &LshParams {
        &self.params
    }

    /// Inserts a new item with the next id (`= len()` before the call),
    /// hashing it into every table. This is the streaming-ingest path of
    /// the online ALID extension; the vector must also be appended to
    /// the backing [`Dataset`] by the caller.
    ///
    /// The signature scratch buffer is owned by the index, so steady
    /// ingest performs no per-item allocation (bucket growth aside),
    /// and each insert records its own aux-byte growth — `4l` bucket
    /// bytes plus one tombstone byte — keeping the Section 4.3 memory
    /// accounting truthful as the stream grows.
    ///
    /// # Panics
    /// Panics if `v`'s dimensionality differs from the index's.
    pub fn insert(&mut self, v: &[f64]) -> u32 {
        assert_eq!(v.len(), self.dim, "inserted vector dimensionality mismatch");
        let id = self.n as u32;
        let mut signature = std::mem::take(&mut self.scratch);
        for t in 0..self.tables.len() {
            let key = self.key_into(t, v, &mut signature);
            self.tables[t].buckets.entry(key).or_default().push(id);
        }
        self.scratch = signature;
        self.n += 1;
        self.alive.push(true);
        self.alive_count += 1;
        self.retired.push(false);
        self.cost.record_aux_bytes((self.params.tables * 4 + 1) as u64);
        id
    }

    /// Tombstones item `id` (idempotent). Peeled clusters call this for
    /// every member.
    ///
    /// Tombstoning alone frees **no** aux bytes, deliberately: the id
    /// stays in every bucket list (queries filter it), so the hash-table
    /// memory of Section 4.3 is still held — the accounting matches the
    /// allocation exactly. Bytes return only when a caller whose
    /// tombstones are *permanent* runs [`Self::compact_tombstones`], or
    /// when the whole index is dropped.
    pub fn remove(&mut self, id: u32) {
        let slot = &mut self.alive[id as usize];
        if *slot {
            *slot = false;
            self.alive_count -= 1;
        }
    }

    /// Clears every *transient* tombstone (PALID mappers share one index
    /// and never peel; streaming sweeps re-run detection from scratch).
    /// Ids retired by [`Self::compact_tombstones`] stay dead — their
    /// bucket entries no longer exist.
    pub fn restore_all(&mut self) {
        for (a, &r) in self.alive.iter_mut().zip(&self.retired) {
            *a = !r;
        }
        self.alive_count = self.n - self.retired_count;
    }

    /// Whether at least half of the bucket entries still held belong to
    /// tombstoned items — the point where [`Self::compact_tombstones`]
    /// reclaims at least as much as it keeps, amortising the O(n*l)
    /// bucket walk against the bytes returned.
    pub fn should_compact(&self) -> bool {
        let held = self.n - self.retired_count;
        let dead = held - self.alive_count;
        dead > 0 && dead * 2 >= held
    }

    /// Promotes every current tombstone to *permanent* retirement and
    /// physically drops those ids from the bucket lists, returning the
    /// auxiliary bytes freed (4 per dropped bucket entry — the exact
    /// mirror of the growth [`Self::insert`] records; the one tombstone
    /// byte per item stays, since `alive`/`retired` remain positional).
    /// The freed bytes are released from the shared cost model.
    ///
    /// Only sound when the caller's tombstones are permanent: batch
    /// peeling (`alid-core`'s peel pass) never revisits a peeled item,
    /// so detection-to-exhaustion compacts freely, while the streaming
    /// sweep — whose [`Self::restore_all`] must resurrect assigned items
    /// for future attachment — must not call this. Queries are
    /// unaffected either way: they already filtered dead ids, and
    /// within-bucket order of survivors is preserved.
    pub fn compact_tombstones(&mut self) -> u64 {
        let mut newly = 0u64;
        for (r, &a) in self.retired.iter_mut().zip(&self.alive) {
            if !a && !*r {
                *r = true;
                newly += 1;
            }
        }
        if newly == 0 {
            return 0;
        }
        self.retired_count += newly as usize;
        // Borrow-split: take the retired bitmap so the bucket walk can
        // borrow `self.tables` mutably while reading it.
        let retired = std::mem::take(&mut self.retired);
        let mut dropped = 0u64;
        for table in &mut self.tables {
            table.buckets.retain(|_, bucket| {
                let before = bucket.len();
                bucket.retain(|&id| !retired[id as usize]);
                dropped += (before - bucket.len()) as u64;
                !bucket.is_empty()
            });
        }
        self.retired = retired;
        let freed = dropped * 4;
        self.cost.release_aux_bytes(freed);
        self.freed_bytes += freed;
        freed
    }

    /// Total auxiliary bytes [`Self::compact_tombstones`] has returned
    /// over this index's lifetime.
    pub fn freed_bytes_total(&self) -> u64 {
        self.freed_bytes
    }

    /// Computes the bucket key of `v` in table `t`, reusing `signature`
    /// as scratch.
    fn key_into(&self, t: usize, v: &[f64], signature: &mut [u64]) -> u64 {
        debug_assert_eq!(v.len(), self.dim, "query dimensionality mismatch");
        let table = &self.tables[t];
        for (p, sig) in signature.iter_mut().enumerate() {
            let w = &table.proj[p * self.dim..(p + 1) * self.dim];
            let mut dot = table.offsets[p];
            for (wi, vi) in w.iter().zip(v) {
                dot += wi * vi;
            }
            *sig = (dot / self.params.r).floor() as i64 as u64;
        }
        mix_words(signature.iter().copied())
    }

    /// Pushes every *alive* item colliding with `v` in any table onto
    /// `out` (duplicates across tables included — callers dedup once per
    /// multi-query batch).
    pub fn query_into(&self, v: &[f64], out: &mut Vec<u32>) {
        let mut signature = vec![0u64; self.params.projections];
        for t in 0..self.tables.len() {
            let key = self.key_into(t, v, &mut signature);
            if let Some(bucket) = self.tables[t].buckets.get(&key) {
                out.extend(bucket.iter().copied().filter(|&id| self.alive[id as usize]));
            }
        }
    }

    /// Alive items colliding with `v` in any table, deduplicated and
    /// sorted ascending.
    pub fn query(&self, v: &[f64]) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(v, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Union of [`Self::query`] over several query points — the CIVS
    /// multi-query retrieval of Fig. 4(b). Deduplicated and sorted.
    pub fn multi_query<'q>(&self, queries: impl IntoIterator<Item = &'q [f64]>) -> Vec<u32> {
        let mut out = Vec::new();
        for q in queries {
            self.query_into(q, &mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Approximate-nearest-neighbour lists for sparsification
    /// (Section 5.1): item `i` is adjacent to every alive item sharing a
    /// bucket with it. `i` itself is excluded.
    pub fn neighbor_lists(&self, ds: &Dataset) -> Vec<Vec<u32>> {
        let mut lists = Vec::with_capacity(self.n);
        for id in 0..self.n {
            if !self.alive[id] {
                lists.push(Vec::new());
                continue;
            }
            let mut l = self.query(ds.get(id));
            l.retain(|&j| j != id as u32);
            lists.push(l);
        }
        lists
    }

    /// Iterates over every bucket (across all tables) with at least
    /// `min_size` alive members, yielding the alive member ids. PALID
    /// samples its seeds from buckets with more than five items.
    pub fn large_buckets(&self, min_size: usize) -> impl Iterator<Item = Vec<u32>> + '_ {
        self.tables.iter().flat_map(move |t| {
            t.buckets.values().filter_map(move |bucket| {
                let alive: Vec<u32> =
                    bucket.iter().copied().filter(|&id| self.alive[id as usize]).collect();
                (alive.len() >= min_size).then_some(alive)
            })
        })
    }

    /// Distinct non-empty bucket count (diagnostics).
    pub fn bucket_count(&self) -> usize {
        self.tables.iter().map(|t| t.buckets.len()).sum()
    }

    /// Estimated sparse degree of the neighbour-list sparsification:
    /// `1 - (expected stored entries) / n^2`, computed exactly from the
    /// current buckets without materialising the lists.
    pub fn estimated_sparse_degree(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        // Union over tables is approximated by counting distinct pairs
        // per item via merged buckets; exact computation would need the
        // pairwise union, so sample-free upper bound: sum over tables of
        // bucket-pair counts, capped at n^2.
        let mut pairs = 0f64;
        for t in &self.tables {
            for bucket in t.buckets.values() {
                let k = bucket.iter().filter(|&&id| self.alive[id as usize]).count() as f64;
                pairs += k * (k - 1.0);
            }
        }
        let total = self.n as f64 * self.n as f64;
        (1.0 - pairs / total).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs far apart plus one extreme outlier.
    fn blob_dataset() -> Dataset {
        let mut ds = Dataset::new(2);
        for i in 0..20 {
            let t = i as f64 * 0.01;
            ds.push(&[t, -t]); // blob A near the origin
        }
        for i in 0..20 {
            let t = i as f64 * 0.01;
            ds.push(&[50.0 + t, 50.0 - t]); // blob B far away
        }
        ds.push(&[1e4, -1e4]); // outlier
        ds
    }

    fn build(ds: &Dataset, r: f64) -> LshIndex {
        LshIndex::build(ds, LshParams::new(8, 6, r, 42), &CostModel::shared())
    }

    #[test]
    fn near_points_collide_far_points_do_not() {
        let ds = blob_dataset();
        let idx = build(&ds, 1.0);
        let hits = idx.query(ds.get(0));
        // Item 0's blob-mates should dominate the result.
        let blob_a_hits = hits.iter().filter(|&&h| h < 20).count();
        assert!(blob_a_hits >= 15, "expected most of blob A, got {blob_a_hits}");
        assert!(!hits.contains(&40), "the far outlier must not collide with the origin blob");
    }

    #[test]
    fn query_results_are_sorted_and_deduped() {
        let ds = blob_dataset();
        let idx = build(&ds, 2.0);
        let hits = idx.query(ds.get(3));
        let mut sorted = hits.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(hits, sorted);
    }

    #[test]
    fn tombstones_filter_queries() {
        let ds = blob_dataset();
        let mut idx = build(&ds, 1.0);
        assert!(idx.query(ds.get(0)).contains(&1));
        idx.remove(1);
        idx.remove(1); // idempotent
        assert!(!idx.query(ds.get(0)).contains(&1));
        assert_eq!(idx.alive_count(), ds.len() - 1);
        idx.restore_all();
        assert!(idx.query(ds.get(0)).contains(&1));
        assert_eq!(idx.alive_count(), ds.len());
    }

    #[test]
    fn multi_query_unions_results() {
        let ds = blob_dataset();
        let idx = build(&ds, 1.0);
        let a = idx.query(ds.get(0));
        let b = idx.query(ds.get(25));
        let union = idx.multi_query([ds.get(0), ds.get(25)]);
        for h in a.iter().chain(&b) {
            assert!(union.contains(h));
        }
        let mut sorted = union.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(union, sorted);
    }

    #[test]
    fn neighbor_lists_exclude_self_and_respect_tombstones() {
        let ds = blob_dataset();
        let mut idx = build(&ds, 1.0);
        idx.remove(2);
        let lists = idx.neighbor_lists(&ds);
        assert!(lists[2].is_empty(), "tombstoned items get empty lists");
        assert!(!lists[0].contains(&0), "self excluded");
        assert!(!lists[0].contains(&2), "tombstoned neighbours excluded");
    }

    #[test]
    fn larger_r_lowers_sparse_degree() {
        let ds = blob_dataset();
        let tight = build(&ds, 0.05);
        let loose = build(&ds, 5.0);
        assert!(tight.estimated_sparse_degree() >= loose.estimated_sparse_degree());
    }

    #[test]
    fn large_buckets_find_the_blobs() {
        let ds = blob_dataset();
        let idx = build(&ds, 2.0);
        let mut saw_blob = false;
        for bucket in idx.large_buckets(6) {
            let all_a = bucket.iter().all(|&id| id < 20);
            let all_b = bucket.iter().all(|&id| (20..40).contains(&id));
            if all_a || all_b {
                saw_blob = true;
            }
        }
        assert!(saw_blob, "at least one large bucket should be blob-pure");
    }

    #[test]
    fn insert_makes_items_queryable() {
        let ds = blob_dataset();
        let mut idx = build(&ds, 1.0);
        let n0 = idx.len();
        let new_point = [0.005, -0.005]; // inside blob A
        let id = idx.insert(&new_point);
        assert_eq!(id as usize, n0);
        assert_eq!(idx.len(), n0 + 1);
        assert_eq!(idx.alive_count(), n0 + 1);
        assert!(idx.is_alive(id));
        // The new item collides with its blob...
        let hits = idx.query(&new_point);
        assert!(hits.contains(&id));
        assert!(hits.iter().any(|&h| h < 20), "blob A neighbours found");
        // ...and queries from old blob members see it.
        assert!(idx.query(ds.get(0)).contains(&id));
    }

    #[test]
    fn insert_equivalent_to_batch_build() {
        // Building an index over n+1 points must hash the last item into
        // the same buckets as building over n points and inserting it.
        let mut full = Dataset::new(2);
        for i in 0..30 {
            full.push(&[i as f64 * 0.01, 1.0]);
        }
        let prefix = full.subset(&(0..29).collect::<Vec<_>>());
        let params = LshParams::new(6, 4, 0.7, 99);
        let batch = LshIndex::build(&full, params, &CostModel::shared());
        let mut incremental = LshIndex::build(&prefix, params, &CostModel::shared());
        incremental.insert(full.get(29));
        for probe in 0..30 {
            assert_eq!(
                batch.query(full.get(probe)),
                incremental.query(full.get(probe)),
                "query {probe} diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn insert_rejects_wrong_dim() {
        let ds = blob_dataset();
        let mut idx = build(&ds, 1.0);
        let _ = idx.insert(&[1.0]);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let ds = blob_dataset();
        let a = build(&ds, 1.0);
        let b = build(&ds, 1.0);
        assert_eq!(a.query(ds.get(7)), b.query(ds.get(7)));
        assert_eq!(a.bucket_count(), b.bucket_count());
    }

    #[test]
    fn aux_bytes_are_recorded() {
        let ds = blob_dataset();
        let cost = CostModel::shared();
        let _idx = LshIndex::build(&ds, LshParams::new(4, 3, 1.0, 7), &cost);
        let expect = (ds.len() * 4 * 4 + ds.len()) as u64;
        assert_eq!(cost.snapshot().aux_bytes, expect);
    }

    #[test]
    fn insert_records_aux_growth_and_tombstones_free_nothing() {
        let ds = blob_dataset();
        let cost = CostModel::shared();
        let mut idx = LshIndex::build(&ds, LshParams::new(4, 3, 1.0, 7), &cost);
        let base = cost.snapshot().aux_bytes;
        for i in 0..10 {
            idx.insert(&[i as f64 * 0.01, -(i as f64) * 0.01]);
        }
        let per_insert = (4 * 4 + 1) as u64; // 4 tables x u32 id + tombstone byte
        assert_eq!(cost.snapshot().aux_bytes, base + 10 * per_insert);
        // Tombstoning keeps the ids in the bucket lists, so the bytes
        // stay allocated — no free is recorded.
        idx.remove(0);
        idx.remove(41);
        assert_eq!(cost.snapshot().aux_bytes, base + 10 * per_insert);
    }

    #[test]
    fn compact_tombstones_frees_aux_bytes_and_retires_permanently() {
        let ds = blob_dataset();
        let cost = CostModel::shared();
        let mut idx = LshIndex::build(&ds, LshParams::new(4, 3, 1.0, 7), &cost);
        let base = cost.snapshot().aux_bytes;
        // Tombstone all of blob A plus the outlier, then compact: each
        // retired id occupied one u32 slot in each of the 4 tables.
        for id in 0..20 {
            idx.remove(id);
        }
        idx.remove(40);
        assert!(idx.should_compact(), "more than half the corpus is dead");
        let freed = idx.compact_tombstones();
        assert_eq!(freed, 21 * 4 * 4, "4 bytes per (retired id, table)");
        assert_eq!(idx.freed_bytes_total(), freed);
        assert_eq!(cost.snapshot().aux_bytes, base - freed);
        // Retirement is permanent: restore_all revives only the rest.
        idx.restore_all();
        assert_eq!(idx.alive_count(), ds.len() - 21);
        assert!(!idx.is_alive(0));
        assert!(idx.query(ds.get(0)).is_empty(), "retired blob gone from buckets");
        // Re-compacting with no new tombstones is a no-op.
        assert!(!idx.should_compact());
        assert_eq!(idx.compact_tombstones(), 0);
        assert_eq!(cost.snapshot().aux_bytes, base - freed);
    }

    #[test]
    fn compaction_is_invisible_to_surviving_queries() {
        let ds = blob_dataset();
        let mut plain = build(&ds, 1.0);
        let mut compacted = build(&ds, 1.0);
        for id in 0..20 {
            plain.remove(id);
            compacted.remove(id);
        }
        compacted.compact_tombstones();
        for probe in 0..ds.len() {
            assert_eq!(
                plain.query(ds.get(probe)),
                compacted.query(ds.get(probe)),
                "query {probe} diverged after compaction"
            );
        }
        assert_eq!(
            plain.estimated_sparse_degree(),
            compacted.estimated_sparse_degree(),
            "sparse-degree estimate must not see compaction"
        );
        // Inserts after compaction keep working with fresh ids.
        let id = compacted.insert(&[50.05, 49.95]);
        assert!(compacted.query(&[50.05, 49.95]).contains(&id));
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let ds = blob_dataset();
        let params = LshParams::new(8, 6, 1.0, 42);
        let serial = LshIndex::build(&ds, params, &CostModel::shared());
        for workers in [2usize, 4, 8] {
            let cost = CostModel::shared();
            let par = LshIndex::build_with(&ds, params, &cost, ExecPolicy::workers(workers));
            assert_eq!(par.bucket_count(), serial.bucket_count(), "{workers} workers");
            for probe in 0..ds.len() {
                assert_eq!(
                    par.query(ds.get(probe)),
                    serial.query(ds.get(probe)),
                    "query {probe} diverged at {workers} workers"
                );
            }
            assert_eq!(
                cost.snapshot().aux_bytes,
                (ds.len() * 8 * 4 + ds.len()) as u64,
                "{workers} workers changed accounting"
            );
        }
    }

    #[test]
    fn empirical_collision_rate_tracks_theory() {
        // Pairs at distance u should collide under a single hash function
        // with probability close to collision_probability(u, r).
        use crate::collision::collision_probability;
        let r = 1.5;
        let u = 1.0;
        let trials = 600u64;
        let mut collisions = 0;
        for t in 0..trials {
            // Each trial draws a fresh hash function (fresh seed) for an
            // isolated pair at distance exactly u.
            let angle = t as f64;
            let ds = Dataset::from_flat(2, vec![0.0, 0.0, u * angle.cos(), u * angle.sin()]);
            let idx = LshIndex::build(&ds, LshParams::new(1, 1, r, 1000 + t), &CostModel::shared());
            if idx.query(ds.get(0)).contains(&1) {
                collisions += 1;
            }
        }
        let empirical = collisions as f64 / trials as f64;
        let theory = collision_probability(u, r);
        assert!(
            (empirical - theory).abs() < 0.08,
            "empirical {empirical:.3} vs theory {theory:.3}"
        );
    }
}
