//! LSH configuration.

/// Parameters of a p-stable LSH index.
///
/// The paper's sparsity study (Fig. 6) uses "40 projections per hash
/// value and 50 hash tables"; CIVS runs with lighter settings since its
/// multi-query scheme compensates for recall (Fig. 4). `r` is the
/// segment length of the quantised real line: larger `r` means more
/// collisions, higher recall and lower sparse degree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LshParams {
    /// Number of hash tables `l`.
    pub tables: usize,
    /// Number of projections `mu` per table (concatenated into the key).
    pub projections: usize,
    /// Segment length `r` of each hash function's quantisation.
    pub r: f64,
    /// RNG seed for the projection directions and offsets.
    pub seed: u64,
}

impl LshParams {
    /// Parameters with explicit values.
    ///
    /// # Panics
    /// Panics unless `tables >= 1`, `projections >= 1` and `r > 0`.
    pub fn new(tables: usize, projections: usize, r: f64, seed: u64) -> Self {
        assert!(tables >= 1, "need at least one hash table");
        assert!(projections >= 1, "need at least one projection");
        assert!(r.is_finite() && r > 0.0, "segment length must be positive, got {r}");
        Self { tables, projections, r, seed }
    }

    /// The configuration of the paper's sparsity study (Section 5.1):
    /// 40 projections, 50 tables.
    pub fn paper_sparsity(r: f64, seed: u64) -> Self {
        Self::new(50, 40, r, seed)
    }

    /// A lighter default suited to CIVS, whose multi-query scheme covers
    /// the ROI with many locality-sensitive regions.
    pub fn civs_default(r: f64, seed: u64) -> Self {
        Self::new(12, 16, r, seed)
    }
}

impl Default for LshParams {
    fn default() -> Self {
        Self::new(12, 16, 1.0, 0x1d5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        let p = LshParams::new(3, 4, 0.5, 7);
        assert_eq!(p.tables, 3);
        assert_eq!(p.projections, 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_r() {
        let _ = LshParams::new(1, 1, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one hash table")]
    fn rejects_zero_tables() {
        let _ = LshParams::new(0, 1, 1.0, 0);
    }

    #[test]
    fn paper_sparsity_matches_section_5_1() {
        let p = LshParams::paper_sparsity(0.3, 1);
        assert_eq!((p.tables, p.projections), (50, 40));
        assert_eq!(p.r, 0.3);
    }
}
