//! Box–Muller standard-normal sampling, shared by every hash family.
//!
//! The rand shim's core crate has no normal distribution; one local
//! implementation keeps the dependency set minimal and guarantees the
//! p-stable index, the SimHash index and the shard router all draw
//! their projections from exactly the same generator — a seed means
//! the same hyperplanes everywhere.

use rand::rngs::StdRng;
use rand::Rng;

/// One draw from N(0, 1).
pub(crate) fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn moments_are_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = sample_standard_normal(&mut rng);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
