//! Deterministic shard routing on SimHash signatures — the signature
//! exposure the sharded serving layer keys on.
//!
//! The service partitions its stream over N independent `StreamingAlid`
//! shards. For detection quality the partition must keep near
//! neighbours together (a dominant cluster split across shards is
//! detected late or not at all), and for reproducibility it must be a
//! pure function of the item — never of arrival timing or thread
//! scheduling. A single-table SimHash signature gives both: items
//! within a tight cluster share all sign bits with high probability
//! (Charikar 2002: `P[bit collision] = 1 - θ/π`), so the whole cluster
//! lands on one shard, while the mixed signature spreads distinct
//! clusters uniformly.
//!
//! [`ShardRouter::route`] is stable by construction: the hyperplanes
//! are drawn from a seeded RNG at router construction, so the same
//! `(dim, bits, seed, shard count)` maps every vector to the same
//! shard in every process, on every machine — re-ingesting a stream
//! reproduces the exact per-shard substreams, which is what makes the
//! whole service byte-reproducible.
//!
//! Raw SimHash locality is *angular*, which is wrong for L2-clustered
//! data near the origin: `(0.01, 0)` and `(0, 0.01)` are 0.01 apart
//! but 90° apart, so their sign bits disagree half the time. The
//! router therefore hashes the **homogeneous lift** `(v, 1)` instead
//! of `v`: near the origin all lifted vectors point almost parallel to
//! the bias axis (tiny angles — one shard), while far from the origin
//! the lift is a negligible rotation and behaves like plain SimHash.
//! Metric-ish locality at every scale, still a pure seeded signature.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gauss::sample_standard_normal;
use alid_affinity::fx::mix_words;

/// Hamming distance between two router signatures — the number of
/// hyperplanes the two hashed vectors fall on opposite sides of. For
/// vectors this is a *metric-ish* proximity signal (Charikar's
/// `P[bit agreement] = 1 - θ/π` per plane, on the lifted vectors):
/// fragments of one hyperplane-straddling cluster sit within a couple
/// of bits of each other by construction, which is what lets the
/// cross-shard reducer generate candidate fragment pairs from
/// signature buckets instead of an all-pairs centroid scan.
pub fn signature_hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// Deterministic vector-to-shard routing via one SimHash signature of
/// the homogeneous lift `(v, 1)`.
#[derive(Clone, Debug)]
pub struct ShardRouter {
    dim: usize,
    bits: usize,
    seed: u64,
    /// Row-major `bits x (dim + 1)` hyperplane normals over the lifted
    /// space; the last coefficient of each row multiplies the bias
    /// coordinate.
    planes: Vec<f64>,
}

impl ShardRouter {
    /// Draws `bits` random hyperplanes over the lifted
    /// `(dim + 1)`-dimensional space from the seeded generator.
    ///
    /// # Panics
    /// Panics unless `dim >= 1` and `1 <= bits <= 64`.
    pub fn new(dim: usize, bits: usize, seed: u64) -> Self {
        assert!(dim >= 1, "router dimensionality must be positive");
        assert!((1..=64).contains(&bits), "bits must be in 1..=64, got {bits}");
        let mut rng = StdRng::seed_from_u64(seed);
        let planes = (0..bits * (dim + 1)).map(|_| sample_standard_normal(&mut rng)).collect();
        Self { dim, bits, seed, planes }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Sign bits per signature.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The seed the hyperplanes were drawn from (persisted by service
    /// snapshots so a restore rebuilds the identical router).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw sign-bit signature of the lifted `(v, 1)`: bit `b` is
    /// set when the lift lies on the positive side of hyperplane `b`.
    ///
    /// # Panics
    /// Panics if `v`'s dimensionality differs from the router's.
    pub fn signature(&self, v: &[f64]) -> u64 {
        assert_eq!(v.len(), self.dim, "routed vector dimensionality mismatch");
        let width = self.dim + 1;
        let mut signature: u64 = 0;
        for b in 0..self.bits {
            let plane = &self.planes[b * width..(b + 1) * width];
            // Bias coefficient times the implicit 1.0 of the lift.
            let mut dot = plane[self.dim];
            for (p, x) in plane.iter().zip(v) {
                dot += p * x;
            }
            signature = (signature << 1) | u64::from(dot >= 0.0);
        }
        signature
    }

    /// The lifted normal of hyperplane `b` (`dim + 1` coefficients;
    /// the last one multiplies the implicit bias coordinate of the
    /// lift). Exposed so harnesses can *construct* geometry relative
    /// to the router — e.g. a cluster deliberately straddling the
    /// first hyperplane, the fixture behind the cross-shard reducer's
    /// acceptance tests.
    ///
    /// # Panics
    /// Panics if `b >= self.bits()`.
    pub fn plane(&self, b: usize) -> &[f64] {
        assert!(b < self.bits, "plane {b} out of range (bits = {})", self.bits);
        let width = self.dim + 1;
        &self.planes[b * width..(b + 1) * width]
    }

    /// [`signature_hamming`] between the signatures of two vectors:
    /// how many routing hyperplanes separate `a` from `b`.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn signature_distance(&self, a: &[f64], b: &[f64]) -> u32 {
        signature_hamming(self.signature(a), self.signature(b))
    }

    /// Every signature within Hamming distance `radius` of
    /// `signature` (the probe set of a multi-probe lookup), in a
    /// canonical order: distance ascending, flipped-bit combinations
    /// lexicographic. The identity probe (`radius = 0`) comes first.
    /// Only the router's `bits` low planes are flipped, so probes stay
    /// inside the signature space.
    ///
    /// The probe count is `Σ_{r<=radius} C(bits, r)` — with the
    /// default 16 bits, radius 2 costs 137 probes per lookup, which is
    /// how the reducer's candidate generation stays linear in the
    /// fragment count.
    ///
    /// # Panics
    /// Panics if `radius > 4` (the combinatorial blow-up past that is
    /// never what a caller wants) or `radius > bits`.
    pub fn probe_signatures(&self, signature: u64, radius: u32) -> Vec<u64> {
        assert!(radius <= 4, "probe radius {radius} explodes combinatorially (max 4)");
        assert!(radius as usize <= self.bits, "radius exceeds the signature width");
        let mut out = vec![signature];
        let mut flips: Vec<usize> = Vec::with_capacity(radius as usize);
        for r in 1..=radius {
            push_flips(signature, self.bits, r as usize, 0, &mut flips, &mut out);
        }
        out
    }

    /// The shard `v` belongs to among `shards` shards: the mixed
    /// signature reduced modulo the shard count. Locality-preserving
    /// (identical signatures — in particular, near-identical vectors —
    /// always co-locate) and stable for a fixed `(router, shards)`.
    ///
    /// # Panics
    /// Panics if `shards == 0` or on dimensionality mismatch.
    pub fn route(&self, v: &[f64], shards: usize) -> usize {
        assert!(shards >= 1, "need at least one shard");
        if shards == 1 {
            return 0;
        }
        // Mix before reducing: raw signatures are heavily structured in
        // their low bits (nearby directions share them), and the
        // modulus must see avalanche, not geometry.
        (mix_words([self.signature(v)]) % shards as u64) as usize
    }
}

/// Appends to `out` every signature obtained from `signature` by
/// flipping exactly `remaining` distinct bit positions `>= start`
/// (positions count from the low end; `bits` bounds them), in
/// lexicographic position order. `flips` is the recursion's scratch.
fn push_flips(
    signature: u64,
    bits: usize,
    remaining: usize,
    start: usize,
    flips: &mut Vec<usize>,
    out: &mut Vec<u64>,
) {
    if remaining == 0 {
        let mut s = signature;
        for &b in flips.iter() {
            s ^= 1u64 << b;
        }
        out.push(s);
        return;
    }
    for b in start..=bits - remaining {
        flips.push(b);
        push_flips(signature, bits, remaining - 1, b + 1, flips, out);
        flips.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs() -> Vec<Vec<f64>> {
        (0..256)
            .map(|i| {
                let t = i as f64;
                vec![(t * 0.37).sin() * 5.0, (t * 0.11).cos() * 3.0, t * 0.01, -t * 0.02]
            })
            .collect()
    }

    #[test]
    fn routing_is_deterministic_across_instances() {
        let a = ShardRouter::new(4, 16, 42);
        let b = ShardRouter::new(4, 16, 42);
        for v in vecs() {
            assert_eq!(a.signature(&v), b.signature(&v));
            for shards in [1usize, 2, 3, 8] {
                assert_eq!(a.route(&v, shards), b.route(&v, shards));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_partitions() {
        let a = ShardRouter::new(4, 16, 1);
        let b = ShardRouter::new(4, 16, 2);
        let moved = vecs().iter().filter(|v| a.route(v, 8) != b.route(v, 8)).count();
        assert!(moved > 64, "independent seeds should reshuffle most items, moved {moved}");
    }

    #[test]
    fn near_duplicates_co_locate() {
        let r = ShardRouter::new(4, 16, 7);
        for v in vecs() {
            let jittered: Vec<f64> = v.iter().map(|x| x + 1e-9).collect();
            // 1e-9 jitter flips a sign bit only for points essentially
            // on a hyperplane; none of the fixture points are.
            assert_eq!(r.route(&v, 8), r.route(&jittered, 8), "{v:?}");
        }
    }

    #[test]
    fn shards_are_reasonably_balanced() {
        let r = ShardRouter::new(4, 16, 9);
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for v in vecs() {
            counts[r.route(&v, shards)] += 1;
        }
        // 256 structured items over 4 shards: no shard empty, none
        // hoarding more than 60%.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 0, "shard {s} empty: {counts:?}");
            assert!(c < 154, "shard {s} overloaded: {counts:?}");
        }
    }

    #[test]
    fn tight_l2_clusters_mostly_co_locate_even_near_the_origin() {
        // The homogeneous lift's raison d'être: a radius-0.05 cluster
        // straddling the origin has members pointing in *every*
        // direction, so raw angular SimHash scatters it uniformly.
        // Lifted, the members subtend ~0.1 rad and land almost
        // entirely on one shard. (Exact co-location is probabilistic —
        // a member within ~0.1 rad of some hyperplane still flips a
        // bit — which is precisely the split the cross-shard top-k
        // merge is documented to tolerate; see DESIGN.md.)
        let r = ShardRouter::new(2, 16, 3);
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..40 {
            let t = i as f64;
            let v = [(t * 0.7).sin() * 0.05, (t * 1.3).cos() * 0.05];
            *counts.entry(r.route(&v, 8)).or_insert(0usize) += 1;
        }
        let modal = *counts.values().max().unwrap();
        assert!(modal >= 35, "origin cluster scattered: {counts:?}");
    }

    #[test]
    fn signature_distance_counts_separating_planes() {
        assert_eq!(signature_hamming(0b1010, 0b1010), 0);
        assert_eq!(signature_hamming(0b1010, 0b0011), 2);
        let r = ShardRouter::new(2, 16, 3);
        for v in [[0.3, -1.2], [5.0, 2.0]] {
            assert_eq!(r.signature_distance(&v, &v), 0);
        }
        // Consistent with the raw signatures.
        let (a, b) = ([0.3, -1.2], [4.0, 9.5]);
        assert_eq!(
            r.signature_distance(&a, &b),
            signature_hamming(r.signature(&a), r.signature(&b))
        );
    }

    #[test]
    fn probe_signatures_cover_exactly_the_hamming_ball() {
        let r = ShardRouter::new(2, 6, 0);
        let sig = r.signature(&[0.4, -0.7]) & 0x3f;
        for radius in 0..=2u32 {
            let probes = r.probe_signatures(sig, radius);
            // Count = sum of binomials; all distinct; all within radius.
            let expect: usize = (0..=radius).map(|k| binom(6, k as usize)).sum();
            assert_eq!(probes.len(), expect, "radius {radius}");
            let mut dedup = probes.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), probes.len(), "radius {radius}: duplicate probes");
            assert_eq!(probes[0], sig, "identity probe first");
            for p in &probes {
                assert!(signature_hamming(*p, sig) <= radius);
                assert_eq!(p >> 6, 0, "probes must stay inside the signature width");
            }
            // Every 6-bit word within the ball is present.
            for w in 0..64u64 {
                assert_eq!(
                    probes.contains(&w),
                    signature_hamming(w, sig) <= radius,
                    "radius {radius}, word {w:#b}"
                );
            }
        }
    }

    fn binom(n: usize, k: usize) -> usize {
        (1..=k).fold(1, |acc, i| acc * (n - k + i) / i)
    }

    #[test]
    #[should_panic(expected = "combinatorially")]
    fn probe_radius_is_capped() {
        let r = ShardRouter::new(2, 16, 0);
        let _ = r.probe_signatures(0, 5);
    }

    #[test]
    fn plane_exposes_the_lifted_normals() {
        let r = ShardRouter::new(3, 8, 11);
        for b in 0..8 {
            assert_eq!(r.plane(b).len(), 4, "dim + 1 coefficients");
        }
        // The exposed normal reproduces the signature bit: plane 0 is
        // the *top* bit of the signature (bits shift in MSB-first).
        for v in vecs().iter().map(|v| &v[..3]) {
            let w = r.plane(0);
            let dot = w[3] + w.iter().zip(v).map(|(p, x)| p * x).sum::<f64>();
            let top_bit = (r.signature(v) >> 7) & 1;
            assert_eq!(top_bit == 1, dot >= 0.0, "{v:?}");
        }
    }

    #[test]
    fn single_shard_short_circuits() {
        let r = ShardRouter::new(2, 8, 0);
        assert_eq!(r.route(&[1.0, 2.0], 1), 0);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn rejects_wrong_dim() {
        let r = ShardRouter::new(3, 8, 0);
        let _ = r.signature(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn rejects_oversized_bits() {
        let _ = ShardRouter::new(3, 65, 0);
    }
}
