//! p-stable Locality Sensitive Hashing (Datar, Immorlica, Indyk &
//! Mirrokni, SoCG 2004) as used by the ALID paper.
//!
//! ALID needs a fixed-radius near-neighbour oracle three times over:
//!
//! 1. **CIVS** (Section 4.3) queries the index with every supporting
//!    data item of the current local dense subgraph and keeps the hits
//!    that fall inside the ROI hyperball;
//! 2. the **sparsification study** (Section 5.1) builds the sparse
//!    affinity matrices AP/SEA/IID run on from hash-collision neighbour
//!    lists, with the segment length `r` steering the sparse degree;
//! 3. **PALID** (Section 4.6) samples its initial seeds from hash
//!    buckets holding more than five items.
//!
//! Each of `l` tables hashes a point `v` with `mu` independent functions
//! `h(v) = floor((w . v + b) / r)` where `w` has i.i.d. standard-normal
//! coordinates (2-stable) and `b ~ U[0, r)`; the `mu` quantised
//! projections are mixed into one 64-bit bucket key. The index supports
//! tombstone deletion so the peeling loop can retire detected clusters
//! without rebuilding, and keeps an inverted list from item to buckets
//! (the paper stores the same and skips storing hash keys).

#![warn(missing_docs)]
pub mod collision;
mod gauss;
pub mod index;
pub mod params;
pub mod route;
pub mod simhash;

pub use collision::collision_probability;
pub use index::LshIndex;
pub use params::LshParams;
pub use route::{signature_hamming, ShardRouter};
pub use simhash::{SimHashIndex, SimHashParams};
