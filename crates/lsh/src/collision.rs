//! The collision-probability model of p-stable LSH.
//!
//! For the 2-stable (Gaussian) family with segment length `r`, two
//! points at Euclidean distance `u` collide under a single hash function
//! with probability (Datar et al. 2004, Eq. for p(u)):
//!
//! ```text
//! p(u) = 1 - 2*Phi(-r/u) - (2u / (sqrt(2*pi) * r)) * (1 - exp(-r^2 / (2u^2)))
//! ```
//!
//! where `Phi` is the standard normal CDF. The function decreases
//! monotonically in `u`, which is exactly the locality-sensitivity
//! property the CIVS convergence proof (Proposition 2 in the paper's
//! appendix) relies on: the recall for items of a dense cluster is lower
//! bounded by a constant `p > 0`.

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// Standard normal CDF via the error function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x * FRAC_1_SQRT_2))
}

/// Abramowitz & Stegun 7.1.26 rational approximation of `erf`
/// (absolute error below 1e-5, ample for recall estimates).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Probability that two points at L2 distance `u` fall into the same
/// segment under one Gaussian p-stable hash function with segment
/// length `r`.
///
/// Returns 1 for `u == 0` and handles the `u -> 0` limit smoothly.
///
/// # Panics
/// Panics if `u < 0` or `r <= 0`.
pub fn collision_probability(u: f64, r: f64) -> f64 {
    assert!(u >= 0.0, "distance must be non-negative");
    assert!(r > 0.0, "segment length must be positive");
    if u == 0.0 {
        return 1.0;
    }
    let ru = r / u;
    let p = 1.0
        - 2.0 * normal_cdf(-ru)
        - (2.0 / ((2.0 * PI).sqrt() * ru)) * (1.0 - (-ru * ru / 2.0).exp());
    p.clamp(0.0, 1.0)
}

/// Probability that two points at distance `u` share a bucket in at
/// least one of `tables` tables of `projections` concatenated hash
/// functions — the recall lower bound used when reasoning about CIVS.
pub fn multi_table_recall(u: f64, r: f64, projections: usize, tables: usize) -> f64 {
    let p1 = collision_probability(u, r).powi(projections as i32);
    1.0 - (1.0 - p1).powi(tables as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_known_values() {
        // erf(0)=0, erf(1)≈0.8427, erf(-1)≈-0.8427, erf(2)≈0.9953;
        // the A&S 7.1.26 approximation is good to ~1e-5 absolute.
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-4);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-4);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-4);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn collision_probability_boundaries() {
        assert_eq!(collision_probability(0.0, 1.0), 1.0);
        // Far beyond r, collisions become rare.
        assert!(collision_probability(100.0, 1.0) < 0.02);
    }

    #[test]
    fn collision_probability_is_monotone_in_distance() {
        let r = 1.0;
        let mut prev = collision_probability(0.0, r);
        for step in 1..50 {
            let u = step as f64 * 0.2;
            let p = collision_probability(u, r);
            assert!(p <= prev + 1e-12, "p(u) must not increase with distance");
            prev = p;
        }
    }

    #[test]
    fn collision_probability_grows_with_r() {
        let u = 1.0;
        assert!(collision_probability(u, 0.5) < collision_probability(u, 2.0));
    }

    #[test]
    fn multi_table_recall_improves_with_tables() {
        let (u, r, mu) = (1.0, 1.0, 8);
        let one = multi_table_recall(u, r, mu, 1);
        let many = multi_table_recall(u, r, mu, 20);
        assert!(many > one);
        assert!(many <= 1.0);
    }

    #[test]
    fn more_projections_sharpen_selectivity() {
        // Concatenating more functions lowers the collision chance for
        // far pairs faster than for near pairs.
        let r = 1.0;
        let near = 0.2;
        let far = 3.0;
        let ratio4 =
            multi_table_recall(near, r, 4, 1) / multi_table_recall(far, r, 4, 1).max(1e-300);
        let ratio16 =
            multi_table_recall(near, r, 16, 1) / multi_table_recall(far, r, 16, 1).max(1e-300);
        assert!(ratio16 > ratio4);
    }
}
