//! Property-based tests of the LSH substrates: determinism, tombstone
//! laws, and locality (nearer pairs collide at least as often as far
//! pairs, on average over hash draws).

use alid_affinity::cost::CostModel;
use alid_affinity::vector::Dataset;
use alid_lsh::collision::collision_probability;
use alid_lsh::simhash::{SimHashIndex, SimHashParams};
use alid_lsh::{LshIndex, LshParams};
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(-10.0f64..10.0, 3 * 5..=3 * 20).prop_map(|flat| {
        let n = flat.len() / 3;
        Dataset::from_flat(3, flat[..3 * n].to_vec())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every item collides with itself (recall of the query point is 1).
    #[test]
    fn self_collision_always(ds in dataset(), seed in 0u64..1000) {
        let idx = LshIndex::build(&ds, LshParams::new(4, 4, 1.0, seed), &CostModel::shared());
        for i in 0..ds.len() {
            let hits = idx.query(ds.get(i));
            prop_assert!(hits.contains(&(i as u32)), "item {i} missing from its own query");
        }
    }

    /// Query results are sorted, deduplicated, and only contain alive ids.
    #[test]
    fn query_output_wellformed(ds in dataset(), seed in 0u64..1000, dead in 0usize..5) {
        let mut idx =
            LshIndex::build(&ds, LshParams::new(4, 4, 1.0, seed), &CostModel::shared());
        let dead = dead % ds.len();
        idx.remove(dead as u32);
        for i in 0..ds.len() {
            let hits = idx.query(ds.get(i));
            let mut sorted = hits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&hits, &sorted);
            prop_assert!(!hits.contains(&(dead as u32)));
            prop_assert!(hits.iter().all(|&h| (h as usize) < ds.len()));
        }
    }

    /// Tombstoning then restoring returns exactly the original result.
    #[test]
    fn restore_undoes_removal(ds in dataset(), seed in 0u64..1000) {
        let mut idx =
            LshIndex::build(&ds, LshParams::new(4, 4, 1.0, seed), &CostModel::shared());
        let before = idx.query(ds.get(0));
        for i in 0..ds.len() as u32 {
            idx.remove(i);
        }
        prop_assert!(idx.query(ds.get(0)).is_empty());
        idx.restore_all();
        prop_assert_eq!(idx.query(ds.get(0)), before);
    }

    /// The theoretical collision model is monotone: for any r, nearer
    /// distances never have lower collision probability.
    #[test]
    fn collision_model_monotone(r in 0.05f64..5.0, d1 in 0.0f64..10.0, d2 in 0.0f64..10.0) {
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(collision_probability(near, r) >= collision_probability(far, r) - 1e-12);
    }

    /// SimHash: queries are well-formed and self-collision holds.
    #[test]
    fn simhash_wellformed(ds in dataset(), seed in 0u64..1000) {
        let idx = SimHashIndex::build(&ds, SimHashParams::new(4, 6, seed), &CostModel::shared());
        for i in 0..ds.len() {
            let hits = idx.query(ds.get(i));
            prop_assert!(hits.contains(&(i as u32)));
            let mut sorted = hits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(hits, sorted);
        }
    }

    /// SimHash recall model: more tables never reduce recall, more bits
    /// never increase it.
    #[test]
    fn simhash_recall_model_monotone(theta in 0.01f64..3.0, tables in 1usize..20, bits in 1usize..20) {
        let ds = Dataset::from_flat(3, vec![1.0, 0.0, 0.0]);
        let base = SimHashIndex::build(&ds, SimHashParams::new(tables, bits, 1), &CostModel::shared());
        let more_tables =
            SimHashIndex::build(&ds, SimHashParams::new(tables + 1, bits, 1), &CostModel::shared());
        let more_bits =
            SimHashIndex::build(&ds, SimHashParams::new(tables, bits + 1, 1), &CostModel::shared());
        prop_assert!(more_tables.recall(theta) >= base.recall(theta) - 1e-12);
        prop_assert!(more_bits.recall(theta) <= base.recall(theta) + 1e-12);
    }
}
