//! Property-based tests of the game dynamics and the ROI guarantee on
//! randomly generated instances.

use alid_affinity::cost::CostModel;
use alid_affinity::dense::DenseAffinity;
use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::local::LocalAffinity;
use alid_affinity::simplex;
use alid_affinity::vector::Dataset;
use alid_core::lid::{lid_converge, lid_step, LidState};
use alid_core::roi::Roi;
use proptest::prelude::*;

/// Random 2-d point sets of 4..=12 points in a [0, 5]^2 box.
fn points() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(0.0f64..5.0, 2 * 4..=2 * 12).prop_map(|flat| {
        let n = flat.len() / 2;
        Dataset::from_flat(2, flat[..2 * n].to_vec())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 2: every LID step strictly increases π (up to the
    /// numerical tolerance used for selection).
    #[test]
    fn lid_density_is_monotone(ds in points(), k in 0.2f64..2.0, start in 0usize..4) {
        let kernel = LaplacianKernel::l2(k);
        let beta: Vec<u32> = (0..ds.len() as u32).collect();
        let mut aff = LocalAffinity::new(&ds, kernel, CostModel::shared(), beta);
        let start = start % ds.len();
        let mut state = LidState::from_vertex(&mut aff, start);
        let mut last = state.density();
        for _ in 0..100 {
            match lid_step(&mut aff, &mut state, 1e-10) {
                Some(pi) => {
                    prop_assert!(pi >= last - 1e-9, "π decreased: {pi} < {last}");
                    last = pi;
                }
                None => break,
            }
        }
    }

    /// LID's converged state is a KKT point of the StQP: no vertex in
    /// the range is infective (Theorem 1).
    #[test]
    fn lid_converges_to_kkt_point(ds in points(), k in 0.2f64..2.0) {
        let kernel = LaplacianKernel::l2(k);
        let beta: Vec<u32> = (0..ds.len() as u32).collect();
        let mut aff = LocalAffinity::new(&ds, kernel, CostModel::shared(), beta);
        let mut state = LidState::from_vertex(&mut aff, 0);
        let out = lid_converge(&mut aff, &mut state, 20_000, 1e-10);
        prop_assume!(out.converged);
        let pi = out.density;
        // Verify against the *full* matrix, not the incremental g.
        let dense = DenseAffinity::build(&ds, &kernel, CostModel::shared());
        let mut ax = vec![0.0; ds.len()];
        dense.matvec(&state.x, &mut ax);
        for (i, &a) in ax.iter().enumerate() {
            prop_assert!(
                a - pi <= 1e-6 * (1.0 + pi),
                "vertex {i} still infective: (Ax)_i = {a}, π = {pi}"
            );
            if state.x[i] > 1e-9 {
                // Support members sit exactly at the density (KKT
                // complementarity).
                prop_assert!(
                    (a - pi).abs() <= 1e-6 * (1.0 + pi),
                    "support vertex {i} off the density: {a} vs {pi}"
                );
            }
        }
        prop_assert!(simplex::is_on_simplex(&state.x, 1e-9));
    }

    /// Proposition 1 on random instances: items inside the inner ball
    /// are infective, items outside the outer ball are immune.
    #[test]
    fn roi_double_deck_guarantee(ds in points(), k in 0.2f64..2.0) {
        let kernel = LaplacianKernel::l2(k);
        let beta: Vec<u32> = (0..ds.len() as u32).collect();
        let mut aff = LocalAffinity::new(&ds, kernel, CostModel::shared(), beta.clone());
        let mut state = LidState::from_vertex(&mut aff, 0);
        let out = lid_converge(&mut aff, &mut state, 20_000, 1e-12);
        prop_assume!(out.converged && out.density > 1e-6);
        let sup = state.support();
        let alpha: Vec<u32> = sup.iter().map(|&p| beta[p]).collect();
        let weights: Vec<f64> = sup.iter().map(|&p| state.x[p]).collect();
        let roi = Roi::estimate(&ds, &kernel, &alpha, &weights, out.density);
        prop_assert!(roi.r_out >= roi.r_in);

        let dense = DenseAffinity::build(&ds, &kernel, CostModel::shared());
        let mut x_full = vec![0.0; ds.len()];
        for (&a, &w) in alpha.iter().zip(&weights) {
            x_full[a as usize] = w;
        }
        let mut ax = vec![0.0; ds.len()];
        dense.matvec(&x_full, &mut ax);
        let pi = dense.quadratic_form(&x_full);
        for (j, &axj) in ax.iter().enumerate() {
            let dist = kernel.norm.distance(ds.get(j), &roi.center);
            if dist < roi.r_in - 1e-9 {
                prop_assert!(axj - pi > -1e-7, "inner-ball item {j} not infective");
            }
            if dist > roi.r_out + 1e-9 {
                prop_assert!(axj - pi < 1e-7, "outer-ball item {j} not immune");
            }
        }
    }

    /// The incremental product vector g never drifts from the direct
    /// product A_{β,sup} x_sup.
    #[test]
    fn lid_product_vector_stays_exact(ds in points(), k in 0.2f64..2.0) {
        let kernel = LaplacianKernel::l2(k);
        let beta: Vec<u32> = (0..ds.len() as u32).collect();
        let mut aff = LocalAffinity::new(&ds, kernel, CostModel::shared(), beta);
        let mut state = LidState::from_vertex(&mut aff, 0);
        let _ = lid_converge(&mut aff, &mut state, 500, 1e-10);
        let dense = DenseAffinity::build(&ds, &kernel, CostModel::shared());
        let mut want = vec![0.0; ds.len()];
        dense.matvec(&state.x, &mut want);
        for (g, w) in state.g.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-7, "g drifted: {g} vs {w}");
        }
    }
}
