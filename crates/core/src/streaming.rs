//! Online ALID — the extension the paper announces as future work
//! (Section 6: "we will further extend ALID towards the online version
//! to efficiently process streaming data sources").
//!
//! The streaming driver keeps the batch algorithm's building blocks and
//! adds an ingest path:
//!
//! * every arriving item is appended to the data set and hashed into
//!   the (incrementally growing) LSH index;
//! * if the item is *infective* against some existing dominant cluster
//!   — `π(s_new, x_c) >= π(x_c)`, the same criterion the batch dynamics
//!   use (Section 3) — it is attached to the densest such cluster and
//!   the cluster's density is updated incrementally;
//! * otherwise it is buffered, and every `batch` arrivals the buffer is
//!   swept by the regular detection loop (assigned items tombstoned, so
//!   detections run on the unexplained residue only), promoting any new
//!   dominant cluster that has formed.
//!
//! Attachment keeps clusters on *uniform* weights (an m-clique's
//! converged weights are near-uniform; exactness is restored whenever a
//! sweep re-detects), which allows O(|c|) incremental density updates:
//! with `S = Σ_j a(new, j)` over current members,
//! `π_{m+1} = (π_m · m² + 2S) / (m+1)²`.

use std::sync::Arc;

use alid_affinity::block::BlockEval;
use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_affinity::cost::CostModel;
use alid_affinity::vector::Dataset;
use alid_lsh::LshIndex;

use crate::config::AlidParams;
use crate::peel::{peel_pass, PeelStats};

/// What happened to one ingested item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamUpdate {
    /// Joined an existing dominant cluster (index into
    /// [`StreamingAlid::clusters`]) — either directly on the ingest
    /// path, or through the second-chance re-test of the sweep the
    /// ingest triggered (when that sweep promoted nothing new).
    Attached(usize),
    /// Buffered as unexplained; a later sweep may promote it. Never
    /// returned while [`StreamingAlid::assignments`] explains the item
    /// — `Buffered` and a `Some` assignment are mutually exclusive.
    Buffered,
    /// The ingest triggered a sweep that promoted this many new
    /// dominant clusters. The item itself may be in one of them, or
    /// attached to an older cluster — consult
    /// [`StreamingAlid::assignments`] for its fate.
    SweptNewClusters(usize),
}

/// The cheap per-cluster merge evidence the cross-shard reducer keys
/// on: a centroid for candidate-pair generation (fragments of one
/// straddling cluster have near-identical router signatures *because*
/// their centroids nearly coincide) and a bounded support sample for
/// the kernel-affinity test, so testing a candidate pair costs
/// `O(cap² · d)` regardless of cluster size.
#[derive(Clone, Debug, PartialEq)]
pub struct MergeEvidence {
    /// Unweighted member centroid, accumulated in ascending member
    /// order — a pure function of the member *set*, so a restored
    /// instance reproduces it bit-for-bit (an incrementally maintained
    /// sum would depend on attachment order and break that).
    pub centroid: Vec<f64>,
    /// At most `cap` member vectors, strided evenly across the
    /// ascending member list (deterministic in the member set alone).
    pub sample: Vec<Vec<f64>>,
}

/// Incremental dominant-cluster maintenance over a stream.
pub struct StreamingAlid {
    params: AlidParams,
    cost: Arc<CostModel>,
    data: Dataset,
    index: LshIndex,
    clusters: Vec<DetectedCluster>,
    /// Per-cluster pairwise-affinity sums (for O(|c|) density updates).
    pair_sums: Vec<f64>,
    assigned: Vec<Option<usize>>,
    pending: Vec<u32>,
    batch: usize,
    since_sweep: usize,
    stats: PeelStats,
}

impl StreamingAlid {
    /// An empty stream processor. `batch` is the sweep period (how many
    /// arrivals between detection passes over the buffer).
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn new(dim: usize, params: AlidParams, batch: usize, cost: Arc<CostModel>) -> Self {
        assert!(batch > 0, "sweep period must be positive");
        let data = Dataset::new(dim);
        let index = LshIndex::build(&data, params.lsh, &cost);
        Self {
            params,
            cost,
            data,
            index,
            clusters: Vec::new(),
            pair_sums: Vec::new(),
            assigned: Vec::new(),
            pending: Vec::new(),
            batch,
            since_sweep: 0,
            stats: PeelStats::default(),
        }
    }

    /// Items seen so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no item has arrived yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The current dominant clusters.
    pub fn clusters(&self) -> &[DetectedCluster] {
        &self.clusters
    }

    /// Per-item assignment (`None` = currently unexplained).
    pub fn assignments(&self) -> &[Option<usize>] {
        &self.assigned
    }

    /// Currently buffered (unexplained) items.
    pub fn pending(&self) -> &[u32] {
        &self.pending
    }

    /// Auxiliary bytes the LSH index's tombstone compaction has
    /// returned over this stream's lifetime. Zero today — the streaming
    /// sweep's tombstones are transient (assigned items must stay
    /// queryable for future attachment), so it never compacts — but the
    /// service's sweep journal records the per-sweep delta, reserving
    /// the frame field for the eviction work of ROADMAP item 4.
    pub fn aux_freed_total(&self) -> u64 {
        self.index.freed_bytes_total()
    }

    // --- Persistence surface -------------------------------------------
    //
    // The accessors below, together with [`Self::from_state`], are the
    // **stable persistence surface** of the streaming driver: everything
    // a snapshot codec needs to capture the full behavioural state and
    // reconstruct an instance that continues bit-for-bit identically to
    // one that was never persisted. The LSH index is deliberately *not*
    // part of the surface — it is a pure function of `(params.lsh,
    // data)` and is rebuilt by replaying the insert path, which is
    // proven equivalent to the incremental build
    // (`insert_equivalent_to_batch_build` in `alid-lsh`). Telemetry
    // ([`Self::peel_stats`]) is excluded too: it never feeds back into
    // detection.

    /// The parameters this stream was configured with (persistence
    /// surface; also what a snapshot must reproduce for determinism).
    pub fn params(&self) -> &AlidParams {
        &self.params
    }

    /// The sweep period (persistence surface).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Arrivals since the last sweep (persistence surface; restoring
    /// this keeps the next sweep on the uninterrupted schedule).
    pub fn since_sweep(&self) -> usize {
        self.since_sweep
    }

    /// Every item seen so far, in arrival order (persistence surface).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Per-cluster pairwise-affinity sums backing the O(|c|)
    /// incremental density updates (persistence surface; parallel to
    /// [`Self::clusters`]).
    pub fn pair_sums(&self) -> &[f64] {
        &self.pair_sums
    }

    /// Reconstructs a stream processor from persisted state — the
    /// inverse of reading the persistence-surface accessors.
    ///
    /// The LSH index is rebuilt by replaying every row of `data`
    /// through the streaming insert path, exactly as the uninterrupted
    /// instance built it, so queries — and therefore every future
    /// attachment and sweep — are byte-identical to an instance that
    /// never round-tripped. `cost` accounts the rebuilt index's memory
    /// afresh (the paper's Section 4.3 numbers describe the live
    /// process, not the snapshot history).
    ///
    /// # Panics
    /// Panics if `batch == 0`, if the per-item vectors of `assigned`
    /// do not match `data`, if `clusters` and `pair_sums` lengths
    /// differ, or if any cluster/pending/assignment index is out of
    /// bounds — corrupt snapshots fail loudly instead of detecting
    /// nonsense.
    #[allow(clippy::too_many_arguments)]
    pub fn from_state(
        params: AlidParams,
        batch: usize,
        cost: Arc<CostModel>,
        data: Dataset,
        clusters: Vec<DetectedCluster>,
        pair_sums: Vec<f64>,
        assigned: Vec<Option<usize>>,
        pending: Vec<u32>,
        since_sweep: usize,
    ) -> Self {
        assert!(batch > 0, "sweep period must be positive");
        let n = data.len();
        assert_eq!(assigned.len(), n, "assignment vector length mismatch");
        assert_eq!(clusters.len(), pair_sums.len(), "clusters/pair_sums length mismatch");
        for (i, a) in assigned.iter().enumerate() {
            if let Some(c) = a {
                assert!(*c < clusters.len(), "item {i} assigned to unknown cluster {c}");
            }
        }
        for c in &clusters {
            for &m in &c.members {
                assert!((m as usize) < n, "cluster member {m} out of bounds");
            }
        }
        for &p in &pending {
            assert!((p as usize) < n, "pending item {p} out of bounds");
        }
        // Replay the insert path row by row: identical code path —
        // identical buckets — to the instance being restored.
        let mut index = LshIndex::build(&Dataset::new(data.dim()), params.lsh, &cost);
        for row in data.iter() {
            index.insert(row);
        }
        Self {
            params,
            cost,
            data,
            index,
            clusters,
            pair_sums,
            assigned,
            pending,
            batch,
            since_sweep,
            stats: PeelStats::default(),
        }
    }

    /// Most recent speculative rounds retained in
    /// [`Self::peel_stats`]'s per-round history (totals are never
    /// trimmed) — keeps a long-lived stream's telemetry bounded.
    pub const MAX_STATS_ROUNDS: usize = 256;

    /// Conflict telemetry accumulated across every sweep's peel pass
    /// (see [`PeelStats`]; empty until the first sweep detects). The
    /// totals cover the stream's whole lifetime; the per-round history
    /// holds at most [`Self::MAX_STATS_ROUNDS`] recent rounds.
    pub fn peel_stats(&self) -> &PeelStats {
        &self.stats
    }

    /// The merge evidence of cluster `c` with a support sample of at
    /// most `sample_cap` members — see [`MergeEvidence`]. Everything
    /// is derived canonically from the member set (centroid summed in
    /// ascending member order, sample strided across the ascending
    /// member list), so two instances holding the same cluster —
    /// live, restored, or reached on different worker counts — emit
    /// bit-identical evidence.
    ///
    /// # Panics
    /// Panics if `c` is out of bounds or `sample_cap == 0`.
    pub fn merge_evidence(&self, c: usize, sample_cap: usize) -> MergeEvidence {
        assert!(sample_cap >= 1, "sample cap must be positive");
        let members = &self.clusters[c].members;
        let dim = self.data.dim();
        let mut centroid = vec![0.0; dim];
        for &m in members {
            for (acc, &x) in centroid.iter_mut().zip(self.data.get(m as usize)) {
                *acc += x;
            }
        }
        let inv = 1.0 / members.len() as f64;
        for x in &mut centroid {
            *x *= inv;
        }
        let m = members.len();
        let take = m.min(sample_cap);
        // Evenly strided picks: indices i*m/take are strictly
        // increasing for take <= m, covering the whole span.
        let sample =
            (0..take).map(|i| self.data.get(members[i * m / take] as usize).to_vec()).collect();
        MergeEvidence { centroid, sample }
    }

    /// The current state as a [`Clustering`] over all items seen.
    pub fn snapshot(&self) -> Clustering {
        Clustering { n: self.data.len(), clusters: self.clusters.clone() }
    }

    /// Ingests one item.
    pub fn push(&mut self, v: &[f64]) -> StreamUpdate {
        let id = self.index.insert(v);
        self.data.push(v);
        self.assigned.push(None);
        self.since_sweep += 1;
        if let Some(c) = self.try_attach(id) {
            self.assigned[id as usize] = Some(c);
            return StreamUpdate::Attached(c);
        }
        self.pending.push(id);
        if self.since_sweep >= self.batch {
            let promoted = self.sweep();
            if promoted > 0 {
                return StreamUpdate::SweptNewClusters(promoted);
            }
            // The sweep promoted nothing, but its second-chance re-test
            // (which sees *all* clusters, not just the ingest path's
            // LSH collisions) may still have attached this very item —
            // report that, not `Buffered`, so the return value never
            // contradicts `assignments()`.
            if let Some(c) = self.assigned[id as usize] {
                return StreamUpdate::Attached(c);
            }
        }
        StreamUpdate::Buffered
    }

    /// The infective-attachment test on the ingest path: candidate
    /// clusters come from the item's LSH collisions, so the test is
    /// local (`O(collisions + |c|)` per arrival).
    fn try_attach(&mut self, id: u32) -> Option<usize> {
        let hits = self.index.query(self.data.get(id as usize));
        let mut candidates: Vec<usize> =
            hits.iter().filter_map(|&h| self.assigned.get(h as usize).copied().flatten()).collect();
        candidates.sort_unstable();
        candidates.dedup();
        self.attach_among(id, &candidates)
    }

    /// Read-only infective-attachment evaluation: among `candidates`,
    /// the densest existing cluster that `v` would join
    /// (`π(s_new, x_c) >= π(x_c)` under uniform weights), as
    /// `(cluster, its density, Σ_j a(v, j))`, or `None` when no
    /// cluster accepts the vector. This is the **single home of the
    /// attachment rule**: the mutating ingest path
    /// ([`Self::push`] / the sweep's second chance) and external
    /// read-only probes (the service's `POST /assign`) both call it,
    /// so a probe's answer can never drift from what an actual ingest
    /// of the same vector would decide. Kernel evaluations are
    /// recorded in the shared cost model either way.
    pub fn best_infective<I>(&self, v: &[f64], candidates: I) -> Option<(usize, f64, f64)>
    where
        I: IntoIterator<Item = usize>,
    {
        let kernel = self.params.kernel;
        let mut scratch = BlockEval::new();
        let mut vals = Vec::new();
        let mut best: Option<(f64, usize, f64)> = None; // (density, cluster, S)
        for c in candidates {
            let cluster = &self.clusters[c];
            let m = cluster.members.len() as f64;
            // One blocked batch per candidate cluster; summing the
            // per-member affinities in member order reproduces the
            // scalar map-sum bit for bit.
            vals.clear();
            vals.resize(cluster.members.len(), 0.0);
            scratch.eval_indexed(&kernel, &self.data, &cluster.members, v, &mut vals);
            let s: f64 = vals.iter().sum();
            self.cost.record_kernel_evals(cluster.members.len() as u64);
            // π(s_new, x_c) with uniform weights = S / m.
            if s / m >= cluster.density && best.is_none_or(|(d, _, _)| cluster.density > d) {
                best = Some((cluster.density, c, s));
            }
        }
        best.map(|(d, c, s)| (c, d, s))
    }

    /// The infective-attachment test — [`Self::best_infective`] plus
    /// the mutation: the winner absorbs `id` with an O(|c|)
    /// incremental density update.
    fn attach_among(&mut self, id: u32, candidates: &[usize]) -> Option<usize> {
        let v = self.data.get(id as usize);
        let (c, _, s) = self.best_infective(v, candidates.iter().copied())?;
        let cluster = &mut self.clusters[c];
        let m = cluster.members.len() as f64;
        self.pair_sums[c] += s;
        cluster.members.push(id);
        cluster.members.sort_unstable();
        let m1 = m + 1.0;
        cluster.weights = vec![1.0 / m1; cluster.members.len()];
        cluster.density = 2.0 * self.pair_sums[c] / (m1 * m1);
        Some(c)
    }

    /// Runs the detection loop over the unexplained buffer, promoting
    /// new dominant clusters. Returns how many were promoted.
    pub fn sweep(&mut self) -> usize {
        self.since_sweep = 0;
        if self.pending.is_empty() {
            return 0;
        }
        // Second-chance attachment: the ingest path only sees clusters
        // its LSH collisions surface, and approximate retrieval can miss
        // a true near neighbour. The sweep is the repair phase, so every
        // buffered item is re-tested against *all* current clusters
        // directly before detection runs — attachment recall never
        // depends on hash luck.
        let mut still: Vec<u32> = Vec::new();
        // attach_among never adds clusters, so the candidate list is
        // loop-invariant.
        let all: Vec<usize> = (0..self.clusters.len()).collect();
        for id in std::mem::take(&mut self.pending) {
            match self.attach_among(id, &all) {
                Some(c) => self.assigned[id as usize] = Some(c),
                None => still.push(id),
            }
        }
        self.pending = still;
        if self.pending.is_empty() {
            return 0;
        }
        // Restrict detection to the residue: tombstone assigned items.
        // The alive set is then exactly the pending buffer (every item
        // is either assigned or pending), so the shared peel pass —
        // lowest alive seed, detect, peel, repeat, speculative
        // multi-seed rounds when `params.exec` is parallel — visits
        // precisely the seeds the old per-buffer loop did, in the same
        // order, for any worker count.
        for (i, a) in self.assigned.iter().enumerate() {
            if a.is_some() {
                self.index.remove(i as u32);
            }
        }
        self.pending.clear();
        let detections = peel_pass(
            &self.data,
            &self.params,
            &mut self.index,
            &self.cost,
            0,
            None,
            &mut self.stats,
            // Never compact here: these tombstones are transient —
            // restore_all below revives assigned items so future
            // attachment queries can still find them.
            false,
        );
        // The stream is unbounded; keep the per-round history a
        // bounded window (totals keep accumulating forever).
        self.stats.trim_rounds(Self::MAX_STATS_ROUNDS);
        let mut promoted = 0;
        let mut still_pending: Vec<u32> = Vec::new();
        for (seed, cluster) in detections {
            let is_dominant = cluster.density >= self.params.density_threshold
                && cluster.members.len() >= self.params.min_cluster_size;
            if is_dominant {
                let slot = self.clusters.len();
                for &m in &cluster.members {
                    self.assigned[m as usize] = Some(slot);
                }
                // Pairwise sum from the density identity under the
                // converged weights ~ uniform: Σpairs = π m² / 2.
                let m = cluster.members.len() as f64;
                self.pair_sums.push(cluster.density * m * m / 2.0);
                self.clusters.push(cluster);
                promoted += 1;
            } else {
                if !cluster.members.contains(&seed) {
                    still_pending.push(seed);
                }
                still_pending.extend(cluster.members);
            }
        }
        still_pending.sort_unstable();
        still_pending.dedup();
        self.pending = still_pending;
        // Everything alive again for future attachment queries.
        self.index.restore_all();
        promoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::kernel::LaplacianKernel;

    fn params() -> AlidParams {
        let kernel = LaplacianKernel::l2(1.0);
        let mut p = AlidParams::new(kernel);
        p.first_roi_radius = kernel.distance_at(0.5);
        p.density_threshold = 0.7;
        p.min_cluster_size = 3;
        p.lsh.seed = 5;
        p
    }

    fn stream() -> StreamingAlid {
        StreamingAlid::new(1, params(), 8, CostModel::shared())
    }

    #[test]
    fn cluster_emerges_from_the_buffer() {
        let mut s = stream();
        let mut promoted = 0;
        for i in 0..8 {
            match s.push(&[i as f64 * 0.05]) {
                StreamUpdate::SweptNewClusters(k) => promoted += k,
                StreamUpdate::Buffered => {}
                StreamUpdate::Attached(_) => panic!("nothing to attach to yet"),
            }
        }
        assert_eq!(promoted, 1, "the tight run must be promoted at the sweep");
        assert_eq!(s.clusters().len(), 1);
        assert_eq!(s.clusters()[0].members.len(), 8);
    }

    #[test]
    fn later_arrivals_attach_incrementally() {
        let mut s = stream();
        for i in 0..8 {
            s.push(&[i as f64 * 0.05]);
        }
        assert_eq!(s.clusters().len(), 1);
        let before = s.clusters()[0].density;
        // A new item inside the cluster's span attaches immediately.
        let upd = s.push(&[0.12]);
        assert_eq!(upd, StreamUpdate::Attached(0));
        assert_eq!(s.clusters()[0].members.len(), 9);
        let after = s.clusters()[0].density;
        assert!((after - before).abs() < 0.2, "density update stays sane");
    }

    #[test]
    fn incremental_density_matches_direct_recompute() {
        let mut s = stream();
        for i in 0..8 {
            s.push(&[i as f64 * 0.05]);
        }
        s.push(&[0.2]);
        let c = &s.clusters()[0];
        // Direct uniform-weight density over the member set.
        let kernel = params().kernel;
        let m = c.members.len();
        let mut acc = 0.0;
        for (a, &i) in c.members.iter().enumerate() {
            for &j in &c.members[a + 1..] {
                acc += kernel.eval(s.data.get(i as usize), s.data.get(j as usize));
            }
        }
        let direct = 2.0 * acc / (m as f64 * m as f64);
        assert!((c.density - direct).abs() < 0.02, "incremental {} vs direct {direct}", c.density);
    }

    #[test]
    fn noise_stays_pending_and_never_attaches() {
        let mut s = stream();
        for i in 0..8 {
            s.push(&[i as f64 * 0.05]);
        }
        let upd = s.push(&[500.0]);
        assert_eq!(upd, StreamUpdate::Buffered);
        assert!(s.pending().contains(&8));
        assert_eq!(s.assignments()[8], None);
    }

    #[test]
    fn two_interleaved_streams_form_two_clusters() {
        let mut s = stream();
        for i in 0..10 {
            s.push(&[i as f64 * 0.04]); // cluster A
            s.push(&[30.0 + i as f64 * 0.04]); // cluster B
        }
        // Force a final sweep for any tail buffer.
        s.sweep();
        let dominant = s.snapshot().dominant(0.7, 3);
        assert_eq!(dominant.len(), 2, "both interleaved clusters detected");
        let sizes: Vec<usize> = dominant.clusters.iter().map(|c| c.len()).collect();
        assert!(sizes.iter().all(|&z| z >= 8), "sizes {sizes:?}");
    }

    #[test]
    fn snapshot_covers_all_items() {
        let mut s = stream();
        for i in 0..20 {
            s.push(&[(i % 5) as f64 * 0.04 + (i / 5) as f64 * 25.0]);
        }
        s.sweep();
        let snap = s.snapshot();
        assert_eq!(snap.n, 20);
        // Assignments and cluster membership agree.
        for (i, a) in s.assignments().iter().enumerate() {
            if let Some(c) = a {
                assert!(s.clusters()[*c].members.contains(&(i as u32)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "sweep period")]
    fn zero_batch_rejected() {
        let _ = StreamingAlid::new(1, params(), 0, CostModel::shared());
    }

    /// Regression for the satellite bugfix: when the sweep a push
    /// triggered attached the item through the second-chance re-test
    /// (the ingest path's LSH lookup missed every cluster member),
    /// `push` used to return `Buffered` while `assignments()` already
    /// said `Some(c)`. The return value must report the attachment.
    #[test]
    fn sweep_second_chance_attachment_is_reported_not_buffered() {
        // A 1-table, 2-projection index makes an in-cluster item able
        // to miss every member's bucket; we sweep LSH seeds until one
        // produces that miss (everything is deterministic per seed, so
        // the scenario reproduces exactly).
        let mut exercised = 0usize;
        for lsh_seed in 0..100u64 {
            let kernel = LaplacianKernel::l2(1.0);
            let mut p = AlidParams::new(kernel);
            p.first_roi_radius = kernel.distance_at(0.5);
            p.density_threshold = 0.7;
            p.min_cluster_size = 3;
            p.lsh = alid_lsh::LshParams::new(1, 2, 0.05, lsh_seed);
            let mut s = StreamingAlid::new(1, p, 8, CostModel::shared());
            // A tight 8-item cluster; the 8th push triggers the
            // promoting sweep.
            for i in 0..8 {
                s.push(&[i as f64 * 0.01]);
            }
            if s.clusters().len() != 1 || s.clusters()[0].members.len() < 3 {
                continue; // this seed's index never assembled the cluster
            }
            // Seven far-noise arrivals re-arm the sweep counter so the
            // 16th push (id 15) sweeps again.
            for i in 0..7 {
                s.push(&[50.0 + i as f64 * 37.0]);
            }
            let x = 0.12; // infective against the cluster (π ≈ 0.84, mean affinity ≈ 0.9)
                          // The second-chance path only runs when the ingest path's
                          // LSH lookup surfaces no assigned item.
            if s.index.query(&[x]).iter().any(|&h| s.assigned[h as usize].is_some()) {
                continue; // direct attachment; not the path under test
            }
            let upd = s.push(&[x]);
            if s.assignments()[15] == Some(0) {
                exercised += 1;
                assert_eq!(
                    upd,
                    StreamUpdate::Attached(0),
                    "seed {lsh_seed}: the sweep attached the item but push reported {upd:?}"
                );
            }
        }
        assert!(exercised > 0, "no LSH seed exercised the second-chance path; retune the fixture");
    }

    /// The promoted-to-a-new-cluster flank of the same bugfix: when
    /// the triggered sweep promotes the cluster the pushed item itself
    /// belongs to, `push` reports the promotion and `assignments()`
    /// explains the item — never `Buffered`.
    #[test]
    fn sweep_promotion_of_the_pushed_item_is_reported() {
        let mut s = stream();
        for i in 0..7 {
            assert_eq!(s.push(&[i as f64 * 0.05]), StreamUpdate::Buffered);
            assert_eq!(s.assignments()[i], None);
        }
        // The 8th arrival completes the batch; the sweep it triggers
        // promotes the cluster containing this very item.
        let upd = s.push(&[7.0 * 0.05]);
        assert_eq!(upd, StreamUpdate::SweptNewClusters(1));
        assert_eq!(s.assignments()[7], Some(0), "the pushed item is in the promoted cluster");
    }

    /// Invariant the bugfix establishes: `Buffered` and a `Some`
    /// assignment are mutually exclusive, for every push in a long
    /// mixed stream.
    #[test]
    fn push_outcome_never_contradicts_assignments() {
        let mut s = stream();
        for i in 0..60 {
            // Two clusters, interleaved noise: pushes hit every branch
            // (direct attach, buffer, promoting and non-promoting
            // sweeps).
            let v = match i % 5 {
                0 | 1 => (i % 10) as f64 * 0.04,
                2 | 3 => 30.0 + (i % 10) as f64 * 0.04,
                _ => 500.0 + i as f64 * 13.0,
            };
            let id = s.len();
            let upd = s.push(&[v]);
            let assigned = s.assignments()[id];
            match upd {
                StreamUpdate::Buffered => {
                    assert_eq!(assigned, None, "push {id} said Buffered but item is assigned")
                }
                StreamUpdate::Attached(c) => assert_eq!(assigned, Some(c), "push {id}"),
                StreamUpdate::SweptNewClusters(k) => assert!(k > 0, "push {id}"),
            }
        }
    }

    #[test]
    fn streaming_sweeps_accumulate_peel_stats() {
        let mut s = stream();
        assert_eq!(s.peel_stats().speculated, 0, "no sweep has detected yet");
        for i in 0..8 {
            s.push(&[i as f64 * 0.05]);
        }
        let after_first = s.peel_stats().speculated;
        assert!(after_first > 0, "the promoting sweep ran detections");
        for i in 0..8 {
            s.push(&[100.0 + i as f64 * 29.0]); // noise: swept but never promoted
        }
        assert!(
            s.peel_stats().speculated > after_first,
            "later sweeps keep accumulating into the same stats"
        );
        assert_eq!(s.peel_stats().rounds.len(), 0, "sequential sweeps record no rounds");
    }

    #[test]
    fn merge_evidence_is_canonical_in_the_member_set() {
        let mut s = stream();
        for i in 0..8 {
            s.push(&[i as f64 * 0.05]);
        }
        assert_eq!(s.clusters().len(), 1);
        let ev = s.merge_evidence(0, 3);
        // Centroid of 0.0, 0.05, ..., 0.35 is 0.175.
        assert!((ev.centroid[0] - 0.175).abs() < 1e-12);
        assert_eq!(ev.sample.len(), 3, "bounded by the cap");
        // Strided across the ascending member list: ids 0, 2, 5.
        assert_eq!(ev.sample, vec![vec![0.0], vec![0.10], vec![0.25]]);
        // A cap above the member count takes everything.
        assert_eq!(s.merge_evidence(0, 64).sample.len(), 8);
        // A restored instance reproduces the evidence bit-for-bit.
        let rebuilt = StreamingAlid::from_state(
            *s.params(),
            s.batch(),
            CostModel::shared(),
            s.data().clone(),
            s.clusters().to_vec(),
            s.pair_sums().to_vec(),
            s.assignments().to_vec(),
            s.pending().to_vec(),
            s.since_sweep(),
        );
        let rev = rebuilt.merge_evidence(0, 3);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ev.centroid), bits(&rev.centroid));
        assert_eq!(ev.sample, rev.sample);
    }

    #[test]
    #[should_panic(expected = "sample cap")]
    fn merge_evidence_rejects_zero_cap() {
        let mut s = stream();
        for i in 0..8 {
            s.push(&[i as f64 * 0.05]);
        }
        let _ = s.merge_evidence(0, 0);
    }

    /// The persistence surface's core guarantee: capture the state
    /// mid-stream, rebuild via `from_state`, continue — every output
    /// is bit-for-bit what the uninterrupted instance produces.
    #[test]
    fn from_state_continue_is_bit_identical_to_uninterrupted() {
        let feed = |s: &mut StreamingAlid, range: std::ops::Range<usize>| {
            for i in range {
                let v = match i % 5 {
                    0 | 1 => (i % 10) as f64 * 0.04,
                    2 | 3 => 30.0 + (i % 10) as f64 * 0.04,
                    _ => 500.0 + i as f64 * 13.0,
                };
                s.push(&[v]);
            }
        };
        let mut uninterrupted = stream();
        feed(&mut uninterrupted, 0..60);

        let mut first = stream();
        feed(&mut first, 0..37); // mid-batch: since_sweep != 0
        let mut resumed = StreamingAlid::from_state(
            *first.params(),
            first.batch(),
            CostModel::shared(),
            first.data().clone(),
            first.clusters().to_vec(),
            first.pair_sums().to_vec(),
            first.assignments().to_vec(),
            first.pending().to_vec(),
            first.since_sweep(),
        );
        feed(&mut resumed, 37..60);

        assert_eq!(resumed.assignments(), uninterrupted.assignments());
        assert_eq!(resumed.pending(), uninterrupted.pending());
        assert_eq!(resumed.clusters().len(), uninterrupted.clusters().len());
        for (a, b) in resumed.clusters().iter().zip(uninterrupted.clusters()) {
            assert_eq!(a.members, b.members);
            let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
            let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(aw, bw);
            assert_eq!(a.density.to_bits(), b.density.to_bits());
        }
        let ap: Vec<u64> = resumed.pair_sums().iter().map(|x| x.to_bits()).collect();
        let bp: Vec<u64> = uninterrupted.pair_sums().iter().map(|x| x.to_bits()).collect();
        assert_eq!(ap, bp, "incremental density state diverged");
    }

    #[test]
    #[should_panic(expected = "unknown cluster")]
    fn from_state_rejects_dangling_assignment() {
        let _ = StreamingAlid::from_state(
            params(),
            8,
            CostModel::shared(),
            Dataset::from_flat(1, vec![0.0]),
            Vec::new(),
            Vec::new(),
            vec![Some(3)],
            Vec::new(),
            0,
        );
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        let run = |workers: usize| {
            let p = params().with_exec(alid_exec::ExecPolicy::workers(workers));
            let mut s = StreamingAlid::new(1, p, 8, CostModel::shared());
            // Three interleaved clusters plus scattered noise so sweeps
            // promote, reject and re-buffer across several rounds.
            for i in 0..36 {
                s.push(&[(i % 6) as f64 * 0.05 + (i / 6 % 3) as f64 * 40.0]);
                if i % 7 == 0 {
                    s.push(&[500.0 + i as f64 * 13.0]);
                }
            }
            s.sweep();
            s
        };
        let seq = run(1);
        for workers in [2usize, 4] {
            let par = run(workers);
            assert_eq!(seq.pending(), par.pending(), "{workers} workers changed the buffer");
            assert_eq!(seq.assignments(), par.assignments(), "{workers} workers");
            assert_eq!(seq.clusters().len(), par.clusters().len(), "{workers} workers");
            for (a, b) in seq.clusters().iter().zip(par.clusters()) {
                assert_eq!(a.members, b.members, "{workers} workers changed members");
                let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
                let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
                assert_eq!(aw, bw, "{workers} workers changed weights");
                assert_eq!(a.density.to_bits(), b.density.to_bits(), "{workers} workers");
            }
        }
    }
}
