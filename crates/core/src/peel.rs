//! The peeling driver — detect, peel off, repeat (Section 4.4).
//!
//! To find *all* dominant clusters, ALID adopts the same protocol as DS
//! and IID: detect one cluster, remove ("peel off") its members, and
//! reiterate on the remaining data until everything is peeled. Peeled
//! items are tombstoned in the LSH index, so subsequent detections
//! simply cannot retrieve them. The caller applies the final density
//! filter ([`alid_affinity::Clustering::dominant`]).
//!
//! # Speculative parallel peeling
//!
//! Peeling looks inherently sequential — detection `k+1` runs against
//! the index with cluster `k` already tombstoned — but detections of
//! *well-separated* clusters never observe each other, and
//! [`AlidOutcome::touched`](crate::alid::AlidOutcome) records exactly
//! what each detection observed. When [`AlidParams::exec`] is parallel,
//! [`Peeler::detect_all`] therefore speculates: it runs the next `W`
//! seeds concurrently against the round-start index, then accepts
//! results in seed order as long as each detection's read set is still
//! fully alive (i.e. disjoint from everything accepted earlier in the
//! round), falling back to re-running from the first conflicting seed.
//! Accepted results are provably the clusters the sequential protocol
//! would have produced, so **any worker count yields byte-identical
//! clusterings**. Only the clustering is schedule-invariant: the
//! shared [`CostModel`] also records the work of discarded/re-run
//! speculations, and `W` concurrent detections raise the live-entries
//! peak — cost-measured harnesses comparing growth orders should keep
//! the sequential policy (the default).
//!
//! # Adaptive round width
//!
//! A fixed `W = worker_count` wastes whole rounds on overlapping
//! clusters (every speculation past the first conflicts or is
//! absorbed) and is exactly right on well-separated ones. Since the
//! acceptance rule is width-agnostic — any prefix of the alive-seed
//! sequence speculated together commits the same accepted clusters —
//! the round width is free to track the observed conflict structure.
//! [`SpeculationParams`] (default: adaptive) applies AIMD: a fully
//! clean round doubles the width, a round with discarded work (an
//! absorbed seed or a conflict re-run) halves it, always within
//! `[1, worker_count]`. Every round is recorded in [`PeelStats`]
//! (speculated / accepted / absorbed / re-run per round), surfaced via
//! [`Peeler::detect_all_with_stats`] and
//! `StreamingAlid::peel_stats`, and summarized by the
//! `bench_speculation` harness.

use std::sync::Arc;

use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_affinity::cost::CostModel;
use alid_affinity::vector::Dataset;
use alid_lsh::LshIndex;

use crate::alid::detect_one;
use crate::config::{AlidParams, SpeculationParams};

/// Telemetry of one speculative peeling round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Seeds speculated this round (the round's width).
    pub speculated: usize,
    /// Speculations committed as clusters.
    pub accepted: usize,
    /// Speculations discarded because an earlier acceptance in the
    /// round absorbed their seed (the sequential pass would never have
    /// seeded them — nothing is re-run).
    pub absorbed: usize,
    /// Speculations discarded because their read set went stale (a
    /// conflict); they re-run against the updated index next round.
    pub rerun: usize,
}

impl RoundStats {
    /// Speculations whose detection work was thrown away.
    pub fn wasted(&self) -> usize {
        self.absorbed + self.rerun
    }
}

/// Conflict telemetry of one or more peel passes.
///
/// Totals cover sequential passes too (each sequential detection is
/// one speculated-and-accepted seed); `rounds` records only the
/// speculative multi-seed rounds a parallel policy ran, in order.
/// The telemetry is a *byproduct* of the schedule and — unlike the
/// clustering — not worker-count invariant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeelStats {
    /// Per-round telemetry of every speculative round, in order.
    pub rounds: Vec<RoundStats>,
    /// Total seeds whose detection was launched.
    pub speculated: u64,
    /// Total detections committed as clusters.
    pub accepted: u64,
    /// Total speculations discarded as absorbed.
    pub absorbed: u64,
    /// Total speculations discarded to a conflict re-run.
    pub rerun: u64,
}

impl PeelStats {
    /// Speculative rounds that hit at least one conflict re-run.
    pub fn conflict_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.rerun > 0).count()
    }

    /// Fraction of speculative rounds with a conflict (0.0 when no
    /// speculative round ran).
    pub fn conflict_rate(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.conflict_rounds() as f64 / self.rounds.len() as f64
        }
    }

    /// Total detections whose work was thrown away.
    pub fn wasted(&self) -> u64 {
        self.absorbed + self.rerun
    }

    /// Mean speculative round width (0.0 when no speculative round
    /// ran).
    pub fn mean_width(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.rounds.iter().map(|r| r.speculated as f64).sum::<f64>() / self.rounds.len() as f64
        }
    }

    /// Drops all but the most recent `keep` per-round entries. The
    /// totals are untouched — long-lived accumulators (the streaming
    /// driver) call this after every pass so `rounds` stays a bounded
    /// window of recent history instead of growing with the stream.
    pub fn trim_rounds(&mut self, keep: usize) {
        if self.rounds.len() > keep {
            self.rounds.drain(..self.rounds.len() - keep);
        }
    }

    fn record_round(&mut self, round: RoundStats) {
        let m = obs_metrics();
        m.rounds.inc();
        m.speculated.add(round.speculated as u64);
        m.accepted.add(round.accepted as u64);
        m.absorbed.add(round.absorbed as u64);
        m.rerun.add(round.rerun as u64);
        self.speculated += round.speculated as u64;
        self.accepted += round.accepted as u64;
        self.absorbed += round.absorbed as u64;
        self.rerun += round.rerun as u64;
        self.rounds.push(round);
    }

    fn record_sequential(&mut self, detections: u64) {
        let m = obs_metrics();
        m.speculated.add(detections);
        m.accepted.add(detections);
        self.speculated += detections;
        self.accepted += detections;
    }
}

/// Process-wide write-only peel telemetry — the cross-pass aggregate
/// of every [`PeelStats`] this process accumulates, published for
/// `/metrics`. `PeelStats` itself stays the per-driver source of
/// truth; these counters only ever receive the same increments.
struct PeelMetrics {
    rounds: std::sync::Arc<alid_obs::Counter>,
    speculated: std::sync::Arc<alid_obs::Counter>,
    accepted: std::sync::Arc<alid_obs::Counter>,
    absorbed: std::sync::Arc<alid_obs::Counter>,
    rerun: std::sync::Arc<alid_obs::Counter>,
}

fn obs_metrics() -> &'static PeelMetrics {
    static M: std::sync::OnceLock<PeelMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = alid_obs::global();
        PeelMetrics {
            rounds: r.counter(
                "alid_peel_rounds_total",
                "Speculative multi-seed peel rounds run",
                &[],
            ),
            speculated: r.counter(
                "alid_peel_speculated_total",
                "Seeds whose detection was launched (sequential or speculative)",
                &[],
            ),
            accepted: r.counter(
                "alid_peel_accepted_total",
                "Detections committed as clusters",
                &[],
            ),
            absorbed: r.counter(
                "alid_peel_absorbed_total",
                "Speculations discarded because an earlier acceptance absorbed their seed",
                &[],
            ),
            rerun: r.counter(
                "alid_peel_rerun_total",
                "Speculations discarded to a conflict re-run",
                &[],
            ),
        }
    })
}

/// One full detect-and-peel pass over the alive items of an existing
/// index, honouring `params.exec` (sequential scan or speculative
/// multi-seed rounds — see the module docs) and `params.speculation`
/// (round-width schedule). Seeds scan ascending from `from`; every
/// detection peels its members plus its seed; the pass stops early
/// once `limit` detections are committed. Returns `(seed, cluster)`
/// pairs in detection order — for any worker count and width schedule,
/// exactly the pairs (and, under a `limit`, exactly the prefix) the
/// sequential protocol produces. Round telemetry accumulates into
/// `stats`.
///
/// Shared by [`Peeler::detect_all`] / [`Peeler::detect_up_to`] (fresh
/// index over a batch) and `StreamingAlid::sweep` (the streaming index
/// with attached items tombstoned), so all drivers ride the same
/// speculative path.
///
/// `compact` controls whether the pass may *permanently* compact
/// peeled items out of the index's bucket lists once dead entries
/// dominate ([`LshIndex::should_compact`]): batch drivers own their
/// index and never resurrect peeled items, so they pass `true` and
/// reclaim the aux bytes; the streaming sweep's tombstones are
/// transient (`restore_all` revives assigned items for future
/// attachment), so it must pass `false`. Compaction is invisible to
/// queries, so the detected clusters are identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn peel_pass(
    ds: &Dataset,
    params: &AlidParams,
    index: &mut LshIndex,
    cost: &Arc<CostModel>,
    from: u32,
    limit: Option<usize>,
    stats: &mut PeelStats,
    compact: bool,
) -> Vec<(u32, DetectedCluster)> {
    let n = ds.len() as u32;
    let limit = limit.unwrap_or(usize::MAX);
    let mut next_seed = from;
    let mut detections = Vec::new();
    if params.exec.is_sequential() {
        while detections.len() < limit {
            let Some(seed) = next_alive_from(index, &mut next_seed, n) else { break };
            let out = detect_one(ds, params, index, seed, cost);
            index.remove(seed);
            for &m in &out.cluster.members {
                index.remove(m);
            }
            detections.push((seed, out.cluster));
            if compact && index.should_compact() {
                index.compact_tombstones();
            }
        }
        stats.record_sequential(detections.len() as u64);
        return detections;
    }
    let spec: SpeculationParams = params.speculation;
    let max_width = params.exec.worker_count();
    let mut width = spec.start_width(max_width);
    while detections.len() < limit {
        // Never speculate past the detection budget: the trailing
        // speculations could only be thrown away.
        let want = width.min(limit - detections.len());
        let Some(seeds) = next_alive_batch_from(index, &mut next_seed, n, want) else { break };
        let mut round_span = alid_obs::trace::span("peel.round");
        round_span.count("width", seeds.len() as u64);
        let outcomes = params.exec.map_tasks(&seeds, |&s| detect_one(ds, params, index, s, cost));
        // Accept speculative results in seed order while each
        // detection's read set is untouched by this round's peels.
        let mut round = RoundStats { speculated: seeds.len(), ..RoundStats::default() };
        let mut resume = None;
        for (k, out) in outcomes.into_iter().enumerate() {
            let seed = seeds[k];
            if k > 0 {
                if !index.is_alive(seed) {
                    // An accepted cluster absorbed this seed; the
                    // sequential pass would never seed it. Its
                    // speculative result is simply discarded.
                    round.absorbed += 1;
                    continue;
                }
                // Tombstones older than this round can never appear in
                // `touched` (the detection could not retrieve them), so
                // any dead read-set entry was peeled by an earlier
                // acceptance *in this round* — the trace is stale and
                // everything from here on must be re-run against the
                // updated index.
                if out.touched.iter().any(|&t| !index.is_alive(t)) {
                    resume = Some(seed);
                    // The conflicting seed and every *alive* seed after
                    // it re-run next round; trailing seeds already
                    // peeled by this round's acceptances never will —
                    // the sequential protocol classifies them absorbed.
                    round.rerun = 1;
                    for &s in &seeds[k + 1..] {
                        if index.is_alive(s) {
                            round.rerun += 1;
                        } else {
                            round.absorbed += 1;
                        }
                    }
                    break;
                }
            }
            index.remove(seed);
            for &m in &out.cluster.members {
                index.remove(m);
            }
            detections.push((seed, out.cluster));
            round.accepted += 1;
        }
        next_seed = resume.unwrap_or_else(|| seeds.last().map(|&s| s + 1).unwrap_or(next_seed));
        width = spec.next_width(seeds.len(), round.wasted(), max_width);
        round_span.count("accepted", round.accepted as u64);
        round_span.count("absorbed", round.absorbed as u64);
        round_span.count("rerun", round.rerun as u64);
        drop(round_span);
        stats.record_round(round);
        if compact && index.should_compact() {
            index.compact_tombstones();
        }
    }
    detections
}

/// Runs the full detect-and-peel protocol on an arbitrary *member
/// union* of an existing data set — the entry point the cross-shard
/// reducer uses to re-detect on the union of candidate fragments
/// (PALID's reduce phase on partitioned data must *unify* a dominant
/// cluster whose members landed in different partitions, not merely
/// rank the fragments).
///
/// `subset` lists the rows to detect over, strictly ascending. The
/// rows are compacted into a private [`Dataset`], a fresh LSH index is
/// built over them with `params.lsh`, and the shared [`peel_pass`]
/// runs to exhaustion — the same LID/ROI/CIVS machinery, honouring
/// `params.exec` (speculative multi-seed rounds under a parallel
/// policy, byte-identical to sequential for any worker count).
/// Returned clusters carry members mapped **back into `ds`'s id
/// space**, ascending; the caller applies the dominance filter, as
/// with [`Peeler::detect_all`].
///
/// Because the compacted data set depends only on the *member set*
/// (not on how the caller discovered it), the output is identical for
/// any partitioning that produced the same union — the property the
/// sharded service's merged view leans on for shard-count invariance.
///
/// # Panics
/// Panics if `subset` is not strictly ascending or indexes out of
/// bounds.
pub fn detect_on_subset(
    ds: &Dataset,
    subset: &[u32],
    params: &AlidParams,
    cost: &Arc<CostModel>,
) -> Vec<DetectedCluster> {
    for w in subset.windows(2) {
        assert!(w[0] < w[1], "subset must be strictly ascending");
    }
    if let Some(&last) = subset.last() {
        assert!((last as usize) < ds.len(), "subset member {last} out of bounds");
    }
    if subset.is_empty() {
        return Vec::new();
    }
    let rows: Vec<usize> = subset.iter().map(|&i| i as usize).collect();
    let sub = ds.subset(&rows);
    let mut index = LshIndex::build(&sub, params.lsh, cost);
    let mut stats = PeelStats::default();
    let detections = peel_pass(&sub, params, &mut index, cost, 0, None, &mut stats, true);
    detections
        .into_iter()
        .map(|(_seed, mut cluster)| {
            // The map is monotone, so members stay ascending and the
            // weights stay parallel.
            for m in &mut cluster.members {
                *m = subset[*m as usize];
            }
            cluster
        })
        .collect()
}

/// The lowest alive id `>= *cursor`, advancing the cursor past dead
/// items. `None` once everything from the cursor on is peeled.
fn next_alive_from(index: &LshIndex, cursor: &mut u32, n: u32) -> Option<u32> {
    while *cursor < n {
        let s = *cursor;
        if index.is_alive(s) {
            return Some(s);
        }
        *cursor += 1;
    }
    None
}

/// The next `width` alive seeds in ascending order, without advancing
/// the cursor past the first (rejected speculations must be able to
/// re-seed). `None` once everything is peeled.
fn next_alive_batch_from(
    index: &LshIndex,
    cursor: &mut u32,
    n: u32,
    width: usize,
) -> Option<Vec<u32>> {
    let first = next_alive_from(index, cursor, n)?;
    let mut seeds = vec![first];
    let mut s = first + 1;
    while s < n && seeds.len() < width {
        if index.is_alive(s) {
            seeds.push(s);
        }
        s += 1;
    }
    Some(seeds)
}

/// Owns the LSH index and the alive set for one full detection pass.
pub struct Peeler<'a> {
    ds: &'a Dataset,
    params: AlidParams,
    cost: Arc<CostModel>,
    index: LshIndex,
    next_seed: u32,
}

impl<'a> Peeler<'a> {
    /// Builds the LSH index over `ds` and prepares a full pass.
    pub fn new(ds: &'a Dataset, params: AlidParams, cost: Arc<CostModel>) -> Self {
        let index = LshIndex::build(ds, params.lsh, &cost);
        Self { ds, params, cost, index, next_seed: 0 }
    }

    /// The tunables in use.
    pub fn params(&self) -> &AlidParams {
        &self.params
    }

    /// Items not yet peeled.
    pub fn remaining(&self) -> usize {
        self.index.alive_count()
    }

    /// Detects the next cluster (seeded at the lowest-index alive item)
    /// and peels its members. Returns `None` once everything is peeled.
    pub fn next_cluster(&mut self) -> Option<alid_affinity::clustering::DetectedCluster> {
        let seed = self.next_alive()?;
        let out = detect_one(self.ds, &self.params, &self.index, seed, &self.cost);
        // Peel the support plus the seed itself (the dynamics may have
        // immunized the seed away; it must still leave the pool or the
        // pass would loop forever).
        self.index.remove(seed);
        for &m in &out.cluster.members {
            self.index.remove(m);
        }
        // The Peeler owns its index and never resurrects peeled items,
        // so dead bucket entries can be reclaimed once they dominate.
        if self.index.should_compact() {
            self.index.compact_tombstones();
        }
        Some(out.cluster)
    }

    /// Runs the pass to exhaustion and returns every detected cluster
    /// (dominant and noise alike — filter with
    /// [`Clustering::dominant`]).
    ///
    /// With a parallel [`AlidParams::exec`] policy the pass runs
    /// speculative multi-seed detection (see the module docs); the
    /// output is byte-identical to the sequential pass for every worker
    /// count.
    pub fn detect_all(self) -> Clustering {
        self.detect_all_with_stats().0
    }

    /// [`Self::detect_all`] plus the pass's conflict telemetry. The
    /// clustering is worker-count invariant; the [`PeelStats`] are a
    /// property of the schedule that ran (sequential passes report
    /// totals only, no rounds).
    pub fn detect_all_with_stats(self) -> (Clustering, PeelStats) {
        self.detect_up_to_with_stats(usize::MAX)
    }

    /// Like [`Self::detect_all`] but stops after `max_clusters`
    /// detections (useful when only the top clusters matter).
    ///
    /// Honours `params.exec` exactly like [`Self::detect_all`]: a
    /// parallel policy runs capped speculative rounds whose committed
    /// prefix is byte-identical to the sequential pass's first
    /// `max_clusters` detections.
    pub fn detect_up_to(self, max_clusters: usize) -> Clustering {
        self.detect_up_to_with_stats(max_clusters).0
    }

    /// [`Self::detect_up_to`] plus the pass's conflict telemetry.
    pub fn detect_up_to_with_stats(mut self, max_clusters: usize) -> (Clustering, PeelStats) {
        let mut stats = PeelStats::default();
        let mut clustering = Clustering::new(self.ds.len());
        let detections = peel_pass(
            self.ds,
            &self.params,
            &mut self.index,
            &self.cost,
            self.next_seed,
            Some(max_clusters),
            &mut stats,
            true,
        );
        clustering.clusters.extend(detections.into_iter().map(|(_seed, cluster)| cluster));
        (clustering, stats)
    }

    fn next_alive(&mut self) -> Option<u32> {
        next_alive_from(&self.index, &mut self.next_seed, self.ds.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_lsh::LshParams;

    /// Three clusters of different tightness plus noise.
    fn fixture() -> Dataset {
        let mut flat = Vec::new();
        for i in 0..6 {
            flat.push(i as f64 * 0.04); // A: very tight, 6 items
        }
        for i in 0..5 {
            flat.push(20.0 + i as f64 * 0.05); // B: tight, 5 items
        }
        for i in 0..4 {
            flat.push(40.0 + i as f64 * 1.5); // C: loose, 4 items
        }
        flat.extend([100.0, -55.0, 71.3, 88.8]); // noise
        Dataset::from_flat(1, flat)
    }

    fn params(ds: &Dataset) -> AlidParams {
        AlidParams::calibrated(ds, 0.2, 0.9)
            .with_lsh(LshParams::new(12, 8, 1.0, 123))
            .with_delta(16)
    }

    #[test]
    fn peels_everything_exactly_once() {
        let ds = fixture();
        let clustering = Peeler::new(&ds, params(&ds), CostModel::shared()).detect_all();
        // Every item appears in exactly one cluster.
        let mut seen = vec![0usize; ds.len()];
        for c in &clustering.clusters {
            for &m in &c.members {
                seen[m as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s <= 1), "an item was detected twice");
        // Noise items may end up as singletons but never vanish more
        // than once; the union of clusters plus never-supported seeds
        // covers everything. At minimum the two tight clusters are
        // intact:
        let dominant = clustering.dominant(0.75, 3);
        assert_eq!(dominant.len(), 2, "clusters A and B are dominant");
        assert_eq!(dominant.clusters[0].members, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(dominant.clusters[1].members, vec![6, 7, 8, 9, 10]);
    }

    #[test]
    fn loose_cluster_has_lower_density() {
        let ds = fixture();
        let clustering = Peeler::new(&ds, params(&ds), CostModel::shared()).detect_all();
        let find = |member: u32| {
            clustering
                .clusters
                .iter()
                .find(|c| c.members.contains(&member))
                .expect("member clustered")
        };
        let tight = find(0);
        let loose = find(11);
        assert!(tight.density > loose.density);
    }

    #[test]
    fn detect_up_to_limits_work() {
        let ds = fixture();
        let clustering = Peeler::new(&ds, params(&ds), CostModel::shared()).detect_up_to(1);
        assert_eq!(clustering.len(), 1);
    }

    /// Regression for the satellite bugfix: `detect_up_to` used to
    /// silently ignore a parallel `params.exec` and always run the
    /// sequential loop. It must now honour the policy *and* stay
    /// byte-identical to the sequential prefix at every cap below the
    /// total cluster count.
    #[test]
    fn detect_up_to_honours_parallel_exec_and_matches_sequential_prefix() {
        let ds = fixture();
        let all = Peeler::new(&ds, params(&ds), CostModel::shared()).detect_all();
        assert!(all.len() > 2, "fixture must produce several clusters");
        for max in 1..all.len() {
            let seq = Peeler::new(&ds, params(&ds), CostModel::shared()).detect_up_to(max);
            assert_eq!(seq.len(), max);
            for (a, b) in all.clusters.iter().zip(&seq.clusters) {
                assert_eq!(a.members, b.members, "sequential cap {max} is not a prefix");
            }
            for workers in [2usize, 4, 8] {
                let p = params(&ds).with_exec(alid_exec::ExecPolicy::workers(workers));
                let (par, stats) =
                    Peeler::new(&ds, p, CostModel::shared()).detect_up_to_with_stats(max);
                assert_eq!(par.clusters.len(), max, "{workers} workers, cap {max}");
                assert!(
                    stats.accepted == max as u64 && !stats.rounds.is_empty(),
                    "{workers} workers must run speculative rounds, got {stats:?}"
                );
                for (a, b) in seq.clusters.iter().zip(&par.clusters) {
                    assert_eq!(a.members, b.members, "{workers} workers, cap {max}");
                    let aw: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
                    let bw: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
                    assert_eq!(aw, bw, "{workers} workers, cap {max}");
                    assert_eq!(a.density.to_bits(), b.density.to_bits());
                }
            }
        }
    }

    #[test]
    fn stats_are_consistent_and_sequential_pass_reports_no_rounds() {
        let ds = fixture();
        let (clustering, stats) =
            Peeler::new(&ds, params(&ds), CostModel::shared()).detect_all_with_stats();
        assert!(stats.rounds.is_empty(), "sequential pass must not record rounds");
        assert_eq!(stats.accepted, clustering.len() as u64);
        assert_eq!(stats.speculated, stats.accepted);
        assert_eq!(stats.wasted(), 0);
        assert_eq!(stats.conflict_rate(), 0.0);
        assert_eq!(stats.mean_width(), 0.0);
    }

    #[test]
    fn speculative_stats_account_for_every_speculation() {
        let ds = fixture();
        for workers in [2usize, 4, 8] {
            let p = params(&ds).with_exec(alid_exec::ExecPolicy::workers(workers));
            let (clustering, stats) =
                Peeler::new(&ds, p, CostModel::shared()).detect_all_with_stats();
            assert_eq!(stats.accepted, clustering.len() as u64, "{workers} workers");
            assert!(!stats.rounds.is_empty(), "{workers} workers");
            assert_eq!(
                stats.speculated,
                stats.accepted + stats.absorbed + stats.rerun,
                "{workers} workers: every speculation is accepted, absorbed or re-run"
            );
            for r in &stats.rounds {
                assert!(r.speculated >= 1 && r.speculated <= workers, "{workers} workers: {r:?}");
                assert_eq!(r.speculated, r.accepted + r.absorbed + r.rerun, "{r:?}");
            }
        }
    }

    #[test]
    fn any_width_schedule_is_byte_identical() {
        let ds = fixture();
        let sequential = Peeler::new(&ds, params(&ds), CostModel::shared()).detect_all();
        let schedules = [
            crate::config::SpeculationParams { adaptive: true, initial_width: 0 },
            crate::config::SpeculationParams { adaptive: true, initial_width: 1 },
            crate::config::SpeculationParams { adaptive: false, initial_width: 0 },
            crate::config::SpeculationParams { adaptive: false, initial_width: 3 },
        ];
        for spec in schedules {
            let p = params(&ds).with_exec(alid_exec::ExecPolicy::workers(4)).with_speculation(spec);
            let parallel = Peeler::new(&ds, p, CostModel::shared()).detect_all();
            assert_eq!(sequential.clusters.len(), parallel.clusters.len(), "{spec:?}");
            for (a, b) in sequential.clusters.iter().zip(&parallel.clusters) {
                assert_eq!(a.members, b.members, "{spec:?} changed members");
                assert_eq!(a.density.to_bits(), b.density.to_bits(), "{spec:?}");
            }
        }
    }

    #[test]
    fn remaining_shrinks_monotonically() {
        let ds = fixture();
        let mut peeler = Peeler::new(&ds, params(&ds), CostModel::shared());
        let mut last = peeler.remaining();
        assert_eq!(last, ds.len());
        while let Some(_c) = peeler.next_cluster() {
            let now = peeler.remaining();
            assert!(now < last, "peeling must make progress");
            last = now;
        }
        assert_eq!(peeler.remaining(), 0);
    }

    #[test]
    fn speculative_parallel_pass_matches_sequential_exactly() {
        let ds = fixture();
        let sequential = Peeler::new(&ds, params(&ds), CostModel::shared()).detect_all();
        for workers in [2usize, 3, 8] {
            let p = params(&ds).with_exec(alid_exec::ExecPolicy::workers(workers));
            let parallel = Peeler::new(&ds, p, CostModel::shared()).detect_all();
            assert_eq!(
                sequential.clusters.len(),
                parallel.clusters.len(),
                "{workers} workers changed the cluster count"
            );
            for (a, b) in sequential.clusters.iter().zip(&parallel.clusters) {
                assert_eq!(a.members, b.members, "{workers} workers changed members");
                assert_eq!(a.weights, b.weights, "{workers} workers changed weights");
                assert!(
                    (a.density - b.density).abs() == 0.0,
                    "{workers} workers changed density bit-for-bit"
                );
            }
        }
    }

    #[test]
    fn detect_on_subset_matches_full_pass_on_a_clusters_members() {
        let ds = fixture();
        let p = params(&ds);
        let full = Peeler::new(&ds, p, CostModel::shared()).detect_all();
        let a = &full.clusters[0];
        assert_eq!(a.members, vec![0, 1, 2, 3, 4, 5]);
        // Re-detecting on exactly cluster A's member union reproduces
        // the cluster bit-for-bit: the compact sub-dataset holds the
        // same rows in the same order the full pass converged over.
        let redetected = detect_on_subset(&ds, &a.members, &p, &CostModel::shared());
        assert_eq!(redetected.len(), 1, "a clean union re-detects as one cluster");
        assert_eq!(redetected[0].members, a.members);
        assert_eq!(redetected[0].density.to_bits(), a.density.to_bits());
    }

    #[test]
    fn detect_on_subset_maps_members_back_and_ignores_outside_rows() {
        let ds = fixture();
        let p = params(&ds);
        // Union of cluster B's members plus one far noise row: the
        // noise must come back as its own (non-dominant) detection and
        // every member id must live in the original id space.
        let subset = vec![6u32, 7, 8, 9, 10, 15];
        let out = detect_on_subset(&ds, &subset, &p, &CostModel::shared());
        let mut seen: Vec<u32> = out.iter().flat_map(|c| c.members.iter().copied()).collect();
        seen.sort_unstable();
        assert_eq!(seen, subset, "every subset row detected exactly once, in ds ids");
        let b = out.iter().find(|c| c.members.contains(&6)).expect("cluster B re-detected");
        assert_eq!(b.members, vec![6, 7, 8, 9, 10]);
    }

    #[test]
    fn detect_on_subset_is_worker_count_invariant() {
        let ds = fixture();
        let subset: Vec<u32> = (0..ds.len() as u32).collect();
        let seq = detect_on_subset(&ds, &subset, &params(&ds), &CostModel::shared());
        for workers in [2usize, 4, 8] {
            let p = params(&ds).with_exec(alid_exec::ExecPolicy::workers(workers));
            let par = detect_on_subset(&ds, &subset, &p, &CostModel::shared());
            assert_eq!(seq.len(), par.len(), "{workers} workers");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.members, b.members, "{workers} workers");
                assert_eq!(a.density.to_bits(), b.density.to_bits(), "{workers} workers");
            }
        }
    }

    #[test]
    fn detect_on_subset_empty_subset_is_empty() {
        let ds = fixture();
        assert!(detect_on_subset(&ds, &[], &params(&ds), &CostModel::shared()).is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn detect_on_subset_rejects_unsorted_subsets() {
        let ds = fixture();
        let _ = detect_on_subset(&ds, &[3, 1], &params(&ds), &CostModel::shared());
    }

    #[test]
    fn memory_is_released_between_clusters() {
        let ds = fixture();
        let cost = CostModel::shared();
        let _ = Peeler::new(&ds, params(&ds), Arc::clone(&cost)).detect_all();
        assert_eq!(cost.snapshot().entries_current, 0);
        // Peak is far below the full matrix (19^2 = 361).
        assert!(cost.snapshot().entries_peak < 200);
    }
}
