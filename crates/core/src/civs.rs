//! Candidate Infective Vertex Search — Step 3 of ALID (Section 4.3).
//!
//! Retrieving everything inside the ROI is a fixed-radius near-neighbour
//! problem. A single LSH query at the ball centre covers only one
//! locality-sensitive region and can miss much of the ROI (Fig. 4a), so
//! CIVS queries with *every supporting data item* of `x̂` and unions the
//! results (Fig. 4b) — this multi-query recall is what the convergence
//! proof (Proposition 2 in the appendix) leans on. The hits are filtered
//! to the ROI ball, the `δ` nearest to the centre are kept, and the local
//! range is rebuilt as `β ← α ∪ ψ` with the product vector carried over
//! per Eq. 17.

use alid_affinity::block::BlockEval;
use alid_affinity::fx::FxHashSet;
use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::vector::Dataset;
use alid_lsh::LshIndex;

/// Result of one CIVS retrieval.
#[derive(Clone, Debug, Default)]
pub struct CivsResult {
    /// New candidate vertices `ψ` (global ids), ascending by distance to
    /// the ROI centre, `|ψ| <= δ`.
    pub psi: Vec<u32>,
    /// Raw LSH hits before ROI filtering (diagnostics/ablation).
    pub raw_hits: usize,
}

/// Retrieves at most `delta` alive data items inside the ROI ball
/// `(center, radius)` that are not already in the support `alpha`,
/// querying the index once per supporting item.
pub fn civs(
    ds: &Dataset,
    kernel: &LaplacianKernel,
    index: &LshIndex,
    alpha: &[u32],
    center: &[f64],
    radius: f64,
    delta: usize,
) -> CivsResult {
    let queries = alpha.iter().map(|&a| ds.get(a as usize));
    let hits = index.multi_query(queries);
    let raw_hits = hits.len();
    let alpha_set: FxHashSet<u32> = alpha.iter().copied().collect();
    // Verify all novel hits against the ROI ball in one blocked batch
    // (gather the candidate rows, distances to the centre SoA-style) —
    // bit-identical to the per-hit scalar distance, so the filter and
    // the sort keys are unchanged.
    let novel: Vec<u32> = hits.into_iter().filter(|id| !alpha_set.contains(id)).collect();
    let mut dists = vec![0.0; novel.len()];
    BlockEval::new().distances_indexed(kernel.norm, ds, &novel, center, &mut dists);
    // (distance to centre, id) for in-ROI novelties.
    let mut in_roi: Vec<(f64, u32)> = novel
        .into_iter()
        .zip(dists)
        .filter_map(|(id, d)| (d <= radius).then_some((d, id)))
        .collect();
    in_roi.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    in_roi.truncate(delta);
    CivsResult { psi: in_roi.into_iter().map(|(_, id)| id).collect(), raw_hits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_lsh::LshParams;

    /// A line of points 0.0, 0.1, ..., 4.9 in 1-d.
    fn line() -> Dataset {
        Dataset::from_flat(1, (0..50).map(|i| i as f64 * 0.1).collect())
    }

    fn index(ds: &Dataset) -> LshIndex {
        LshIndex::build(ds, LshParams::new(16, 3, 2.0, 99), &CostModel::shared())
    }

    #[test]
    fn retrieves_only_within_radius() {
        let ds = line();
        let idx = index(&ds);
        let kernel = LaplacianKernel::l2(1.0);
        let alpha = [0u32];
        let center = vec![0.0];
        let res = civs(&ds, &kernel, &idx, &alpha, &center, 0.45, 100);
        for &id in &res.psi {
            assert!(ds.get(id as usize)[0] <= 0.45 + 1e-12);
        }
        assert!(!res.psi.contains(&0), "support members are excluded");
        assert!(!res.psi.is_empty(), "near neighbours must be found");
    }

    #[test]
    fn respects_delta_cap_and_keeps_nearest() {
        let ds = line();
        let idx = index(&ds);
        let kernel = LaplacianKernel::l2(1.0);
        let res = civs(&ds, &kernel, &idx, &[0], &[0.0], 3.0, 5);
        assert_eq!(res.psi.len(), 5);
        // The five nearest non-support items are 1..=5.
        let mut got = res.psi.clone();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn results_ordered_by_distance_to_center() {
        let ds = line();
        let idx = index(&ds);
        let kernel = LaplacianKernel::l2(1.0);
        let res = civs(&ds, &kernel, &idx, &[10], &[1.0], 1.0, 50);
        let mut last = -1.0;
        for &id in &res.psi {
            let d = (ds.get(id as usize)[0] - 1.0).abs();
            assert!(d >= last - 1e-12, "ψ must be ascending by distance");
            last = d;
        }
    }

    #[test]
    fn multi_query_beats_single_query_coverage() {
        // A crescent of support items: querying from every support item
        // covers parts of the ROI a single centre query can miss. With a
        // generous radius the multi-query result must be a superset.
        let ds = line();
        let idx = index(&ds);
        let kernel = LaplacianKernel::l2(1.0);
        let alpha_many = [0u32, 10, 20, 30];
        let center = vec![1.5];
        let wide = civs(&ds, &kernel, &idx, &alpha_many, &center, 2.0, 500);
        let narrow = civs(&ds, &kernel, &idx, &[15], &center, 2.0, 500);
        let wide_set: FxHashSet<u32> = wide.psi.iter().copied().collect();
        // Every hit of the single query that is not itself in alpha_many
        // must also be found by the multi query.
        for id in narrow.psi {
            if !alpha_many.contains(&id) {
                assert!(wide_set.contains(&id), "multi-query lost item {id}");
            }
        }
    }

    #[test]
    fn tombstoned_items_never_returned() {
        let ds = line();
        let mut idx = index(&ds);
        idx.remove(1);
        idx.remove(2);
        let kernel = LaplacianKernel::l2(1.0);
        let res = civs(&ds, &kernel, &idx, &[0], &[0.0], 1.0, 100);
        assert!(!res.psi.contains(&1));
        assert!(!res.psi.contains(&2));
    }

    #[test]
    fn empty_when_radius_is_tiny() {
        let ds = line();
        let idx = index(&ds);
        let kernel = LaplacianKernel::l2(1.0);
        let res = civs(&ds, &kernel, &idx, &[0], &[0.0], 1e-6, 100);
        assert!(res.psi.is_empty());
    }
}
