//! Tunables of the ALID detection loop, with the paper's defaults.

use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_affinity::vector::Dataset;
use alid_exec::ExecPolicy;
use alid_lsh::LshParams;

/// How the speculative parallel peeler sizes its multi-seed rounds
/// (see `crate::peel` — only consulted when [`AlidParams::exec`] is
/// parallel).
///
/// The acceptance rule is untouched by any width choice: accepted
/// results are always exactly the clusters the sequential protocol
/// produces, so every width schedule — fixed, adaptive, or pathological
/// — yields byte-identical clusterings. Width only trades speculation
/// throughput against wasted (discarded or re-run) detections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpeculationParams {
    /// Adapt the round width to observed conflicts, AIMD-style: double
    /// after a fully clean round (nothing discarded), halve after a
    /// round that wasted work, always within
    /// `[1, exec.worker_count()]`. `false` keeps the width fixed at
    /// `initial_width` (so the default `0` restores PR 2's fixed
    /// `width = worker_count` rounds).
    pub adaptive: bool,
    /// Width of the first round; `0` means "start at the policy's
    /// worker count". Clamped to `[1, exec.worker_count()]`.
    pub initial_width: usize,
}

impl Default for SpeculationParams {
    /// Adaptive, starting at the full worker count.
    fn default() -> Self {
        Self { adaptive: true, initial_width: 0 }
    }
}

impl SpeculationParams {
    /// The width of the first speculative round under a policy allowing
    /// at most `max_width` concurrent seeds.
    pub(crate) fn start_width(&self, max_width: usize) -> usize {
        let w = if self.initial_width == 0 { max_width } else { self.initial_width };
        w.clamp(1, max_width)
    }

    /// The width of the next round after one that speculated `width`
    /// seeds and discarded `wasted` of them (absorbed or re-run).
    pub(crate) fn next_width(&self, width: usize, wasted: usize, max_width: usize) -> usize {
        if !self.adaptive {
            return self.start_width(max_width);
        }
        if wasted == 0 {
            (width * 2).min(max_width)
        } else {
            (width / 2).max(1)
        }
    }
}

/// Parameters of Algorithm 2 and its inner steps.
#[derive(Clone, Copy, Debug)]
pub struct AlidParams {
    /// The affinity kernel of Eq. 1.
    pub kernel: LaplacianKernel,
    /// `δ` — maximum number of new candidates CIVS may retrieve per
    /// iteration (fixed to 800 in the paper's experiments).
    pub delta: usize,
    /// `C` — maximum number of ALID iterations per detection
    /// (Section 4.5 argues 10 suffices).
    pub max_alid_iters: usize,
    /// `T` — maximum LID iterations per Step 1 invocation.
    pub max_lid_iters: usize,
    /// Relative tolerance below which a vertex no longer counts as
    /// infective (`π(s_i - x, x) <= tol * (1 + π(x))` ends LID).
    pub tol: f64,
    /// ROI radius for the very first iteration, where `π(x) = 0` makes
    /// Eq. 15 undefined (the paper hard-codes 0.4 for its normalised
    /// features; [`AlidParams::calibrated`] derives a data-scale-aware
    /// value instead).
    pub first_roi_radius: f64,
    /// Density threshold for the final dominant-cluster selection
    /// (`π(x) >= 0.75` in Section 4.4).
    pub density_threshold: f64,
    /// Minimum member count for a dominant cluster.
    pub min_cluster_size: usize,
    /// LSH configuration for CIVS.
    pub lsh: LshParams,
    /// Execution policy for phases that can parallelize (today: the
    /// peeling driver's speculative multi-seed detection; dense-matrix
    /// builds take it where the caller passes it through). Sequential
    /// by default; any worker count produces byte-identical output
    /// (see `Peeler::detect_all`).
    pub exec: ExecPolicy,
    /// How speculative peeling rounds are sized when `exec` is parallel
    /// (adaptive by default; irrelevant to the output bytes).
    pub speculation: SpeculationParams,
}

impl AlidParams {
    /// Paper defaults around an explicit kernel: `δ = 800`, `C = 10`,
    /// density threshold 0.75, first ROI radius 0.4, CIVS-grade LSH with
    /// `r` set to the distance at which the kernel decays to 0.5.
    pub fn new(kernel: LaplacianKernel) -> Self {
        let half_dist = kernel.distance_at(0.5);
        Self {
            kernel,
            delta: 800,
            max_alid_iters: 10,
            max_lid_iters: 2000,
            tol: 1e-9,
            first_roi_radius: 0.4,
            density_threshold: 0.75,
            min_cluster_size: 2,
            lsh: LshParams::civs_default(half_dist, 0x5eed),
            exec: ExecPolicy::sequential(),
            speculation: SpeculationParams::default(),
        }
    }

    /// Calibrates the kernel from the data scale: `k` is chosen so that
    /// the kernel decays to `target_affinity` at `scale_dist`
    /// (`scale_dist` should be a typical intra-cluster distance). The
    /// first ROI radius and the LSH segment length are derived from the
    /// same scale, replacing the paper's hard-coded 0.4 which assumes
    /// normalised features.
    ///
    /// # Panics
    /// Panics unless `scale_dist > 0` and `0 < target_affinity < 1`.
    pub fn calibrated(_ds: &Dataset, scale_dist: f64, target_affinity: f64) -> Self {
        let kernel = LaplacianKernel::calibrate(scale_dist, target_affinity, LpNorm::L2);
        let mut p = Self::new(kernel);
        // Cover the near neighbourhood on the first, blind iteration.
        p.first_roi_radius = kernel.distance_at(0.5);
        p
    }

    /// Replaces `δ`.
    pub fn with_delta(mut self, delta: usize) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        self.delta = delta;
        self
    }

    /// Replaces the LSH configuration.
    pub fn with_lsh(mut self, lsh: LshParams) -> Self {
        self.lsh = lsh;
        self
    }

    /// Replaces only the LSH seed (convenient for reproducible examples).
    pub fn with_lsh_seed(mut self, seed: u64) -> Self {
        self.lsh.seed = seed;
        self
    }

    /// Replaces the iteration caps `C` and `T`.
    pub fn with_iteration_caps(mut self, max_alid: usize, max_lid: usize) -> Self {
        assert!(max_alid >= 1 && max_lid >= 1, "iteration caps must be positive");
        self.max_alid_iters = max_alid;
        self.max_lid_iters = max_lid;
        self
    }

    /// Replaces the dominant-cluster selection thresholds.
    pub fn with_dominant_filter(mut self, min_density: f64, min_size: usize) -> Self {
        self.density_threshold = min_density;
        self.min_cluster_size = min_size;
        self
    }

    /// Replaces the execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Replaces the speculative-round sizing policy.
    pub fn with_speculation(mut self, speculation: SpeculationParams) -> Self {
        self.speculation = speculation;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = AlidParams::new(LaplacianKernel::l2(1.0));
        assert_eq!(p.delta, 800);
        assert_eq!(p.max_alid_iters, 10);
        assert!((p.density_threshold - 0.75).abs() < 1e-12);
        assert!((p.first_roi_radius - 0.4).abs() < 1e-12);
    }

    #[test]
    fn calibrated_derives_scale_aware_radius() {
        let ds = Dataset::from_flat(1, vec![0.0, 1.0]);
        let p = AlidParams::calibrated(&ds, 2.0, 0.9);
        // Kernel decays to 0.9 at distance 2.
        assert!((p.kernel.affinity_at(2.0) - 0.9).abs() < 1e-12);
        // First radius is where it decays to 0.5 — farther than 2.
        assert!(p.first_roi_radius > 2.0);
        assert!((p.kernel.affinity_at(p.first_roi_radius) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn builders_apply() {
        let p = AlidParams::new(LaplacianKernel::l2(1.0))
            .with_delta(5)
            .with_iteration_caps(3, 77)
            .with_dominant_filter(0.5, 4)
            .with_lsh_seed(9)
            .with_exec(ExecPolicy::workers(3));
        assert_eq!(p.delta, 5);
        assert_eq!(p.max_alid_iters, 3);
        assert_eq!(p.max_lid_iters, 77);
        assert_eq!(p.min_cluster_size, 4);
        assert_eq!(p.lsh.seed, 9);
        assert_eq!(p.exec.worker_count(), 3);
    }

    #[test]
    fn exec_defaults_to_sequential() {
        let p = AlidParams::new(LaplacianKernel::l2(1.0));
        assert!(p.exec.is_sequential());
    }

    #[test]
    fn speculation_defaults_adaptive_at_full_width() {
        let p = AlidParams::new(LaplacianKernel::l2(1.0));
        assert!(p.speculation.adaptive);
        assert_eq!(p.speculation.start_width(8), 8);
        let pinned = p.with_speculation(SpeculationParams { adaptive: false, initial_width: 3 });
        assert!(!pinned.speculation.adaptive);
        assert_eq!(pinned.speculation.start_width(8), 3);
        // Initial width never exceeds the policy's worker count.
        assert_eq!(pinned.speculation.start_width(2), 2);
    }

    #[test]
    fn adaptive_width_is_aimd_within_bounds() {
        let s = SpeculationParams::default();
        assert_eq!(s.next_width(4, 0, 8), 8, "clean round doubles");
        assert_eq!(s.next_width(8, 0, 8), 8, "bounded by the worker count");
        assert_eq!(s.next_width(8, 3, 8), 4, "wasted work halves");
        assert_eq!(s.next_width(1, 1, 8), 1, "never below one seed");
        let fixed = SpeculationParams { adaptive: false, initial_width: 0 };
        assert_eq!(fixed.next_width(2, 5, 8), 8, "fixed default pins the worker count");
        let pinned = SpeculationParams { adaptive: false, initial_width: 3 };
        assert_eq!(pinned.next_width(8, 5, 8), 3, "fixed policy pins the initial width");
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn delta_zero_rejected() {
        let _ = AlidParams::new(LaplacianKernel::l2(1.0)).with_delta(0);
    }
}
