//! The ALID detection loop — Algorithm 2.
//!
//! One call to [`detect_one`] grows a single dominant cluster from a
//! seed vertex: LID finds the dense subgraph of the current local range,
//! the ROI bounds where infective vertices can still hide, CIVS pulls at
//! most `δ` of them in, and the loop repeats until no candidate remains
//! (a *global* dense subgraph by Theorem 1) or the iteration cap `C`
//! hits. Only the column group `A_{βα}` is ever computed, giving the
//! `O(C(a*+δ)n)` / `O(a*(a*+δ))` bounds of Section 4.5.

use std::sync::Arc;

use alid_affinity::clustering::DetectedCluster;
use alid_affinity::cost::CostModel;
use alid_affinity::local::LocalAffinity;
use alid_affinity::vector::Dataset;
use alid_lsh::LshIndex;

use crate::civs::civs;
use crate::config::AlidParams;
use crate::lid::{lid_converge, LidState};
use crate::roi::Roi;

/// The result of growing one cluster from a seed.
#[derive(Clone, Debug)]
pub struct AlidOutcome {
    /// The converged dense subgraph: support, weights and density.
    pub cluster: DetectedCluster,
    /// ALID iterations executed (`c` at exit, at most `C`).
    pub iterations: usize,
    /// Total LID iterations across all steps.
    pub lid_iterations: usize,
    /// `true` when the subgraph was certified global: the ROI reached
    /// the outer ball and CIVS produced no (infective) candidate.
    pub converged_globally: bool,
    /// Every global id the detection *observed*: the seed plus every
    /// candidate any CIVS retrieval surfaced inside an ROI (including
    /// the outer-ball certification probe), ascending and deduplicated.
    ///
    /// This is the detection's read set on the alive/tombstone state of
    /// the index: a rerun against an index whose removals are disjoint
    /// from `touched` follows the identical trace and returns the
    /// identical cluster. The speculative parallel peeler
    /// (`Peeler::detect_all`) leans on exactly that guarantee.
    pub touched: Vec<u32>,
}

/// Runs Algorithm 2 from `seed`. The LSH `index` provides candidate
/// retrieval; tombstoned items are invisible, which is how the peeling
/// driver restricts detection to the remaining data.
pub fn detect_one(
    ds: &Dataset,
    params: &AlidParams,
    index: &LshIndex,
    seed: u32,
    cost: &Arc<CostModel>,
) -> AlidOutcome {
    assert!((seed as usize) < ds.len(), "seed {seed} out of range");
    let kernel = params.kernel;
    // Algorithm 2, line 1: α = β = {i}, x = s_i, A_{βα}x_α = a_ii = 0.
    let mut beta: Vec<u32> = vec![seed];
    let mut state = LidState::seed(1);
    let mut lid_iterations = 0;
    let mut converged_globally = false;
    let mut touched: Vec<u32> = vec![seed];

    let mut alpha: Vec<u32> = vec![seed];
    let mut weights: Vec<f64> = vec![1.0];
    let mut density = 0.0;

    let mut c = 1;
    while c <= params.max_alid_iters {
        // ---- Step 1: LID on the current local range -----------------
        let mut aff = LocalAffinity::new(ds, kernel, Arc::clone(cost), std::mem::take(&mut beta));
        let out = lid_converge(&mut aff, &mut state, params.max_lid_iters, params.tol);
        lid_iterations += out.iterations;
        density = out.density;
        let sup = state.support();
        alpha = sup.iter().map(|&p| aff.global(p)).collect();
        weights = sup.iter().map(|&p| state.x[p]).collect();

        // ---- Step 2: ROI ---------------------------------------------
        // π(x̂) = 0 means the subgraph is still a singleton (always the
        // case at c = 1, where Eq. 15 is undefined): Algorithm 2's
        // special case fixes the radius instead.
        let (center, radius, r_out) = if density > 0.0 {
            let roi = Roi::estimate(ds, &kernel, &alpha, &weights, density);
            let r = roi.radius_at(c);
            (roi.center, r, roi.r_out)
        } else {
            let r = params.first_roi_radius;
            (ds.get(seed as usize).to_vec(), r, r)
        };
        let at_outer_ball = radius >= r_out * (1.0 - 1e-9);

        // ---- Step 3: CIVS --------------------------------------------
        let found = civs(ds, &kernel, index, &alpha, &center, radius, params.delta);
        touched.extend_from_slice(&found.psi);
        if found.psi.is_empty() {
            // Nothing new inside the scheduled radius. Before spending
            // further iterations on the θ(c) schedule, probe the outer
            // ball directly: Proposition 1 guarantees every vertex
            // beyond R_out is immune, so an empty outer-ball probe
            // certifies x̂ as a global dense subgraph (Theorem 1).
            let certified = at_outer_ball || {
                let probe = civs(ds, &kernel, index, &alpha, &center, r_out, params.delta);
                // The probe's hits gate certification, so they are part
                // of the detection's read set.
                touched.extend_from_slice(&probe.psi);
                probe.psi.is_empty()
            };
            if certified {
                converged_globally = true;
                break;
            }
            // Candidates exist farther out; re-enter with the bare
            // support and let the radius schedule widen.
            beta = alpha.clone();
            state = LidState { x: weights.clone(), g: restrict(&state, &sup) };
            c += 1;
            continue;
        }

        // Update per Eq. 17: β ← α ∪ ψ; keep (A_{αα} x̂_α) rows, compute
        // the (A_{ψα} x̂_α) rows directly.
        let g_alpha = restrict(&state, &sup);
        let g_psi = aff.product_rows(&found.psi, &alpha, &weights);
        let infective_scale = params.tol * (1.0 + density.abs());
        let any_infective = g_psi.iter().any(|&g| g - density > infective_scale);
        if !any_infective && at_outer_ball && density > 0.0 {
            // Everything the outer ball can still offer is immune —
            // continuing cannot change x̂ (Theorem 1).
            converged_globally = true;
            break;
        }

        beta = alpha.iter().copied().chain(found.psi.iter().copied()).collect();
        let mut x = weights.clone();
        x.resize(beta.len(), 0.0);
        let mut g = g_alpha;
        g.extend_from_slice(&g_psi);
        state = LidState { x, g };
        c += 1;
    }

    // Package the support as a cluster, members ascending.
    let mut pairs: Vec<(u32, f64)> = alpha.iter().copied().zip(weights.iter().copied()).collect();
    pairs.sort_unstable_by_key(|&(m, _)| m);
    let cluster = DetectedCluster {
        members: pairs.iter().map(|&(m, _)| m).collect(),
        weights: pairs.iter().map(|&(_, w)| w).collect(),
        density,
    };
    touched.sort_unstable();
    touched.dedup();
    AlidOutcome {
        cluster,
        iterations: c.min(params.max_alid_iters),
        lid_iterations,
        converged_globally,
        touched,
    }
}

/// Rows of the product vector `g` at the support positions, in support
/// order — the `(A_{αα} x̂_α)` part of Eq. 17.
fn restrict(state: &LidState, sup: &[usize]) -> Vec<f64> {
    sup.iter().map(|&p| state.g[p]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_lsh::LshParams;

    /// Two tight 1-d clusters of five points each plus scattered noise.
    fn fixture() -> Dataset {
        let mut flat = Vec::new();
        for i in 0..5 {
            flat.push(i as f64 * 0.05); // cluster A around 0.0..0.2
        }
        for i in 0..5 {
            flat.push(10.0 + i as f64 * 0.05); // cluster B around 10.0..10.2
        }
        flat.extend([50.0, -40.0, 75.0]); // noise
        Dataset::from_flat(1, flat)
    }

    fn params(ds: &Dataset) -> AlidParams {
        AlidParams::calibrated(ds, 0.2, 0.9).with_lsh(LshParams::new(12, 8, 1.0, 42)).with_delta(16)
    }

    fn index(ds: &Dataset, p: &AlidParams) -> LshIndex {
        LshIndex::build(ds, p.lsh, &CostModel::shared())
    }

    #[test]
    fn grows_the_full_cluster_from_one_member() {
        let ds = fixture();
        let p = params(&ds);
        let idx = index(&ds, &p);
        let out = detect_one(&ds, &p, &idx, 0, &CostModel::shared());
        assert_eq!(out.cluster.members, vec![0, 1, 2, 3, 4]);
        assert!(out.converged_globally, "small instance must certify globality");
        // π of a 5-clique is capped at (4/5) * mean affinity ≈ 0.76.
        assert!(out.cluster.density > 0.7, "got {}", out.cluster.density);
    }

    #[test]
    fn different_seeds_of_one_cluster_agree() {
        let ds = fixture();
        let p = params(&ds);
        let idx = index(&ds, &p);
        let a = detect_one(&ds, &p, &idx, 5, &CostModel::shared());
        let b = detect_one(&ds, &p, &idx, 9, &CostModel::shared());
        assert_eq!(a.cluster.members, b.cluster.members);
        assert_eq!(a.cluster.members, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn noise_seed_stays_a_singleton() {
        let ds = fixture();
        let p = params(&ds);
        let idx = index(&ds, &p);
        let out = detect_one(&ds, &p, &idx, 10, &CostModel::shared());
        assert_eq!(out.cluster.members, vec![10]);
        assert_eq!(out.cluster.density, 0.0);
        assert!(out.converged_globally);
    }

    #[test]
    fn weights_form_a_simplex_vector() {
        let ds = fixture();
        let p = params(&ds);
        let idx = index(&ds, &p);
        let out = detect_one(&ds, &p, &idx, 2, &CostModel::shared());
        let sum: f64 = out.cluster.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(out.cluster.weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn tombstones_split_detection() {
        let ds = fixture();
        let p = params(&ds);
        let mut idx = index(&ds, &p);
        // Peel half of cluster A; the seed can only gather what is left.
        idx.remove(3);
        idx.remove(4);
        let out = detect_one(&ds, &p, &idx, 0, &CostModel::shared());
        assert_eq!(out.cluster.members, vec![0, 1, 2]);
    }

    #[test]
    fn never_exceeds_iteration_cap() {
        let ds = fixture();
        let p = params(&ds).with_iteration_caps(2, 50);
        let idx = index(&ds, &p);
        let out = detect_one(&ds, &p, &idx, 0, &CostModel::shared());
        assert!(out.iterations <= 2);
    }

    #[test]
    fn space_cost_stays_local() {
        let ds = fixture();
        let p = params(&ds);
        let idx = index(&ds, &p);
        let cost = CostModel::shared();
        let _ = detect_one(&ds, &p, &idx, 0, &cost);
        let snap = cost.snapshot();
        // All LocalAffinity column caches were released...
        assert_eq!(snap.entries_current, 0);
        // ...and the peak stayed well under the full n^2 = 169 matrix.
        assert!(snap.entries_peak < 100, "peak {} too close to n^2", snap.entries_peak);
    }

    #[test]
    fn touched_covers_seed_and_members_and_is_sorted() {
        let ds = fixture();
        let p = params(&ds);
        let idx = index(&ds, &p);
        let out = detect_one(&ds, &p, &idx, 1, &CostModel::shared());
        assert!(out.touched.contains(&1), "seed must be in the read set");
        for m in &out.cluster.members {
            assert!(out.touched.contains(m), "member {m} missing from read set");
        }
        let mut sorted = out.touched.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(out.touched, sorted, "touched must be ascending and unique");
    }

    #[test]
    fn detection_is_deterministic() {
        let ds = fixture();
        let p = params(&ds);
        let idx = index(&ds, &p);
        let a = detect_one(&ds, &p, &idx, 1, &CostModel::shared());
        let b = detect_one(&ds, &p, &idx, 1, &CostModel::shared());
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.iterations, b.iterations);
    }
}
