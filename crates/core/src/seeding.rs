//! Seed sampling for PALID (Section 4.6).
//!
//! Data items of one dominant cluster are highly similar, so they tend
//! to land in the same LSH buckets; large buckets therefore betray where
//! dominant clusters live. PALID samples its initial vertices uniformly
//! from every bucket holding more than five items, at a 20% rate.

use alid_lsh::LshIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Samples seeds from every bucket with at least `min_bucket` alive
/// members, taking `ceil(rate * |bucket|)` items per bucket uniformly
/// without replacement. The result is deduplicated and sorted (the task
/// list order of Fig. 5). Returns an empty vector when no bucket
/// qualifies — callers should fall back to scanning all items.
///
/// # Panics
/// Panics unless `0 < rate <= 1`.
pub fn sample_seeds(index: &LshIndex, min_bucket: usize, rate: f64, seed: u64) -> Vec<u32> {
    assert!(rate > 0.0 && rate <= 1.0, "sample rate must be in (0, 1], got {rate}");
    let mut rng = StdRng::seed_from_u64(seed);
    // BTreeSet: dedup and the sorted task-list order in one structure.
    let mut chosen: BTreeSet<u32> = BTreeSet::new();
    for mut bucket in index.large_buckets(min_bucket) {
        let take = ((bucket.len() as f64 * rate).ceil() as usize).clamp(1, bucket.len());
        // Partial Fisher–Yates: the first `take` slots become the sample.
        for t in 0..take {
            let j = rng.gen_range(t..bucket.len());
            bucket.swap(t, j);
            chosen.insert(bucket[t]);
        }
    }
    chosen.into_iter().collect()
}

/// The paper's configuration: buckets with more than 5 items, 20% rate.
pub fn sample_seeds_paper(index: &LshIndex, seed: u64) -> Vec<u32> {
    sample_seeds(index, 6, 0.2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_affinity::vector::Dataset;
    use alid_lsh::LshParams;

    /// Two dense blobs of 30 items each plus 10 scattered noise points.
    fn fixture() -> Dataset {
        let mut ds = Dataset::new(2);
        for i in 0..30 {
            ds.push(&[i as f64 * 0.01, 0.0]);
        }
        for i in 0..30 {
            ds.push(&[100.0 + i as f64 * 0.01, 5.0]);
        }
        for i in 0..10 {
            let f = i as f64;
            ds.push(&[f * 37.0 - 200.0, f * 51.0 + 40.0]);
        }
        ds
    }

    fn index(ds: &Dataset) -> LshIndex {
        LshIndex::build(ds, LshParams::new(8, 6, 1.0, 5), &CostModel::shared())
    }

    #[test]
    fn seeds_come_from_dense_regions() {
        let ds = fixture();
        let idx = index(&ds);
        let seeds = sample_seeds_paper(&idx, 7);
        assert!(!seeds.is_empty());
        // Noise points (ids 60..70) live in singleton buckets and should
        // rarely be sampled; require that the bulk of seeds are cluster
        // members.
        let cluster_seeds = seeds.iter().filter(|&&s| s < 60).count();
        assert!(
            cluster_seeds * 10 >= seeds.len() * 9,
            "expected >=90% cluster seeds, got {cluster_seeds}/{}",
            seeds.len()
        );
        // Both blobs are represented.
        assert!(seeds.iter().any(|&s| s < 30));
        assert!(seeds.iter().any(|&s| (30..60).contains(&s)));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let ds = fixture();
        let idx = index(&ds);
        assert_eq!(sample_seeds_paper(&idx, 1), sample_seeds_paper(&idx, 1));
    }

    #[test]
    fn rate_one_takes_whole_buckets() {
        let ds = fixture();
        let idx = index(&ds);
        let all = sample_seeds(&idx, 6, 1.0, 3);
        let some = sample_seeds(&idx, 6, 0.1, 3);
        assert!(all.len() >= some.len());
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let ds = fixture();
        let idx = index(&ds);
        let seeds = sample_seeds_paper(&idx, 9);
        let mut copy = seeds.clone();
        copy.sort_unstable();
        copy.dedup();
        assert_eq!(seeds, copy);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn rejects_bad_rate() {
        let ds = fixture();
        let idx = index(&ds);
        let _ = sample_seeds(&idx, 6, 0.0, 0);
    }

    #[test]
    fn tombstoned_items_are_not_sampled() {
        let ds = fixture();
        let mut idx = index(&ds);
        for id in 0..30 {
            idx.remove(id);
        }
        let seeds = sample_seeds_paper(&idx, 11);
        assert!(seeds.iter().all(|&s| s >= 30), "dead items must not seed");
    }
}
