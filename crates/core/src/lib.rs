//! ALID — Approximate Localized Infection Immunization Dynamics
//! (Chu, Wang, Liu, Huang & Pei, VLDB 2015).
//!
//! Detects *dominant clusters* — dense subgraphs of the affinity graph —
//! without knowing their number and under heavy background noise, while
//! avoiding the `O(n^2)` affinity-matrix construction that bottlenecks
//! every earlier affinity-based method. One detection run (Algorithm 2)
//! iterates three steps at most `C` times:
//!
//! 1. [`lid`] — Localized Infection Immunization Dynamics (Algorithm 1):
//!    evolutionary-game dynamics confined to a local index range `β`,
//!    touching only lazily computed columns `A_{β i}`;
//! 2. [`roi`] — estimates the double-deck hyperball (Proposition 1)
//!    that provably sandwiches all remaining infective vertices, and
//!    grows the region of interest from the inner to the outer ball;
//! 3. [`civs`] — Candidate Infective Vertex Search: multi-query LSH
//!    retrieval of at most `δ` in-ROI items to extend `β`.
//!
//! The [`peel`] module runs detections to exhaustion, peeling each
//! cluster off (the protocol shared with DS and IID, Section 4.4); the
//! [`palid`] module is the MapReduce-style parallel driver of
//! Section 4.6, with seeds sampled from large LSH buckets ([`seeding`]).
//!
//! # Quick start
//!
//! ```
//! use alid_affinity::{CostModel, Dataset, LaplacianKernel};
//! use alid_core::{AlidParams, Peeler};
//!
//! // Two tight 1-d clusters and two stray noise points.
//! let ds = Dataset::from_flat(
//!     1,
//!     vec![0.0, 0.05, 0.1, 5.0, 5.05, 5.1, 20.0, -14.0],
//! );
//! let params = AlidParams::calibrated(&ds, 0.3, 0.9).with_lsh_seed(7);
//! let cost = CostModel::shared();
//! let clustering = Peeler::new(&ds, params, cost).detect_all();
//! // π of an m-clique is capped at (m-1)/m of its mean affinity, so a
//! // 3-item cluster tops out near 0.65 — pick the threshold accordingly.
//! let dominant = clustering.dominant(0.6, 2);
//! assert_eq!(dominant.len(), 2);
//! # let _ = LaplacianKernel::l2(1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod alid;
pub mod civs;
pub mod config;
pub mod lid;
pub mod palid;
pub mod peel;
pub mod roi;
pub mod seeding;
pub mod streaming;

pub use alid::{detect_one, AlidOutcome};
pub use config::{AlidParams, SpeculationParams};
pub use lid::{LidOutcome, LidState};
pub use palid::{palid_detect, PalidParams};
pub use peel::{detect_on_subset, PeelStats, Peeler, RoundStats};
pub use roi::Roi;
pub use streaming::{MergeEvidence, StreamUpdate, StreamingAlid};
