//! Region-of-Interest estimation — Step 2 of ALID (Section 4.2).
//!
//! From the local dense subgraph `x̂` a *double-deck hyperball*
//! `H(D, R_in, R_out)` is built (Eq. 15):
//!
//! ```text
//! D     = Σ_{i∈α} x̂_i v_i
//! λ_in  = Σ_{i∈α} x̂_i e^{-k‖v_i - D‖},   R_in  = ln(λ_in  / π(x̂)) / k
//! λ_out = Σ_{i∈α} x̂_i e^{+k‖v_i - D‖},   R_out = ln(λ_out / π(x̂)) / k
//! ```
//!
//! Proposition 1 (proved via the triangle inequality on the Laplacian
//! kernel) guarantees that every data item strictly inside the inner
//! ball is infective against `x̂`, and every item strictly outside the
//! outer ball is immune. The ROI radius therefore starts at `R_in` and
//! grows to `R_out` with the shifted logistic schedule
//! `θ(c) = 1 / (1 + e^{4 - c/2})` (Eq. 16), so early iterations scan few
//! candidates while convergence to the *global* dense subgraph stays
//! guaranteed.

use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::vector::Dataset;

/// The double-deck hyperball of Eq. 15.
#[derive(Clone, Debug)]
pub struct Roi {
    /// Ball centre `D` (the weighted centroid of the support).
    pub center: Vec<f64>,
    /// Inner radius: everything nearer is provably infective.
    pub r_in: f64,
    /// Outer radius: everything farther is provably immune.
    pub r_out: f64,
}

/// The growth schedule `θ(c) = 1 / (1 + e^{4 - c/2})` of Eq. 16.
pub fn theta(c: usize) -> f64 {
    1.0 / (1.0 + (4.0 - c as f64 / 2.0).exp())
}

impl Roi {
    /// Estimates the ROI from the support of a local dense subgraph.
    ///
    /// `alpha` holds global indices, `weights` the matching simplex
    /// weights of `x̂`, `density` is `π(x̂) > 0`. Radii are clamped to
    /// `[0, ∞)`; `R_out >= R_in` always holds since `λ_out >= λ_in`.
    ///
    /// `λ_out` sums `e^{+k·d}` terms, which overflow `f64` once
    /// `k·d > ~709` — a far-flung support item (or a sharply calibrated
    /// kernel) would make `R_out = ∞` and the ROI degenerate to
    /// cover-everything *forever*. The estimate therefore saturates the
    /// exponent and, when it had to, falls back to the tightest radius
    /// whose immunity claim is vacuously true: the distance from `D` to
    /// the farthest data item (no item lies beyond it, so the Eq. 16
    /// schedule still terminates at a finite, certifiable outer ball).
    ///
    /// # Panics
    /// Panics if `alpha`/`weights` lengths differ, `alpha` is empty or
    /// `density <= 0` (iteration 1 must use
    /// [`crate::AlidParams::first_roi_radius`] instead — Algorithm 2's
    /// special case).
    pub fn estimate(
        ds: &Dataset,
        kernel: &LaplacianKernel,
        alpha: &[u32],
        weights: &[f64],
        density: f64,
    ) -> Self {
        assert_eq!(alpha.len(), weights.len(), "support/weight length mismatch");
        assert!(!alpha.is_empty(), "support must be non-empty");
        assert!(density > 0.0, "ROI needs π(x̂) > 0; use first_roi_radius at c = 1");
        let idx: Vec<usize> = alpha.iter().map(|&a| a as usize).collect();
        let center = ds.weighted_centroid(&idx, weights);
        let k = kernel.k;
        // exp() overflows f64 just above 709.78; saturating keeps
        // λ_out finite per term (sums may still reach ∞, caught below).
        // The threshold sits as close to the overflow point as is safe
        // so the exact Eq. 15 radius survives everywhere it is
        // representable — the diameter fallback only fires on true
        // overflow.
        const MAX_EXPONENT: f64 = 709.0;
        let mut lambda_in = 0.0;
        let mut lambda_out = 0.0;
        let mut saturated = false;
        for (&i, &w) in idx.iter().zip(weights) {
            let d = kernel.norm.distance(ds.get(i), &center);
            let e = k * d;
            if e > MAX_EXPONENT {
                saturated = true;
            }
            lambda_in += w * (-e).exp();
            lambda_out += w * e.min(MAX_EXPONENT).exp();
        }
        let r_in = ((lambda_in / density).ln() / k).max(0.0);
        let r_out_raw = (lambda_out / density).ln() / k;
        let r_out = if saturated || !r_out_raw.is_finite() {
            // The Eq. 15 bound blew past anything representable: fall
            // back to the dataset diameter bound — the farthest any
            // data item lies from the center, beyond which immunity is
            // vacuous. O(n·d), but only on this (rare) overflow path.
            let farthest = (0..ds.len())
                .map(|i| kernel.norm.distance(ds.get(i), &center))
                .fold(0.0f64, f64::max);
            farthest.max(r_in)
        } else {
            r_out_raw.max(r_in)
        };
        Self { center, r_in, r_out }
    }

    /// ROI radius at ALID iteration `c` per Eq. 16.
    pub fn radius_at(&self, c: usize) -> f64 {
        self.r_in + theta(c) * (self.r_out - self.r_in)
    }

    /// Whether point `v` lies inside the ball of radius `radius`.
    pub fn contains(&self, kernel: &LaplacianKernel, v: &[f64], radius: f64) -> bool {
        kernel.norm.distance(v, &self.center) <= radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_affinity::dense::DenseAffinity;
    use alid_affinity::local::LocalAffinity;
    use alid_affinity::simplex;

    use crate::lid::{lid_converge, LidState};

    fn converged_subgraph(ds: &Dataset, kernel: LaplacianKernel) -> (Vec<u32>, Vec<f64>, f64) {
        let beta: Vec<u32> = (0..ds.len() as u32).collect();
        let mut aff = LocalAffinity::new(ds, kernel, CostModel::shared(), beta.clone());
        let mut st = LidState::from_vertex(&mut aff, 0);
        let out = lid_converge(&mut aff, &mut st, 5000, 1e-12);
        let sup = simplex::support(&st.x);
        let alpha: Vec<u32> = sup.iter().map(|&p| beta[p]).collect();
        let weights: Vec<f64> = sup.iter().map(|&p| st.x[p]).collect();
        (alpha, weights, out.density)
    }

    #[test]
    fn theta_is_a_growing_schedule_saturating_at_one() {
        assert!(theta(1) < 0.05, "early iterations stay near the inner ball");
        assert!(theta(1) < theta(5));
        assert!(theta(5) < theta(10));
        assert!(theta(30) > 0.999, "late iterations coincide with the outer ball");
    }

    #[test]
    fn radius_interpolates_between_decks() {
        let roi = Roi { center: vec![0.0], r_in: 1.0, r_out: 3.0 };
        assert!(roi.radius_at(1) >= 1.0);
        assert!(roi.radius_at(1) < roi.radius_at(8));
        assert!(roi.radius_at(40) <= 3.0 + 1e-12);
        assert!((roi.radius_at(40) - 3.0).abs() < 1e-3);
    }

    /// Proposition 1, property 1: items strictly inside the inner ball
    /// are infective (`π(s_j − x̂, x̂) > 0`).
    #[test]
    fn inner_ball_contains_only_infective_vertices() {
        // Cluster around 0 plus probes at many distances.
        let mut flat = vec![0.0, 0.02, 0.04, 0.06];
        for t in 1..60 {
            flat.push(t as f64 * 0.05);
        }
        let ds = Dataset::from_flat(1, flat);
        let kernel = LaplacianKernel::l2(1.0);
        // Converge on the core only (restrict β to the tight cluster).
        let beta: Vec<u32> = vec![0, 1, 2, 3];
        let mut aff = LocalAffinity::new(&ds, kernel, CostModel::shared(), beta.clone());
        let mut st = LidState::from_vertex(&mut aff, 0);
        let out = lid_converge(&mut aff, &mut st, 5000, 1e-12);
        let sup = simplex::support(&st.x);
        let alpha: Vec<u32> = sup.iter().map(|&p| beta[p]).collect();
        let weights: Vec<f64> = sup.iter().map(|&p| st.x[p]).collect();
        let roi = Roi::estimate(&ds, &kernel, &alpha, &weights, out.density);

        let dense = DenseAffinity::build(&ds, &kernel, CostModel::shared());
        // π(s_j − x̂, x̂) in the *global* graph = (A x̂)_j − π(x̂).
        let mut xg = vec![0.0; ds.len()];
        for (&a, &w) in alpha.iter().zip(&weights) {
            xg[a as usize] = w;
        }
        let mut ax = vec![0.0; ds.len()];
        dense.matvec(&xg, &mut ax);
        let pi = dense.quadratic_form(&xg);
        for (j, &axj) in ax.iter().enumerate() {
            let dist = kernel.norm.distance(ds.get(j), &roi.center);
            if dist < roi.r_in - 1e-9 {
                assert!(
                    axj - pi > -1e-9,
                    "item {j} inside the inner ball must be infective (π(s_j−x̂,x̂)={})",
                    axj - pi
                );
            }
            if dist > roi.r_out + 1e-9 {
                assert!(
                    axj - pi < 1e-9,
                    "item {j} outside the outer ball must be immune (π(s_j−x̂,x̂)={})",
                    axj - pi
                );
            }
        }
    }

    #[test]
    fn estimate_centers_on_the_weighted_centroid() {
        let ds = Dataset::from_flat(1, vec![0.0, 1.0, 8.0]);
        let kernel = LaplacianKernel::l2(1.0);
        let (alpha, weights, density) = converged_subgraph(&ds, kernel);
        let roi = Roi::estimate(&ds, &kernel, &alpha, &weights, density);
        let idx: Vec<usize> = alpha.iter().map(|&a| a as usize).collect();
        let want = ds.weighted_centroid(&idx, &weights);
        assert!((roi.center[0] - want[0]).abs() < 1e-12);
        assert!(roi.r_out >= roi.r_in);
    }

    #[test]
    fn contains_matches_metric() {
        let kernel = LaplacianKernel::l2(1.0);
        let roi = Roi { center: vec![0.0, 0.0], r_in: 0.0, r_out: 0.0 };
        assert!(roi.contains(&kernel, &[0.3, 0.4], 0.5 + 1e-12));
        assert!(!roi.contains(&kernel, &[0.3, 0.4], 0.5 - 1e-9));
    }

    /// Regression for the satellite bugfix: a far-flung support item
    /// under a sharp kernel used to overflow `(k·d).exp()` to `+inf`,
    /// making `R_out = ∞` — the ROI never stopped growing and the
    /// certification probe scanned everything forever. The radius must
    /// stay finite and still cover the whole data set (immunity beyond
    /// it is vacuous).
    #[test]
    fn estimate_survives_extreme_distance_support() {
        // k = 500 and support items 4 apart: k·d = 1000 > 709 at both
        // support points, so the naive λ_out is +inf.
        let ds = Dataset::from_flat(1, vec![0.0, 4.0, 1.0, 9.5]);
        let kernel = LaplacianKernel::l2(500.0);
        let roi = Roi::estimate(&ds, &kernel, &[0, 1], &[0.5, 0.5], 0.1);
        assert!(roi.r_out.is_finite(), "R_out must never be infinite, got {}", roi.r_out);
        assert!(roi.r_in.is_finite() && roi.r_in >= 0.0);
        assert!(roi.r_out >= roi.r_in);
        // The fallback covers the whole data set from the center
        // (centroid 2.0; the farthest item is 9.5, distance 7.5).
        for i in 0..ds.len() {
            let d = kernel.norm.distance(ds.get(i), &roi.center);
            assert!(roi.r_out >= d, "item {i} at distance {d} lies outside R_out {}", roi.r_out);
        }
        // The growth schedule stays usable: finite at every iteration.
        assert!(roi.radius_at(1).is_finite());
        assert!(roi.radius_at(40).is_finite());
    }

    /// The clamp must not disturb well-conditioned estimates: same
    /// inputs, no saturation, identical formula as before.
    #[test]
    fn estimate_unchanged_when_exponents_are_sane() {
        let ds = Dataset::from_flat(1, vec![0.0, 1.0, 8.0]);
        let kernel = LaplacianKernel::l2(1.0);
        let (alpha, weights, density) = converged_subgraph(&ds, kernel);
        let roi = Roi::estimate(&ds, &kernel, &alpha, &weights, density);
        // Direct recomputation of Eq. 15 without any clamping.
        let idx: Vec<usize> = alpha.iter().map(|&a| a as usize).collect();
        let center = ds.weighted_centroid(&idx, &weights);
        let k = kernel.k;
        let (mut li, mut lo) = (0.0, 0.0);
        for (&i, &w) in idx.iter().zip(&weights) {
            let d = kernel.norm.distance(ds.get(i), &center);
            li += w * (-k * d).exp();
            lo += w * (k * d).exp();
        }
        let r_in = ((li / density).ln() / k).max(0.0);
        let r_out = ((lo / density).ln() / k).max(r_in);
        assert_eq!(roi.r_in.to_bits(), r_in.to_bits());
        assert_eq!(roi.r_out.to_bits(), r_out.to_bits());
    }

    #[test]
    #[should_panic(expected = "π(x̂) > 0")]
    fn estimate_rejects_zero_density() {
        let ds = Dataset::from_flat(1, vec![0.0]);
        let kernel = LaplacianKernel::l2(1.0);
        let _ = Roi::estimate(&ds, &kernel, &[0], &[1.0], 0.0);
    }
}
