//! PALID — the parallel ALID of Section 4.6 (Algorithm 3, Fig. 5).
//!
//! Multiple ALID detections are independent given the (read-only) data
//! and LSH index, which makes the method MapReduce-friendly:
//!
//! * **Map**: each task runs Algorithm 2 from one seed vertex and emits
//!   `(item, [label, density])` for every member of the found cluster;
//! * **Reduce**: each item keeps the label of the densest cluster that
//!   claimed it (ties broken toward the smaller label for determinism).
//!
//! The paper deploys this on Apache Spark with MongoDB serving vectors
//! and hash tables; this reproduction substitutes the workspace's
//! shared execution layer ([`alid_exec::ExecPolicy`]) — a work-stealing
//! in-process executor pool sharing the data set and index by
//! reference. Table 2 measures the *speedup ratio versus the number of
//! executors* of an embarrassingly parallel map phase, which this
//! harness reproduces faithfully; see DESIGN.md for the substitution
//! rationale.

use std::sync::Arc;

use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_affinity::cost::CostModel;
use alid_affinity::fx::FxHashMap;
use alid_affinity::vector::Dataset;
use alid_exec::ExecPolicy;
use alid_lsh::LshIndex;
use std::collections::BTreeMap;

use crate::alid::detect_one;
use crate::config::AlidParams;
use crate::seeding::sample_seeds;

/// Parallel-driver knobs.
#[derive(Clone, Copy, Debug)]
pub struct PalidParams {
    /// Execution policy of the map phase; the worker count is the
    /// x-axis of Table 2.
    pub exec: ExecPolicy,
    /// Minimum alive bucket size for seed sampling (paper: "> 5", i.e. 6).
    pub min_bucket: usize,
    /// Per-bucket sample rate (paper: 0.2).
    pub sample_rate: f64,
    /// RNG seed for the task list.
    pub seed: u64,
    /// Optional cap on the task list (useful for quick runs).
    pub max_tasks: Option<usize>,
}

impl PalidParams {
    /// Paper defaults with the given executor count.
    pub fn with_executors(executors: usize) -> Self {
        assert!(executors >= 1, "need at least one executor");
        Self::with_exec(ExecPolicy::workers(executors))
    }

    /// Paper defaults under an explicit execution policy.
    pub fn with_exec(exec: ExecPolicy) -> Self {
        Self { exec, min_bucket: 6, sample_rate: 0.2, seed: 0xa11d, max_tasks: None }
    }

    /// The configured executor count.
    pub fn executors(&self) -> usize {
        self.exec.worker_count()
    }
}

/// Runs PALID: samples seeds from large LSH buckets, maps ALID over them
/// on `executors` worker threads, and reduces overlapping claims by
/// maximum density. The output contains each surviving cluster with the
/// members the reducer assigned to it; apply
/// [`Clustering::dominant`] for the final selection.
pub fn palid_detect(
    ds: &Dataset,
    params: &AlidParams,
    pp: &PalidParams,
    cost: &Arc<CostModel>,
) -> Clustering {
    let index = LshIndex::build(ds, params.lsh, cost);
    let mut seeds = sample_seeds(&index, pp.min_bucket, pp.sample_rate, pp.seed);
    if seeds.is_empty() {
        // Degenerate/small inputs: no bucket passed the size threshold.
        // Fall back to scanning every item, which PALID's reducer still
        // collapses to one row per cluster.
        seeds = (0..ds.len() as u32).collect();
    }
    if let Some(cap) = pp.max_tasks {
        seeds.truncate(cap);
    }
    let outcomes = run_mappers(ds, params, &index, &seeds, pp.exec, cost);
    reduce(ds.len(), outcomes)
}

/// The map phase: detections fan out over the shared exec layer's
/// work-stealing pool. Each result is `(label, cluster)` with the seed
/// id as the unique cluster label (Fig. 5); the exec layer returns them
/// in task order, so one final sort by label makes the reduce input —
/// and therefore the output — executor-count-invariant even when the
/// seed list itself is unsorted.
fn run_mappers(
    ds: &Dataset,
    params: &AlidParams,
    index: &LshIndex,
    seeds: &[u32],
    exec: ExecPolicy,
    cost: &Arc<CostModel>,
) -> Vec<(u32, DetectedCluster)> {
    let mut outcomes =
        exec.map_tasks(seeds, |&seed| (seed, detect_one(ds, params, index, seed, cost).cluster));
    outcomes.sort_unstable_by_key(|&(label, _)| label);
    outcomes
}

/// The reduce phase: assign each item to the densest claiming cluster,
/// then rebuild clusters from the surviving assignments.
fn reduce(n: usize, outcomes: Vec<(u32, DetectedCluster)>) -> Clustering {
    // winner[item] = (density, label)
    let mut winner: Vec<Option<(f64, u32)>> = vec![None; n];
    let mut by_label: FxHashMap<u32, DetectedCluster> = FxHashMap::default();
    for (label, cluster) in outcomes {
        for &m in &cluster.members {
            let slot = &mut winner[m as usize];
            let better = match *slot {
                None => true,
                Some((d, l)) => cluster.density > d || (cluster.density == d && label < l),
            };
            if better {
                *slot = Some((cluster.density, label));
            }
        }
        // Mappers started from seeds of the same cluster emit identical
        // member sets; keep one cluster per label (densest wins above).
        by_label.entry(label).or_insert(cluster);
    }
    // BTreeMap so clusters come out in ascending-label order without a
    // separate sort (the output order is part of the determinism
    // contract).
    let mut members_of: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (item, slot) in winner.iter().enumerate() {
        if let Some((_, label)) = slot {
            members_of.entry(*label).or_default().push(item as u32);
        }
    }
    let mut clustering = Clustering::new(n);
    for (label, members) in members_of {
        let original = &by_label[&label];
        // Carry the converged weights for members the reducer kept.
        let mut weights = Vec::with_capacity(members.len());
        for &m in &members {
            let w = match original.members.binary_search(&m) {
                Ok(p) => original.weights[p],
                Err(_) => 0.0,
            };
            weights.push(w);
        }
        let wsum: f64 = weights.iter().sum();
        if wsum > 0.0 {
            for w in weights.iter_mut() {
                *w /= wsum;
            }
        } else {
            let u = 1.0 / members.len().max(1) as f64;
            weights.iter_mut().for_each(|w| *w = u);
        }
        clustering.clusters.push(DetectedCluster { members, weights, density: original.density });
    }
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_lsh::LshParams;

    /// Three clusters of 12 items each plus noise — big enough for the
    /// bucket-size-6 seed sampling to fire.
    fn fixture() -> Dataset {
        let mut ds = Dataset::new(1);
        for c in 0..3 {
            let base = c as f64 * 30.0;
            for i in 0..12 {
                ds.push(&[base + i as f64 * 0.04]);
            }
        }
        for i in 0..8 {
            ds.push(&[200.0 + i as f64 * 17.0]);
        }
        ds
    }

    fn params(ds: &Dataset) -> AlidParams {
        AlidParams::calibrated(ds, 0.3, 0.9).with_lsh(LshParams::new(12, 8, 1.0, 77)).with_delta(32)
    }

    #[test]
    fn finds_all_three_clusters() {
        let ds = fixture();
        let p = params(&ds);
        let pp = PalidParams::with_executors(2);
        let clustering = palid_detect(&ds, &p, &pp, &CostModel::shared());
        let dominant = clustering.dominant(0.75, 6);
        assert_eq!(dominant.len(), 3);
        for (c, cluster) in dominant.clusters.iter().enumerate() {
            let lo = (c * 12) as u32;
            let want: Vec<u32> = (lo..lo + 12).collect();
            assert_eq!(cluster.members, want);
        }
    }

    #[test]
    fn output_is_invariant_to_executor_count() {
        let ds = fixture();
        let p = params(&ds);
        let one = palid_detect(&ds, &p, &PalidParams::with_executors(1), &CostModel::shared());
        let four = palid_detect(&ds, &p, &PalidParams::with_executors(4), &CostModel::shared());
        assert_eq!(one.clusters.len(), four.clusters.len());
        for (a, b) in one.clusters.iter().zip(&four.clusters) {
            assert_eq!(a.members, b.members);
            assert!((a.density - b.density).abs() < 1e-12);
        }
    }

    #[test]
    fn no_item_is_assigned_twice() {
        let ds = fixture();
        let p = params(&ds);
        let clustering =
            palid_detect(&ds, &p, &PalidParams::with_executors(3), &CostModel::shared());
        let mut seen = vec![false; ds.len()];
        for c in &clustering.clusters {
            for &m in &c.members {
                assert!(!seen[m as usize], "item {m} assigned twice");
                seen[m as usize] = true;
            }
        }
    }

    #[test]
    fn max_tasks_caps_the_task_list() {
        let ds = fixture();
        let p = params(&ds);
        let mut pp = PalidParams::with_executors(2);
        pp.max_tasks = Some(1);
        let clustering = palid_detect(&ds, &p, &pp, &CostModel::shared());
        assert!(clustering.clusters.len() <= 1);
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_rejected() {
        let _ = PalidParams::with_executors(0);
    }

    #[test]
    fn weights_renormalised_after_reduction() {
        let ds = fixture();
        let p = params(&ds);
        let clustering =
            palid_detect(&ds, &p, &PalidParams::with_executors(2), &CostModel::shared());
        for c in &clustering.clusters {
            let s: f64 = c.weights.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "weights must sum to 1, got {s}");
        }
    }
}
