//! Localized Infection Immunization Dynamics — Algorithm 1.
//!
//! LID solves the StQP `max π(x) = xᵀAx` restricted to a local range
//! `β`, never materialising `A_{ββ}`: the state carries the product
//! vector `g = A_{βα} x_α` and each iteration touches at most one fresh
//! matrix column (Fig. 3). A single iteration is `O(|β|)` time.
//!
//! Derivations used below (all from Section 4.1):
//!
//! * `π(s_i − x, x) = g_i − π(x)`                             (Eq. 10)
//! * `π(s_i − x)    = −2 g_i + π(x)`                          (Eq. 11, `a_ii = 0`)
//! * co-vertex factors: `π(s_i(x) − x, x) = μ (g_i − π)` and
//!   `π(s_i(x) − x) = μ² π(s_i − x)` with `μ = x_i / (x_i − 1)` (Eq. 12)
//! * invasion share `ε_y(x)` by Eq. 9, guaranteeing `π` strictly
//!   increases and `y` leaves the infective set (Theorem 2).

use alid_affinity::local::LocalAffinity;
use alid_affinity::simplex;

/// Mutable LID state over a local range `β`: the subgraph weights and
/// the product vector, both indexed by *local* position in `β`.
#[derive(Clone, Debug)]
pub struct LidState {
    /// Subgraph weights `x ∈ Δ^β` (local positions).
    pub x: Vec<f64>,
    /// `g = A_{βα} x_α` (local positions).
    pub g: Vec<f64>,
}

impl LidState {
    /// The singleton start state of Algorithm 2, line 1: `β = {i}`,
    /// `x = s_i`, `A_{βα} x_α = a_ii = 0`. Only a singleton range keeps
    /// the `g = A_{βα} x_α` invariant with zeroed `g`; use
    /// [`LidState::from_vertex`] for larger ranges.
    pub fn seed(beta_len: usize) -> Self {
        assert_eq!(
            beta_len, 1,
            "seed() is the singleton initialisation; use from_vertex for |β| > 1"
        );
        Self { x: simplex::vertex(1, 0), g: vec![0.0; 1] }
    }

    /// Start state with all mass on local position `i` of an arbitrary
    /// range: `x = s_i`, `g = A_{β i}` (the column of the start vertex).
    pub fn from_vertex(aff: &mut LocalAffinity<'_>, i: usize) -> Self {
        let n = aff.len();
        let g = aff.column(aff.global(i)).to_vec();
        Self { x: simplex::vertex(n, i), g }
    }

    /// Current density `π(x) = xᵀ A_{ββ} x = Σ_i x_i g_i`.
    pub fn density(&self) -> f64 {
        simplex::dot(&self.x, &self.g)
    }

    /// Local positions of the support `α`.
    pub fn support(&self) -> Vec<usize> {
        simplex::support(&self.x)
    }
}

/// What a LID run reports back.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LidOutcome {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Final density `π(x̂)`.
    pub density: f64,
    /// `true` when `γ_β(x̂) = ∅` up to tolerance (Theorem 1's local
    /// optimality), `false` when the iteration cap `T` hit first.
    pub converged: bool,
}

/// One infection–immunization step (the body of Algorithm 1).
///
/// Returns `None` when `x` is already immune against every vertex of `β`
/// up to `tol`, otherwise performs the invasion and returns the new
/// density.
pub fn lid_step(aff: &mut LocalAffinity<'_>, state: &mut LidState, tol: f64) -> Option<f64> {
    let pi = state.density();
    let scale = tol * (1.0 + pi.abs());

    // Select M(x) per Eq. 6: the vertex maximising |π(s_i − x, x)| over
    // C1 (infective) ∪ C2 (weak support members).
    let mut best_infect: Option<(usize, f64)> = None; // (local i, g_i − π)
    let mut best_weak: Option<(usize, f64)> = None; // (local i, π − g_i)
    for (i, (&gi, &xi)) in state.g.iter().zip(&state.x).enumerate() {
        let d = gi - pi;
        if d > scale {
            if best_infect.is_none_or(|(_, b)| d > b) {
                best_infect = Some((i, d));
            }
        } else if d < -scale && xi > simplex::SUPPORT_EPS && best_weak.is_none_or(|(_, b)| -d > b) {
            best_weak = Some((i, -d));
        }
    }

    let infect = match (best_infect, best_weak) {
        (None, None) => return None,
        (Some(inf), None) => Ok(inf),
        (None, Some(weak)) => Err(weak),
        (Some(inf), Some(weak)) => {
            if inf.1 >= weak.1 {
                Ok(inf)
            } else {
                Err(weak)
            }
        }
    };

    match infect {
        // ---- Infection: y = s_i (Case 1 of Eq. 9) -------------------
        Ok((i, d)) => {
            let gi = state.g[i];
            let pi_y_minus_x = -2.0 * gi + pi; // Eq. 11
            let eps = if pi_y_minus_x < 0.0 { (-d / pi_y_minus_x).min(1.0) } else { 1.0 };
            let col = aff.column(aff.global(i));
            for (g, &c) in state.g.iter_mut().zip(col) {
                *g = (1.0 - eps) * *g + eps * c; // Eq. 14, y = s_i
            }
            simplex::invade_vertex(&mut state.x, i, eps); // Eq. 13
        }
        // ---- Immunization: y = s_i(x) (Case 2 of Eq. 9) -------------
        Err((i, neg_d)) => {
            let xi = state.x[i];
            debug_assert!(xi > 0.0 && xi < 1.0, "weak vertex must have weight in (0,1)");
            let mu = xi / (xi - 1.0); // < 0
            let d = -neg_d; // g_i − π < 0
            let num = mu * d; // π(s_i(x) − x, x) > 0  (Eq. 12)
            let den = mu * mu * (-2.0 * state.g[i] + pi); // π(s_i(x) − x)
            let eps = if den < 0.0 { (-num / den).min(1.0) } else { 1.0 };
            let col = aff.column(aff.global(i));
            let step = mu * eps;
            for (g, &c) in state.g.iter_mut().zip(col) {
                *g += step * (c - *g); // Eq. 14, y = s_i(x)
            }
            simplex::invade_covertex(&mut state.x, i, eps);
        }
    }
    Some(state.density())
}

/// Runs Algorithm 1 until the local infective set empties or `max_iters`
/// is reached, returning the outcome. The state is left at the local
/// dense subgraph `x̂`.
pub fn lid_converge(
    aff: &mut LocalAffinity<'_>,
    state: &mut LidState,
    max_iters: usize,
    tol: f64,
) -> LidOutcome {
    debug_assert_eq!(state.x.len(), aff.len(), "state/range size mismatch");
    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iters {
        match lid_step(aff, state, tol) {
            Some(_) => iterations += 1,
            None => {
                converged = true;
                break;
            }
        }
    }
    // Hygiene after many multiplicative updates.
    simplex::renormalize(&mut state.x);
    LidOutcome { iterations, density: state.density(), converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_affinity::dense::DenseAffinity;
    use alid_affinity::kernel::LaplacianKernel;
    use alid_affinity::vector::Dataset;
    use std::sync::Arc;

    /// 1-d data: a tight triple {0, 0.1, 0.2} plus a far singleton at 10.
    fn fixture() -> (Dataset, LaplacianKernel) {
        (Dataset::from_flat(1, vec![0.0, 0.1, 0.2, 10.0]), LaplacianKernel::l2(1.0))
    }

    fn local<'a>(ds: &'a Dataset, k: LaplacianKernel, beta: Vec<u32>) -> LocalAffinity<'a> {
        LocalAffinity::new(ds, k, CostModel::shared(), beta)
    }

    #[test]
    fn seed_state_is_singleton_with_zero_density() {
        let s = LidState::seed(1);
        assert_eq!(s.x, vec![1.0]);
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.support(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "singleton")]
    fn seed_rejects_wide_ranges() {
        let _ = LidState::seed(4);
    }

    #[test]
    fn from_vertex_establishes_the_g_invariant() {
        let (ds, k) = fixture();
        let mut aff = local(&ds, k, vec![0, 1, 2, 3]);
        let state = LidState::from_vertex(&mut aff, 1);
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        for (li, &gi) in state.g.iter().enumerate() {
            assert!((gi - dense.get(li, 1)).abs() < 1e-12);
        }
        assert_eq!(state.support(), vec![1]);
    }

    #[test]
    fn density_increases_monotonically() {
        let (ds, k) = fixture();
        let mut aff = local(&ds, k, vec![0, 1, 2, 3]);
        let mut state = LidState::from_vertex(&mut aff, 0);
        let mut last = state.density();
        for _ in 0..100 {
            match lid_step(&mut aff, &mut state, 1e-12) {
                Some(pi) => {
                    assert!(pi > last - 1e-12, "π must not decrease: {pi} < {last}");
                    last = pi;
                }
                None => break,
            }
        }
    }

    #[test]
    fn converges_to_the_tight_cluster_not_the_outlier() {
        let (ds, k) = fixture();
        let mut aff = local(&ds, k, vec![0, 1, 2, 3]);
        let mut state = LidState::from_vertex(&mut aff, 0);
        let out = lid_converge(&mut aff, &mut state, 1000, 1e-10);
        assert!(out.converged);
        let sup = state.support();
        assert!(sup.contains(&0) && sup.contains(&1) && sup.contains(&2));
        assert!(!sup.contains(&3), "the far point must be immunized away");
        // A 3-clique with affinities ~0.9 has π ≈ 2/3 * 0.9 ≈ 0.58
        // (π of an m-clique is capped at (m-1)/m times the mean affinity).
        assert!(out.density > 0.55, "tight cluster density, got {}", out.density);
    }

    #[test]
    fn incremental_g_matches_recomputed_product() {
        let (ds, k) = fixture();
        let mut aff = local(&ds, k, vec![0, 1, 2, 3]);
        let mut state = LidState::from_vertex(&mut aff, 0);
        for _ in 0..50 {
            if lid_step(&mut aff, &mut state, 1e-12).is_none() {
                break;
            }
            // Recompute g = A_{β,sup} x_sup from scratch and compare.
            let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
            for (li, &gi) in state.g.iter().enumerate() {
                let mut want = 0.0;
                for (lj, &xj) in state.x.iter().enumerate() {
                    want += dense.get(li, lj) * xj;
                }
                assert!((gi - want).abs() < 1e-9, "g[{li}] drifted: {gi} vs {want}");
            }
        }
    }

    #[test]
    fn converged_state_is_immune_against_all_local_vertices() {
        let (ds, k) = fixture();
        let mut aff = local(&ds, k, vec![0, 1, 2, 3]);
        let mut state = LidState::from_vertex(&mut aff, 0);
        let out = lid_converge(&mut aff, &mut state, 1000, 1e-10);
        let pi = out.density;
        // Theorem 1: π(s_i − x̂, x̂) ≤ 0 for every i in β.
        for &gi in &state.g {
            assert!(gi - pi <= 1e-7 * (1.0 + pi), "infective vertex survived");
        }
    }

    #[test]
    fn matches_exhaustive_quadratic_maximum_on_tiny_graph() {
        // With 3 points, the simplex optimum can be approximated by grid
        // search; LID must land at least as high (it finds a local max,
        // and on this geometry the max is unique).
        let ds = Dataset::from_flat(1, vec![0.0, 0.5, 0.9]);
        let k = LaplacianKernel::l2(1.0);
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        let mut best = 0.0f64;
        let steps = 60;
        for a in 0..=steps {
            for b in 0..=(steps - a) {
                let x = [
                    a as f64 / steps as f64,
                    b as f64 / steps as f64,
                    (steps - a - b) as f64 / steps as f64,
                ];
                best = best.max(dense.quadratic_form(&x));
            }
        }
        let mut aff = local(&ds, k, vec![0, 1, 2]);
        let mut state = LidState::from_vertex(&mut aff, 0);
        let out = lid_converge(&mut aff, &mut state, 2000, 1e-12);
        assert!(
            out.density >= best - 1e-3,
            "LID {} fell short of grid optimum {best}",
            out.density
        );
    }

    #[test]
    fn x_stays_on_simplex_throughout() {
        let (ds, k) = fixture();
        let mut aff = local(&ds, k, vec![0, 1, 2, 3]);
        let mut state = LidState::from_vertex(&mut aff, 0);
        for _ in 0..200 {
            if lid_step(&mut aff, &mut state, 1e-12).is_none() {
                break;
            }
            assert!(simplex::is_on_simplex(&state.x, 1e-9));
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let (ds, k) = fixture();
        let mut aff = local(&ds, k, vec![0, 1, 2, 3]);
        let mut state = LidState::from_vertex(&mut aff, 0);
        let out = lid_converge(&mut aff, &mut state, 1, 1e-12);
        assert_eq!(out.iterations, 1);
        assert!(!out.converged);
    }

    #[test]
    fn only_selected_columns_are_computed() {
        let (ds, k) = fixture();
        let cost = CostModel::shared();
        let mut aff = LocalAffinity::new(&ds, k, Arc::clone(&cost), vec![0, 1, 2, 3]);
        let mut state = LidState::from_vertex(&mut aff, 0);
        let _ = lid_converge(&mut aff, &mut state, 1000, 1e-10);
        // Never more than |β| columns; the far point's column may or may
        // not be touched, but the full 4x4 matrix must not be.
        assert!(aff.cached_columns() <= 4);
        assert!(cost.snapshot().entries_current <= 16);
    }
}
