//! Offline shim for the `criterion` crate.
//!
//! Provides criterion's macro/builder surface (`criterion_group!`,
//! `criterion_main!`, [`Criterion`], [`BenchmarkId`], [`Throughput`],
//! `Bencher::iter`) on a plain timing loop: per benchmark it warms up,
//! calibrates an iteration count to the per-sample time slot, takes
//! `sample_size` samples and prints the median time per iteration.
//! No statistical analysis, plots or baselines — the numbers are for
//! quick relative comparisons; swap in the real crate for publication
//! runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, id, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_string(), sample_size: None, throughput: None }
    }

    /// Runs `self` as the final step of `criterion_main!` (flush hook;
    /// nothing to do in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named group sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Declares the per-iteration throughput (printed alongside time).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let saved = self.c.sample_size;
        if let Some(n) = self.sample_size {
            self.c.sample_size = n;
        }
        run_one_with_throughput(self.c, &full, f, self.throughput);
        self.c.sample_size = saved;
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Just the parameter (for groups whose name already identifies the
    /// function).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display form.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; routines go through [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the planned number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like `iter`, with a per-iteration setup whose cost is excluded
    /// from the timing (`iter_with_setup` upstream).
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, f: F) {
    run_one_with_throughput(c, id, f, None)
}

fn run_one_with_throughput<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    id: &str,
    mut f: F,
    throughput: Option<Throughput>,
) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    // Warm-up + calibration: run single iterations until the warm-up
    // budget is spent, estimating the per-iteration cost.
    let warm_start = Instant::now();
    let mut per_iter = Duration::MAX;
    let mut calibration_runs = 0u32;
    while warm_start.elapsed() < c.warm_up || calibration_runs == 0 {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = per_iter.min(b.elapsed.max(Duration::from_nanos(1)));
        calibration_runs += 1;
        if calibration_runs >= 50 {
            break;
        }
    }
    // Fill each sample's share of the measurement budget.
    let slot = c.measurement / c.sample_size as u32;
    let iters = (slot.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {}/s", format_count(n as f64 / median))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {}B/s", format_count(n as f64 / median))
        }
        None => String::new(),
    };
    println!(
        "{id:<60} time: [{} {} {}]{extra}",
        format_secs(lo),
        format_secs(median),
        format_secs(hi)
    );
}

fn format_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.3} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.3} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn format_count(c: f64) -> String {
    if c >= 1e9 {
        format!("{:.2}G", c / 1e9)
    } else if c >= 1e6 {
        format!("{:.2}M", c / 1e6)
    } else if c >= 1e3 {
        format!("{:.2}K", c / 1e3)
    } else {
        format!("{c:.1}")
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut count = 0u64;
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        c.filter = None;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.sample_size(3);
        let input = vec![1u64, 2, 3, 4];
        group.bench_with_input(BenchmarkId::from_parameter(4), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
