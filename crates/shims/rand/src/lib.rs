//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! package implements the exact `rand` surface the ALID workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded
//!   through SplitMix64 (the same construction `rand` uses for its
//!   small RNGs; the *stream* differs from upstream `StdRng`, which is
//!   fine because the workspace only relies on determinism and
//!   statistical uniformity, never on a specific stream);
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//!   [`Rng::next_u64`].
//!
//! Swapping this shim for the real crate is a one-line change in the
//! root manifest; no source file would need to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from entropy, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// The user-facing sampling trait, mirroring the `rand::Rng` methods the
/// workspace calls.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` (`f64` in `[0, 1)`, full-range integers,
    /// fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from a range (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        f64::sample(self) < p
    }
}

/// Distribution-of-the-type marker, mirroring sampling from
/// `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span)) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (reduce(rng.next_u64(), span)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i64 => u64, i32 => u32, isize => usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding may land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased-enough multiply-shift reduction of a `u64` to `[0, span)`.
///
/// The modulo bias for the span sizes this workspace samples (< 2^32)
/// is below 2^-32 — irrelevant for simulation workloads — while keeping
/// the generator allocation-free and branch-free.
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Statistically strong, 256-bit state, `Clone` + `Debug` like the
    /// upstream `StdRng`. The output stream differs from upstream
    /// (which is ChaCha12) — only determinism is promised.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                *w = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_is_unit_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5usize..5);
    }

    #[test]
    fn gen_bool_probability_is_respected() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}
