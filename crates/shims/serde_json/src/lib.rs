//! Offline shim for the `serde_json` crate: renders the shim-serde
//! [`Json`](serde::Json) data model as JSON text and parses text back
//! into the model. The entry points mirror the surface the workspace
//! calls on the real crate: [`to_string`] / [`to_string_pretty`]
//! (infallible here but keeping the `Result` signature) and
//! [`from_str`], which the HTTP front end uses for request bodies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Json, Serialize};

/// Serialization or parse error. Serialization never fails in the
/// shim (the variant-less rendering is total); parsing reports the
/// byte offset and what was wrong.
#[derive(Debug)]
pub struct Error {
    reason: String,
    offset: usize,
}

impl Error {
    fn at(offset: usize, reason: impl Into<String>) -> Self {
        Self { reason: reason.into(), offset }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Num(n) => {
            if n.is_finite() {
                // Integral floats print without a trailing ".0", like
                // serde_json's shortest-round-trip formatting. Negative
                // zero must not take this path (it would render as "0"
                // and lose its sign bit); `{}` prints it as "-0", which
                // parses back bit-exactly.
                if n.fract() == 0.0 && n.abs() < 1e15 && (*n != 0.0 || n.is_sign_positive()) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            if !fields.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

/// Parses one JSON value spanning the whole input (surrounding
/// whitespace allowed, trailing content rejected).
///
/// Numbers without `.`, `e`/`E` or a sign that fit `u64` become
/// [`Json::UInt`] (so counters and ids survive exactly); everything
/// else numeric becomes [`Json::Num`] via `f64` parsing, which is
/// exact for any float previously rendered by [`to_string`] (Rust's
/// `{}` float formatting is shortest-round-trip).
///
/// Nesting is capped at [`MAX_PARSE_DEPTH`], like the real crate's
/// recursion limit: the parser recurses per `[`/`{`, and without a
/// cap a hostile body of 100k brackets would overflow the stack and
/// *abort* the serving process rather than return an error.
pub fn from_str(s: &str) -> Result<Json, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters after the value"));
    }
    Ok(v)
}

/// Maximum `[`/`{` nesting [`from_str`] accepts (mirrors serde_json's
/// default recursion limit).
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(self.pos, format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::at(self.pos, format!("unexpected character {:?}", c as char))),
            None => Err(Error::at(self.pos, "unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(Error::at(self.pos, format!("nesting deeper than {MAX_PARSE_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced the cursor
                        }
                        _ => return Err(Error::at(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundary math cannot fail).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::at(self.pos, format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\u` escape (cursor on the `u`),
    /// including surrogate pairs, leaving the cursor past the escape.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hex4 = |p: &mut Self| -> Result<u32, Error> {
            p.pos += 1; // the 'u'
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(Error::at(p.pos, "truncated \\u escape"));
            }
            let hex = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| Error::at(p.pos, "invalid \\u escape"))?;
            let v =
                u32::from_str_radix(hex, 16).map_err(|_| Error::at(p.pos, "invalid \\u escape"))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require the low half.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 1;
                let lo = hex4(self)?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp)
                        .ok_or_else(|| Error::at(self.pos, "invalid surrogate pair"));
                }
            }
            return Err(Error::at(self.pos, "unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| Error::at(self.pos, "invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        if integral && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        let n: f64 =
            text.parse().map_err(|e| Error::at(start, format!("bad number {text:?}: {e}")))?;
        Ok(Json::Num(n))
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::object([
            ("name", Json::Str("a\"b".into())),
            ("xs", Json::Arr(vec![Json::UInt(1), Json::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"name":"a\"b","xs":[1,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Json::object([("k", Json::UInt(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn nan_renders_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn floats_round_trip_reasonably() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
    }

    #[test]
    fn parser_round_trips_rendered_values() {
        let v = Json::object([
            ("name", Json::Str("a\"b\\c\nd\u{1}".into())),
            ("xs", Json::Arr(vec![Json::UInt(1), Json::Null, Json::Num(-1.5), Json::Bool(true)])),
            ("nested", Json::object([("empty_arr", Json::Arr(vec![])), ("n", Json::Num(0.125))])),
            ("big", Json::UInt(u64::MAX)),
        ]);
        assert_eq!(from_str(&to_string(&v).unwrap()).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parser_float_round_trip_is_bit_exact() {
        // `{}` formatting is shortest-round-trip, so any f64 that went
        // out through to_string comes back with identical bits — the
        // property the HTTP ingest path relies on.
        for &x in &[0.1f64, 1.0 / 3.0, std::f64::consts::PI, -0.0, 1e-300, f64::MAX] {
            let rendered = to_string(&x).unwrap();
            let parsed = from_str(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn parser_distinguishes_uint_from_num() {
        assert_eq!(from_str("7").unwrap(), Json::UInt(7));
        assert_eq!(from_str("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(from_str("-7").unwrap(), Json::Num(-7.0));
        assert_eq!(from_str("7.0").unwrap(), Json::Num(7.0));
        assert_eq!(from_str("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        assert_eq!(from_str(r#""A\u00e9""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate-pair escape for U+1F600, and the raw scalar.
        assert_eq!(from_str(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(from_str("\"😀\"").unwrap(), Json::Str("😀".into()));
        assert!(from_str(r#""\ud83d""#).is_err(), "unpaired surrogate must fail");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "{\"a\" 1}"] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_caps_nesting_instead_of_overflowing_the_stack() {
        // A hostile body of 100k brackets must be a positioned error,
        // not a stack-overflow abort of the serving process.
        let hostile = "[".repeat(100_000);
        let err = from_str(&hostile).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        let hostile_objs = "{\"k\":".repeat(100_000);
        assert!(from_str(&hostile_objs).is_err());
        // Depth just under the cap still parses (and closes cleanly).
        let deep = format!("{}{}", "[".repeat(MAX_PARSE_DEPTH), "]".repeat(MAX_PARSE_DEPTH));
        assert!(from_str(&deep).is_ok());
        // Sibling containers do not accumulate depth.
        assert!(from_str("[[1],[2],[3]]").is_ok());
    }

    #[test]
    fn parser_allows_surrounding_whitespace() {
        assert_eq!(
            from_str(" \n\t{ \"a\" : [ ] } \r\n").unwrap().get("a"),
            Some(&Json::Arr(vec![]))
        );
    }
}
