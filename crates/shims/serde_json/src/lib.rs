//! Offline shim for the `serde_json` crate: renders the shim-serde
//! [`Json`](serde::Json) data model as JSON text. Only the two entry
//! points the workspace calls are provided ([`to_string`] /
//! [`to_string_pretty`]); both are infallible but keep the `Result`
//! signature so call sites match the real crate.

#![warn(missing_docs)]

use std::fmt;

use serde::{Json, Serialize};

/// Serialization error (never produced by the shim; kept for signature
/// compatibility with the real crate).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Num(n) => {
            if n.is_finite() {
                // Integral floats print without a trailing ".0", like
                // serde_json's shortest-round-trip formatting.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            if !fields.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::object([
            ("name", Json::Str("a\"b".into())),
            ("xs", Json::Arr(vec![Json::UInt(1), Json::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"name":"a\"b","xs":[1,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Json::object([("k", Json::UInt(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn nan_renders_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn floats_round_trip_reasonably() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
    }
}
