//! Offline shim for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! package provides the one trait the workspace uses — [`Serialize`] —
//! over a small JSON data model ([`Json`]). Where the real crate would
//! `#[derive(Serialize)]`, structs implement the trait by hand with
//! [`Json::object`]; `serde_json`'s shim renders the model. Swapping the
//! shims for the real crates is a manifest-only change plus restoring
//! the derives.
//!
//! Two extensions support the service snapshot path, where the real
//! stack would use `serde_json::Value` accessors and a binary codec
//! like `bincode`:
//!
//! * value accessors ([`Json::get`], [`Json::as_f64`], ...) for
//!   hand-written deserialization of parsed or decoded values;
//! * the [`bin`] module, a self-describing binary codec for the data
//!   model. Unlike the text rendering it round-trips `f64` payloads
//!   **bit-for-bit** (raw IEEE-754 bits on the wire), which is what
//!   lets a restored service continue byte-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

pub mod bin;

/// A JSON value — the serialization data model of the shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite floats serialize as `null`, matching
    /// `serde_json`'s default behaviour).
    Num(f64),
    /// An exact unsigned integer (kept apart from `Num` so `u64`
    /// counters round-trip without precision loss).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value under `key` when `self` is an object holding it.
    /// Linear scan — the model keeps insertion order, and the objects
    /// this workspace decodes are small.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Num` as-is, `UInt` widened (`u64 -> f64` is lossy
    /// above 2^53, matching `serde_json::Value::as_f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            Json::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// Unsigned view: `UInt` as-is, plus integral non-negative `Num`s
    /// (the text parser cannot always tell `3` from `3.0`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n < 2f64.powi(53) => Some(n as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for the `Null` variant.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Conversion into the shim's serialization data model.
pub trait Serialize {
    /// Converts `self` to a [`Json`] value.
    fn to_json(&self) -> Json;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            Json::Num(*self)
        } else {
            Json::Null
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        (*self as f64).to_json()
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_map_to_expected_variants() {
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!(3u64.to_json(), Json::UInt(3));
        assert_eq!(1.5f64.to_json(), Json::Num(1.5));
        assert_eq!(f64::NAN.to_json(), Json::Null);
        assert_eq!("x".to_json(), Json::Str("x".into()));
        assert_eq!(None::<f64>.to_json(), Json::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![1u32, 2];
        assert_eq!(v.to_json(), Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        let o = Json::object([("a", 1u32.to_json())]);
        assert_eq!(o, Json::Obj(vec![("a".into(), Json::UInt(1))]));
    }

    #[test]
    fn accessors_view_the_matching_variant_only() {
        let o = Json::object([
            ("n", Json::Num(1.5)),
            ("u", Json::UInt(7)),
            ("s", Json::Str("x".into())),
            ("b", Json::Bool(true)),
            ("a", Json::Arr(vec![Json::Null])),
        ]);
        assert_eq!(o.get("n").and_then(Json::as_f64), Some(1.5));
        assert_eq!(o.get("u").and_then(Json::as_f64), Some(7.0));
        assert_eq!(o.get("u").and_then(Json::as_u64), Some(7));
        assert_eq!(o.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(o.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(o.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(o.get("a").unwrap().as_arr().unwrap()[0].is_null());
        assert_eq!(o.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
        // Integral Nums coerce to u64; fractional and negative ones refuse.
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
