//! Offline shim for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! package provides the one trait the workspace uses — [`Serialize`] —
//! over a small JSON data model ([`Json`]). Where the real crate would
//! `#[derive(Serialize)]`, structs implement the trait by hand with
//! [`Json::object`]; `serde_json`'s shim renders the model. Swapping the
//! shims for the real crates is a manifest-only change plus restoring
//! the derives.

#![warn(missing_docs)]

use std::collections::BTreeMap;

/// A JSON value — the serialization data model of the shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite floats serialize as `null`, matching
    /// `serde_json`'s default behaviour).
    Num(f64),
    /// An exact unsigned integer (kept apart from `Num` so `u64`
    /// counters round-trip without precision loss).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// Conversion into the shim's serialization data model.
pub trait Serialize {
    /// Converts `self` to a [`Json`] value.
    fn to_json(&self) -> Json;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            Json::Num(*self)
        } else {
            Json::Null
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        (*self as f64).to_json()
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_map_to_expected_variants() {
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!(3u64.to_json(), Json::UInt(3));
        assert_eq!(1.5f64.to_json(), Json::Num(1.5));
        assert_eq!(f64::NAN.to_json(), Json::Null);
        assert_eq!("x".to_json(), Json::Str("x".into()));
        assert_eq!(None::<f64>.to_json(), Json::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![1u32, 2];
        assert_eq!(v.to_json(), Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        let o = Json::object([("a", 1u32.to_json())]);
        assert_eq!(o, Json::Obj(vec![("a".into(), Json::UInt(1))]));
    }
}
