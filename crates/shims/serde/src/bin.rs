//! A self-describing binary codec for the [`Json`] data model — the
//! shim-world stand-in for `bincode`, used by the service snapshot
//! format.
//!
//! The text rendering in `serde_json` is lossy for floats in principle
//! (it relies on shortest-round-trip formatting) and slow to parse for
//! megabyte datasets; this codec writes every `f64` as its raw
//! IEEE-754 bits, so a decode of an encode is **bit-for-bit** equal to
//! the input model — the property the service's restore-then-continue
//! guarantee is built on.
//!
//! Wire format (all integers little-endian):
//!
//! | tag | payload |
//! |---|---|
//! | `0` | null |
//! | `1` | false |
//! | `2` | true |
//! | `3` | `f64::to_bits` as `u64` |
//! | `4` | `u64` |
//! | `5` | `u64` byte length + UTF-8 bytes |
//! | `6` | `u64` element count + encoded elements |
//! | `7` | `u64` field count + (string key, value) pairs |
//! | `8` | `u64` element count + packed `f64::to_bits` words |
//!
//! Tag `8` is the packed form of a non-empty all-`Num` array — the
//! shape every dataset row, weight vector and pair-sum list takes in
//! the snapshot and journal payloads. The encoder picks it
//! automatically; decode yields an ordinary `Json::Arr` of `Num`, so
//! the two forms are indistinguishable to readers (mixed and empty
//! arrays keep tag `6`). One word per float instead of a tagged value
//! per element: 8 bytes, not 9, and no per-element dispatch.
//!
//! Lengths are validated against the remaining input before any
//! allocation, so a truncated or corrupt buffer fails with a positioned
//! [`BinError`] instead of aborting on an absurd reservation.

use std::fmt;

use crate::Json;

/// Decode failure: what went wrong and at which byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinError {
    /// Human-readable description of the failure.
    pub reason: String,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for BinError {}

/// Encodes `value` into the codec's byte representation.
pub fn encode(value: &Json) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

/// Appends the encoding of `value` to `out`.
pub fn encode_into(value: &Json, out: &mut Vec<u8>) {
    match value {
        Json::Null => out.push(0),
        Json::Bool(false) => out.push(1),
        Json::Bool(true) => out.push(2),
        Json::Num(n) => {
            out.push(3);
            out.extend_from_slice(&n.to_bits().to_le_bytes());
        }
        Json::UInt(u) => {
            out.push(4);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Json::Str(s) => {
            out.push(5);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Json::Arr(items) => {
            // Non-empty all-Num arrays take the packed form (tag 8);
            // anything else stays element-wise (tag 6).
            if !items.is_empty() && items.iter().all(|i| matches!(i, Json::Num(_))) {
                out.push(8);
                out.extend_from_slice(&(items.len() as u64).to_le_bytes());
                for item in items {
                    if let Json::Num(n) = item {
                        out.extend_from_slice(&n.to_bits().to_le_bytes());
                    }
                }
            } else {
                out.push(6);
                out.extend_from_slice(&(items.len() as u64).to_le_bytes());
                for item in items {
                    encode_into(item, out);
                }
            }
        }
        Json::Obj(fields) => {
            out.push(7);
            out.extend_from_slice(&(fields.len() as u64).to_le_bytes());
            for (k, v) in fields {
                out.extend_from_slice(&(k.len() as u64).to_le_bytes());
                out.extend_from_slice(k.as_bytes());
                encode_into(v, out);
            }
        }
    }
}

/// Maximum container nesting [`decode`] accepts. The decoder recurses
/// per array/object level; without a cap, a ~1 MB file of nested
/// single-element arrays would overflow the stack and *abort* instead
/// of returning the promised positioned error. Snapshot payloads nest
/// four levels deep; 128 leaves two orders of magnitude of headroom.
pub const MAX_DECODE_DEPTH: usize = 128;

/// Decodes one value spanning the whole buffer (trailing bytes are an
/// error — snapshot payloads are exactly one value).
pub fn decode(bytes: &[u8]) -> Result<Json, BinError> {
    let mut cur = Cursor { bytes, pos: 0, depth: 0 };
    let value = cur.value()?;
    if cur.pos != bytes.len() {
        return Err(cur.err(format!("{} trailing bytes after the value", bytes.len() - cur.pos)));
    }
    Ok(value)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Cursor<'_> {
    fn err(&self, reason: impl Into<String>) -> BinError {
        BinError { reason: reason.into(), offset: self.pos }
    }

    fn enter(&mut self) -> Result<(), BinError> {
        self.depth += 1;
        if self.depth > MAX_DECODE_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DECODE_DEPTH}")));
        }
        Ok(())
    }

    fn byte(&mut self) -> Result<u8, BinError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, BinError> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated u64"))?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }

    /// A `u64` length that must still fit in the remaining input (each
    /// element/byte consumes at least one input byte), so corrupt
    /// buffers fail here rather than in an allocator.
    fn len(&mut self) -> Result<usize, BinError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if n > remaining {
            return Err(self.err(format!("length {n} exceeds the {remaining} remaining bytes")));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, BinError> {
        let n = self.len()?;
        let end = self.pos + n;
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|e| self.err(format!("invalid UTF-8: {e}")))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn value(&mut self) -> Result<Json, BinError> {
        match self.byte()? {
            0 => Ok(Json::Null),
            1 => Ok(Json::Bool(false)),
            2 => Ok(Json::Bool(true)),
            3 => Ok(Json::Num(f64::from_bits(self.u64()?))),
            4 => Ok(Json::UInt(self.u64()?)),
            5 => Ok(Json::Str(self.string()?)),
            6 => {
                self.enter()?;
                let n = self.len()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                self.depth -= 1;
                Ok(Json::Arr(items))
            }
            7 => {
                self.enter()?;
                let n = self.len()?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = self.string()?;
                    fields.push((k, self.value()?));
                }
                self.depth -= 1;
                Ok(Json::Obj(fields))
            }
            8 => {
                // Packed floats: each element is exactly 8 bytes, so
                // the length check is against count * 8, failing on
                // corrupt counts before any allocation.
                let n = self.u64()?;
                let need = n.checked_mul(8).filter(|&b| b <= (self.bytes.len() - self.pos) as u64);
                let n = match need {
                    Some(_) => n as usize,
                    None => {
                        return Err(self.err(format!(
                            "packed float count {n} exceeds the {} remaining bytes",
                            self.bytes.len() - self.pos
                        )))
                    }
                };
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(Json::Num(f64::from_bits(self.u64()?)));
                }
                Ok(Json::Arr(items))
            }
            tag => {
                self.pos -= 1;
                Err(self.err(format!("unknown tag {tag}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::object([
            ("null", Json::Null),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Bool(false)])),
            ("pi", Json::Num(std::f64::consts::PI)),
            ("tiny", Json::Num(f64::MIN_POSITIVE / 2.0)), // subnormal
            ("neg_zero", Json::Num(-0.0)),
            ("big", Json::UInt(u64::MAX)),
            ("text", Json::Str("snÅp\n\"shot\"".into())),
            ("nested", Json::object([("xs", Json::Arr(vec![Json::Num(1.5), Json::UInt(2)]))])),
        ])
    }

    #[test]
    fn round_trip_is_exact() {
        let v = sample();
        assert_eq!(decode(&encode(&v)).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for bits in [0u64, 1, f64::NAN.to_bits(), (-0.0f64).to_bits(), f64::INFINITY.to_bits()] {
            let v = Json::Num(f64::from_bits(bits));
            match decode(&encode(&v)).unwrap() {
                Json::Num(n) => assert_eq!(n.to_bits(), bits),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_a_positioned_error() {
        let bytes = encode(&sample());
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(err.offset <= cut, "offset {} past cut {cut}", err.offset);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&Json::Null);
        bytes.push(0);
        let err = decode(&bytes).unwrap_err();
        assert!(err.reason.contains("trailing"), "{err}");
    }

    #[test]
    fn absurd_length_fails_before_allocating() {
        // Array claiming u64::MAX elements in a 9-byte buffer.
        let mut bytes = vec![6u8];
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.reason.contains("exceeds"), "{err}");
    }

    #[test]
    fn unknown_tag_rejected() {
        let err = decode(&[9u8]).unwrap_err();
        assert!(err.reason.contains("unknown tag"), "{err}");
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn deep_nesting_is_an_error_not_an_abort() {
        // ~100k nested single-element arrays, crafted as raw bytes (a
        // deep `Json` value can never be *constructed* safely, which
        // is exactly why decode must refuse to build one).
        let mut bytes = Vec::new();
        for _ in 0..100_000 {
            bytes.push(6u8);
            bytes.extend_from_slice(&1u64.to_le_bytes());
        }
        bytes.push(0); // innermost null
        let err = decode(&bytes).unwrap_err();
        assert!(err.reason.contains("nesting"), "{err}");
        // Sibling containers at shallow depth are unaffected.
        let wide = Json::Arr((0..1000).map(|_| Json::Arr(vec![Json::Null])).collect());
        assert_eq!(decode(&encode(&wide)).unwrap(), wide);
    }

    #[test]
    fn packed_float_arrays_round_trip_and_shrink() {
        let xs = Json::Arr((0..64).map(|i| Json::Num(i as f64 * 0.5)).collect());
        let bytes = encode(&xs);
        assert_eq!(bytes[0], 8, "all-Num arrays take the packed tag");
        assert_eq!(bytes.len(), 1 + 8 + 64 * 8, "one word per float, no per-element tags");
        assert_eq!(decode(&bytes).unwrap(), xs);
        // Bit-exactness holds through the packed path too.
        let weird = Json::Arr(vec![Json::Num(-0.0), Json::Num(f64::NAN), Json::Num(f64::MIN)]);
        match decode(&encode(&weird)).unwrap() {
            Json::Arr(items) => {
                for (a, b) in items.iter().zip(weird.as_arr().unwrap()) {
                    assert_eq!(a.as_f64().unwrap().to_bits(), b.as_f64().unwrap().to_bits());
                }
            }
            other => panic!("decoded {other:?}"),
        }
        // Mixed and empty arrays keep the element-wise tag.
        assert_eq!(encode(&Json::Arr(vec![]))[0], 6);
        assert_eq!(encode(&Json::Arr(vec![Json::Num(1.0), Json::UInt(1)]))[0], 6);
    }

    #[test]
    fn packed_float_count_fails_before_allocating() {
        // Packed array claiming u64::MAX/8 elements in a 9-byte buffer.
        let mut bytes = vec![8u8];
        bytes.extend_from_slice(&(u64::MAX / 8).to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.reason.contains("exceeds"), "{err}");
        // And a count whose byte size overflows u64 is caught too.
        let mut bytes = vec![8u8];
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&bytes).unwrap_err().reason.contains("exceeds"));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = vec![5u8];
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode(&bytes).unwrap_err().reason.contains("UTF-8"));
    }
}
