//! Offline shim for the `proptest` crate.
//!
//! Implements the property-testing surface this workspace uses — the
//! [`proptest!`] macro, range/collection/`Just`/`prop_map`/
//! `prop_flat_map` strategies, `prop_assert*`/`prop_assume!` and
//! [`ProptestConfig`] — on a deterministic RNG. Differences from the
//! real crate, accepted for an offline build:
//!
//! * **no shrinking** — a failing case reports its inputs via `Debug`
//!   formatting of the assertion message but is not minimized;
//! * **no persistence** — there is no failure regression file; runs are
//!   deterministic per test name instead, so a failure always
//!   reproduces;
//! * `btree_set` reaches its minimum size by redrawing duplicates a
//!   bounded number of times rather than by rejection sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (the `cases` knob only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is redrawn.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Outcome of one test-case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic source strategies draw from.
pub struct TestRng(StdRng);

impl TestRng {
    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Uniform draw from a half-open `usize` range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.0.gen_range(range)
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API compatibility; rarely needed here).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, dynamically dispatched strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u8, u16, u32, u64, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`prop::collection` in the real crate).
pub mod collection {
    use super::*;

    /// An inclusive size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty collection size range");
            Self { lo, hi }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                rng.usize_in(self.lo..self.hi + 1)
            }
        }
    }

    /// Generates `Vec`s of values from `elem` with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// Generates `BTreeSet`s from `elem` with a target size in `size`.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw(rng);
            let mut set = BTreeSet::new();
            // Duplicates do not grow the set; bound the redraws so a
            // narrow element domain cannot loop forever.
            let mut attempts = 0;
            while set.len() < n && attempts < 10 * n + 20 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// The `prop` path alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs `cases` accepted cases of `test` on inputs drawn from
/// `strategy`, panicking on the first failure.
///
/// The RNG seed derives from the test name, so a given property runs
/// the same inputs on every invocation (failures always reproduce).
pub fn run<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: S,
    mut test: impl FnMut(S::Value) -> TestCaseResult,
) {
    let mut rng = TestRng(StdRng::seed_from_u64(fnv1a(name.as_bytes())));
    let mut accepted: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = 20 * config.cases as u64 + 1000;
    while accepted < config.cases {
        let value = strategy.generate(&mut rng);
        match test(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property `{name}`: prop_assume! rejected {rejected} inputs \
                         (accepted only {accepted}/{} cases)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {accepted}: {msg}");
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::run(&config, stringify!($name), strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts inside a property; failure fails the case with its inputs'
/// context rather than unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a), stringify!($b), left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left != right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Rejects the current inputs; the runner redraws without counting the
/// case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0.0f64..1.0, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn flat_map_links_values(pair in (1usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0u8..4, n)))) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects_cleanly(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }

        #[test]
        fn btree_set_reaches_min_size(s in prop::collection::btree_set(0u32..1000, 3..6)) {
            prop_assert!(s.len() >= 3 && s.len() <= 5);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run(&ProptestConfig::with_cases(8), "always_fails", 0u32..10, |_| {
            Err(crate::TestCaseError::Fail("nope".into()))
        });
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = Vec::new();
        crate::run(&ProptestConfig::with_cases(16), "det", 0u32..1000, |v| {
            a.push(v);
            Ok(())
        });
        let mut b = Vec::new();
        crate::run(&ProptestConfig::with_cases(16), "det", 0u32..1000, |v| {
            b.push(v);
            Ok(())
        });
        assert_eq!(a, b);
    }
}
