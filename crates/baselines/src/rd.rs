//! Replicator dynamics and the Dominant Sets method (Pavan & Pelillo,
//! TPAMI 2007).
//!
//! RD evolves `x_i <- x_i * (Ax)_i / (xᵀAx)` on the simplex; its fixed
//! points are the dense subgraphs of the StQP (Motzkin–Straus). DS
//! detects all dominant clusters by converging from the barycenter,
//! extracting the support, peeling and repeating. RD is also the inner
//! engine of SEA's shrink phase. Each iteration costs a
//! support-restricted mat-vec, `O(n * |support|)` dense.

use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_affinity::simplex;

use crate::common::{converged, Graph, HaltPolicy};

/// RD tunables.
#[derive(Clone, Copy, Debug)]
pub struct RdParams {
    /// Iteration cap per convergence.
    pub max_iters: usize,
    /// Convergence tolerance on `||x_{t+1} - x_t||_inf`.
    pub tol: f64,
    /// Weights below this are zeroed after convergence (RD only reaches
    /// the boundary asymptotically).
    pub support_cutoff: f64,
    /// When peeling may stop.
    pub halt: HaltPolicy,
}

impl Default for RdParams {
    fn default() -> Self {
        Self { max_iters: 5_000, tol: 1e-10, support_cutoff: 1e-7, halt: HaltPolicy::PeelAll }
    }
}

/// Runs replicator dynamics from `x` (in place) restricted to its
/// support, returning `(iterations, density)`.
pub fn rd_converge<G: Graph>(graph: &G, x: &mut [f64], params: &RdParams) -> (usize, f64) {
    let n = graph.n();
    debug_assert_eq!(x.len(), n);
    let mut ax = vec![0.0; n];
    let mut prev = x.to_vec();
    let mut iterations = 0;
    for _ in 0..params.max_iters {
        let support: Vec<usize> = (0..n).filter(|&i| x[i] > 0.0).collect();
        graph.matvec_support(x, &support, &mut ax);
        let pi = simplex::dot(x, &ax);
        if pi <= 0.0 {
            // Disconnected support (e.g. a single vertex): RD is
            // stationary at density zero.
            break;
        }
        let inv = 1.0 / pi;
        for &i in &support {
            x[i] *= ax[i] * inv;
        }
        iterations += 1;
        if converged(x, &prev, params.tol) {
            break;
        }
        prev.copy_from_slice(x);
    }
    // Trim near-zero weights and renormalise.
    for v in x.iter_mut() {
        if *v < params.support_cutoff {
            *v = 0.0;
        }
    }
    simplex::renormalize(x);
    let support: Vec<usize> = (0..n).filter(|&i| x[i] > 0.0).collect();
    graph.matvec_support(x, &support, &mut ax);
    (iterations, simplex::dot(x, &ax))
}

/// The Dominant Sets method: barycenter restarts + peeling.
pub fn ds_detect_all<G: Graph>(graph: &G, params: &RdParams) -> Clustering {
    let n = graph.n();
    let mut clustering = Clustering::new(n);
    let mut alive = vec![true; n];
    let mut alive_count = n;
    let mut tracker = params.halt.tracker();
    let mut x = vec![0.0; n];
    while alive_count > 0 {
        let w = 1.0 / alive_count as f64;
        for i in 0..n {
            x[i] = if alive[i] { w } else { 0.0 };
        }
        let (_iters, density) = rd_converge(graph, &mut x, params);
        let members: Vec<u32> =
            (0..n).filter(|&i| alive[i] && x[i] > 0.0).map(|i| i as u32).collect();
        let members = if members.is_empty() {
            vec![(0..n).find(|&i| alive[i]).expect("alive_count > 0") as u32]
        } else {
            members
        };
        let weights: Vec<f64> = {
            let raw: Vec<f64> = members.iter().map(|&m| x[m as usize]).collect();
            let s: f64 = raw.iter().sum();
            if s > 0.0 {
                raw.into_iter().map(|v| v / s).collect()
            } else {
                vec![1.0 / members.len() as f64; members.len()]
            }
        };
        for &m in &members {
            alive[m as usize] = false;
            alive_count -= 1;
        }
        clustering.clusters.push(DetectedCluster { members, weights, density });
        if tracker.observe(density) {
            break;
        }
    }
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_affinity::dense::DenseAffinity;
    use alid_affinity::kernel::LaplacianKernel;
    use alid_affinity::vector::Dataset;

    fn graph(points: Vec<f64>) -> DenseAffinity {
        let ds = Dataset::from_flat(1, points);
        DenseAffinity::build(&ds, &LaplacianKernel::l2(1.0), CostModel::shared())
    }

    #[test]
    fn rd_density_never_decreases() {
        let g = graph(vec![0.0, 0.1, 0.2, 5.0, 5.1, 20.0]);
        let n = g.n();
        let mut x = vec![1.0 / n as f64; n];
        let mut ax = vec![0.0; n];
        let support: Vec<usize> = (0..n).collect();
        let mut last = {
            g.matvec_support(&x, &support, &mut ax);
            simplex::dot(&x, &ax)
        };
        // Run RD one step at a time and check monotonicity (fundamental
        // theorem of natural selection for symmetric games).
        for _ in 0..200 {
            let p = RdParams { max_iters: 1, tol: 0.0, ..Default::default() };
            let (_, pi) = rd_converge(&g, &mut x, &p);
            assert!(pi >= last - 1e-10, "π decreased: {pi} < {last}");
            last = pi;
        }
    }

    #[test]
    fn rd_converges_to_the_tight_cluster() {
        let g = graph(vec![0.0, 0.1, 0.2, 8.0, 30.0]);
        let n = g.n();
        let mut x = vec![1.0 / n as f64; n];
        let (_, density) = rd_converge(&g, &mut x, &RdParams::default());
        let support = simplex::support(&x);
        assert_eq!(support, vec![0, 1, 2]);
        assert!(density > 0.5);
    }

    #[test]
    fn rd_stays_on_simplex() {
        let g = graph(vec![0.0, 0.3, 0.6, 2.0, 2.2]);
        let n = g.n();
        let mut x = vec![1.0 / n as f64; n];
        let p = RdParams { max_iters: 50, ..Default::default() };
        let _ = rd_converge(&g, &mut x, &p);
        assert!(simplex::is_on_simplex(&x, 1e-9));
    }

    #[test]
    fn ds_peels_all_items() {
        let g = graph(vec![0.0, 0.05, 0.1, 7.0, 7.05, 7.1, 42.0]);
        let clustering = ds_detect_all(&g, &RdParams::default());
        let total: usize = clustering.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 7);
        let dominant = clustering.dominant(0.5, 3);
        assert_eq!(dominant.len(), 2);
    }

    #[test]
    fn ds_and_iid_find_the_same_dominant_clusters() {
        use crate::iid::{iid_detect_all, IidParams};
        let g = graph(vec![0.0, 0.05, 0.1, 7.0, 7.05, 7.1, 42.0, -33.0]);
        let ds_result = ds_detect_all(&g, &RdParams::default()).dominant(0.5, 2);
        let iid_result = iid_detect_all(&g, &IidParams::default()).dominant(0.5, 2);
        assert_eq!(ds_result.len(), iid_result.len());
        for (a, b) in ds_result.clusters.iter().zip(&iid_result.clusters) {
            assert_eq!(a.members, b.members);
            assert!((a.density - b.density).abs() < 1e-6);
        }
    }

    #[test]
    fn singleton_graph_density_zero() {
        let g = graph(vec![1.5]);
        let mut x = vec![1.0];
        let (_, density) = rd_converge(&g, &mut x, &RdParams::default());
        assert_eq!(density, 0.0);
    }
}
