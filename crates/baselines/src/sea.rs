//! SEA — the Shrinking and Expansion Algorithm (Liu, Latecki & Yan,
//! TPAMI 2013).
//!
//! SEA confines replicator dynamics to small evolving subgraphs: from a
//! seed it takes the seed's neighbourhood, *shrinks* it by running RD to
//! convergence (dropping zero-weight vertices), then *expands* by the
//! neighbours whose average affinity to the current subgraph exceeds its
//! density, repeating until stable. Time and space are linear in the
//! edge count, which is why the paper's Fig. 6 shows SEA's runtime
//! tracking the sparse degree of the (LSH-sparsified) affinity matrix.

use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_affinity::fx::FxHashSet;
use alid_affinity::simplex;

use crate::common::{Graph, HaltPolicy};
use crate::rd::{rd_converge, RdParams};

/// SEA tunables.
#[derive(Clone, Copy, Debug)]
pub struct SeaParams {
    /// Inner RD settings (the shrink phase).
    pub rd: RdParams,
    /// Maximum shrink–expand rounds per seed.
    pub max_rounds: usize,
    /// Relative margin of the expansion test
    /// `(Ax)_j > π(x) * (1 + tol)`. A *meaningful* margin (not machine
    /// epsilon) is essential: on quasi-uniform noise every outside
    /// vertex has payoff within a hair of the density, and a zero-margin
    /// test snowballs the range across the whole graph, letting the
    /// dynamics drift away from the seed's own component.
    pub tol: f64,
    /// When the multi-seed scan may stop early (see
    /// [`crate::common::HaltPolicy`]). Seeds are visited in descending
    /// weighted-degree order, so dense regions surface first and
    /// `StopBelowDensity` cuts the noise tail.
    pub halt: HaltPolicy,
    /// Cap on the seed's initial neighbourhood: only the
    /// `max_init_neighbors` strongest stored neighbours join the first
    /// local range. Irrelevant on the sparse graphs SEA targets (their
    /// degrees are small); essential on dense ones, where an uncapped
    /// neighbourhood would make every seed converge to the one global
    /// optimum.
    pub max_init_neighbors: usize,
}

impl Default for SeaParams {
    fn default() -> Self {
        Self {
            rd: RdParams::default(),
            max_rounds: 50,
            tol: 1e-9,
            halt: HaltPolicy::PeelAll,
            max_init_neighbors: 64,
        }
    }
}

/// Grows one dense subgraph from `seed`. Returns the converged support,
/// weights and density.
pub fn sea_detect_one<G: Graph>(graph: &G, seed: usize, params: &SeaParams) -> DetectedCluster {
    let n = graph.n();
    debug_assert!(seed < n);
    // Initial local range: the seed and its strongest stored
    // neighbours (capped, see `SeaParams::max_init_neighbors`).
    let mut neighbors: Vec<(f64, usize)> = Vec::new();
    graph.for_row(seed, &mut |j, v| {
        neighbors.push((v, j));
    });
    if neighbors.len() > params.max_init_neighbors {
        neighbors.select_nth_unstable_by(params.max_init_neighbors - 1, |a, b| b.0.total_cmp(&a.0));
        neighbors.truncate(params.max_init_neighbors);
    }
    let mut range: FxHashSet<usize> = FxHashSet::default();
    range.insert(seed);
    range.extend(neighbors.into_iter().map(|(_, j)| j));
    let mut x = vec![0.0; n];
    let mut ax = vec![0.0; n];
    let mut density = 0.0;
    for _round in 0..params.max_rounds {
        // ---- Shrink: RD restricted to the range ----------------------
        let w = 1.0 / range.len() as f64;
        x.fill(0.0);
        for &i in &range {
            x[i] = w;
        }
        let (_iters, pi) = rd_converge(graph, &mut x, &params.rd);
        density = pi;
        let support: Vec<usize> = (0..n).filter(|&i| x[i] > 0.0).collect();
        // ---- Expand: neighbours beating the density ------------------
        graph.matvec_support(&x, &support, &mut ax);
        let threshold = pi * (1.0 + params.tol);
        let mut grew = false;
        let mut new_range: FxHashSet<usize> = support.iter().copied().collect();
        for j in 0..n {
            if x[j] == 0.0 && ax[j] > threshold && ax[j] > 0.0 {
                new_range.insert(j);
                grew = true;
            }
        }
        if !grew {
            break;
        }
        range = new_range;
    }
    let members: Vec<u32> = (0..n).filter(|&i| x[i] > 0.0).map(|i| i as u32).collect();
    let members = if members.is_empty() { vec![seed as u32] } else { members };
    let weights: Vec<f64> = {
        let raw: Vec<f64> = members.iter().map(|&m| x[m as usize]).collect();
        let s: f64 = raw.iter().sum();
        if s > 0.0 {
            raw.into_iter().map(|v| v / s).collect()
        } else {
            vec![1.0 / members.len() as f64; members.len()]
        }
    };
    DetectedCluster { members, weights, density }
}

/// Detects all clusters: seeds are scanned in descending stored-degree
/// order, seeds already covered by a detected cluster are skipped, and
/// duplicate supports are dropped (different seeds converging to the
/// same attractor — SEA's multi-seed scheme allows overlap, so exact
/// duplicates are the common case).
pub fn sea_detect_all<G: Graph>(graph: &G, params: &SeaParams) -> Clustering {
    let n = graph.n();
    let mut clustering = Clustering::new(n);
    let mut order: Vec<usize> = (0..n).collect();
    let wdeg: Vec<f64> = (0..n).map(|i| graph.weighted_degree(i)).collect();
    order.sort_by(|&a, &b| wdeg[b].total_cmp(&wdeg[a]));
    let mut covered = vec![false; n];
    let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
    let mut tracker = params.halt.tracker();
    for seed in order {
        if covered[seed] {
            continue;
        }
        let cluster = sea_detect_one(graph, seed, params);
        for &m in &cluster.members {
            covered[m as usize] = true;
        }
        covered[seed] = true;
        let density = cluster.density;
        if seen.insert(cluster.members.clone()) {
            clustering.clusters.push(cluster);
            if tracker.observe(density) {
                break;
            }
        } else {
            // A duplicate detection adds no information; on dense graphs
            // noise seeds routinely re-converge to an already-found
            // cluster, so duplicates count toward the halt streak or the
            // scan would pay one full detection per noise item (the
            // paper's MATLAB SEA does exactly that — and is measured as
            // the second-slowest method in Fig. 6 for it).
            if tracker.observe(0.0) {
                break;
            }
        }
    }
    clustering
}

/// Density of a subgraph under uniform weights (diagnostic used by the
/// SEA tests).
pub fn uniform_pi<G: Graph>(graph: &G, members: &[u32]) -> f64 {
    let n = graph.n();
    let mut x = vec![0.0; n];
    let w = 1.0 / members.len().max(1) as f64;
    for &m in members {
        x[m as usize] = w;
    }
    let support: Vec<usize> = members.iter().map(|&m| m as usize).collect();
    let mut ax = vec![0.0; n];
    graph.matvec_support(&x, &support, &mut ax);
    simplex::dot(&x, &ax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_affinity::dense::DenseAffinity;
    use alid_affinity::kernel::LaplacianKernel;
    use alid_affinity::sparse::SparseBuilder;
    use alid_affinity::vector::Dataset;

    fn points() -> Dataset {
        let mut flat = Vec::new();
        for i in 0..6 {
            flat.push(i as f64 * 0.05);
        }
        for i in 0..5 {
            flat.push(9.0 + i as f64 * 0.05);
        }
        flat.extend([50.0, -40.0]);
        Dataset::from_flat(1, flat)
    }

    fn knn_sparse(ds: &Dataset, k: usize) -> alid_affinity::sparse::SparseAffinity {
        // Brute-force kNN lists (tests only).
        let n = ds.len();
        let norm = alid_affinity::kernel::LpNorm::L2;
        let mut b = SparseBuilder::new(n);
        for i in 0..n {
            let mut d: Vec<(f64, u32)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (norm.distance(ds.get(i), ds.get(j)), j as u32))
                .collect();
            d.sort_by(|a, b| a.0.total_cmp(&b.0));
            for &(_, j) in d.iter().take(k) {
                b.add_edge(i as u32, j);
            }
        }
        b.build(ds, &LaplacianKernel::l2(1.0), CostModel::shared())
    }

    #[test]
    fn grows_cluster_beyond_initial_neighbourhood() {
        let ds = points();
        // 4-NN graph: the seed's direct neighbourhood (4 items) is
        // smaller than the 6-item cluster, so expansion must do real
        // work. (A 2-NN graph would be *too* sparse: the enforced
        // sparsity genuinely breaks the cluster's cohesiveness, which is
        // the paper's Section 5.1 argument.)
        let g = knn_sparse(&ds, 4);
        let cluster = sea_detect_one(&g, 0, &SeaParams::default());
        // On the 4-NN graph the max-density subgraph may exclude one
        // endpoint of the chain (the 0-5 edge is not stored), but the
        // grown cluster must cover at least 5 of the 6 blob members and
        // nothing else.
        assert!(cluster.members.len() >= 5, "got {:?}", cluster.members);
        assert!(cluster.members.iter().all(|&m| m <= 5), "got {:?}", cluster.members);
        assert!(cluster.density > 0.5);
    }

    #[test]
    fn detect_all_covers_both_clusters() {
        let ds = points();
        let g = knn_sparse(&ds, 4);
        let clustering = sea_detect_all(&g, &SeaParams::default());
        let dominant = clustering.dominant(0.5, 4);
        // SEA's multi-seed scheme may emit overlapping variants of a
        // blob, but every dominant cluster must be blob-pure and both
        // blobs must be represented.
        assert!(!dominant.is_empty());
        let mut saw_a = false;
        let mut saw_b = false;
        for c in &dominant.clusters {
            let all_a = c.members.iter().all(|&m| m <= 5);
            let all_b = c.members.iter().all(|&m| (6..=10).contains(&m));
            assert!(all_a || all_b, "mixed cluster {:?}", c.members);
            saw_a |= all_a;
            saw_b |= all_b;
        }
        assert!(saw_a && saw_b, "both blobs must surface");
    }

    #[test]
    fn works_on_dense_graphs_too() {
        let ds = points();
        let g = DenseAffinity::build(&ds, &LaplacianKernel::l2(1.0), CostModel::shared());
        let cluster = sea_detect_one(&g, 3, &SeaParams::default());
        assert_eq!(cluster.members, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn agrees_with_full_matrix_iid_on_dominant_clusters() {
        use crate::iid::{iid_detect_all, IidParams};
        let ds = points();
        let dense = DenseAffinity::build(&ds, &LaplacianKernel::l2(1.0), CostModel::shared());
        // Cap the initial neighbourhood so SEA stays local on the dense
        // graph (see SeaParams::max_init_neighbors).
        let sea_params = SeaParams { max_init_neighbors: 4, ..Default::default() };
        let sea = sea_detect_all(&dense, &sea_params).dominant(0.5, 3);
        let iid = iid_detect_all(&dense, &IidParams::default()).dominant(0.5, 3);
        assert_eq!(sea.len(), iid.len());
        for (a, b) in sea.clusters.iter().zip(&iid.clusters) {
            assert_eq!(a.members, b.members);
        }
    }

    #[test]
    fn isolated_vertices_become_singletons() {
        let ds = points();
        let g = knn_sparse(&ds, 2);
        let clustering = sea_detect_all(&g, &SeaParams::default());
        // Noise items 11 and 12 never end up inside a dense cluster;
        // when they do surface, it is in a near-zero-density cluster.
        for noise in [11u32, 12u32] {
            for c in &clustering.clusters {
                if c.members.contains(&noise) {
                    assert!(c.density < 0.3, "noise {noise} in a dense cluster?");
                }
            }
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let ds = points();
        let g = knn_sparse(&ds, 3);
        let cluster = sea_detect_one(&g, 7, &SeaParams::default());
        let s: f64 = cluster.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
