//! Shared infrastructure for the baseline implementations.
//!
//! The sparsity study of Section 5.1 runs AP, IID and SEA both on the
//! full affinity matrix and on LSH-sparsified ones; the [`Graph`] trait
//! lets every game-dynamics baseline run unchanged on
//! [`DenseAffinity`] and [`SparseAffinity`].

use alid_affinity::dense::DenseAffinity;
use alid_affinity::sparse::SparseAffinity;

/// The operations the evolutionary-game baselines need from an affinity
/// matrix.
pub trait Graph: Sync {
    /// Matrix order.
    fn n(&self) -> usize;
    /// Entry `a_ij` (zero when absent).
    fn get(&self, i: usize, j: usize) -> f64;
    /// Writes column `j` into `out` (full length `n`).
    fn column_into(&self, j: usize, out: &mut [f64]);
    /// `out = A x`, visiting only the support of `x`.
    fn matvec_support(&self, x: &[f64], support: &[usize], out: &mut [f64]);
    /// `π(x) = xᵀ A x`.
    fn quadratic_form(&self, x: &[f64]) -> f64;
    /// Average intra-cluster affinity under uniform weights.
    fn uniform_density(&self, members: &[u32]) -> f64;
    /// Visits the stored neighbours of row `i` as `(column, value)`.
    fn for_row(&self, i: usize, f: &mut dyn FnMut(usize, f64));
    /// Stored neighbour count of `i`.
    fn degree(&self, i: usize) -> usize;
    /// Sum of stored affinities of row `i` — a density proxy that stays
    /// informative on dense graphs, where the plain degree is constant.
    fn weighted_degree(&self, i: usize) -> f64 {
        let mut acc = 0.0;
        self.for_row(i, &mut |_, v| acc += v);
        acc
    }
}

impl Graph for DenseAffinity {
    fn n(&self) -> usize {
        DenseAffinity::n(self)
    }
    fn get(&self, i: usize, j: usize) -> f64 {
        DenseAffinity::get(self, i, j)
    }
    fn column_into(&self, j: usize, out: &mut [f64]) {
        // Symmetric: column j equals row j.
        out.copy_from_slice(self.row(j));
    }
    fn matvec_support(&self, x: &[f64], support: &[usize], out: &mut [f64]) {
        DenseAffinity::matvec_support(self, x, support, out)
    }
    fn quadratic_form(&self, x: &[f64]) -> f64 {
        DenseAffinity::quadratic_form(self, x)
    }
    fn uniform_density(&self, members: &[u32]) -> f64 {
        DenseAffinity::uniform_density(self, members)
    }
    fn for_row(&self, i: usize, f: &mut dyn FnMut(usize, f64)) {
        for (j, &v) in self.row(i).iter().enumerate() {
            if v != 0.0 {
                f(j, v);
            }
        }
    }
    fn degree(&self, i: usize) -> usize {
        let _ = i;
        DenseAffinity::n(self) - 1
    }
}

impl Graph for SparseAffinity {
    fn n(&self) -> usize {
        SparseAffinity::n(self)
    }
    fn get(&self, i: usize, j: usize) -> f64 {
        SparseAffinity::get(self, i, j)
    }
    fn column_into(&self, j: usize, out: &mut [f64]) {
        out.fill(0.0);
        let (cols, vals) = self.row(j); // symmetric
        for (&c, &v) in cols.iter().zip(vals) {
            out[c as usize] = v;
        }
    }
    fn matvec_support(&self, x: &[f64], support: &[usize], out: &mut [f64]) {
        SparseAffinity::matvec_support(self, x, support, out)
    }
    fn quadratic_form(&self, x: &[f64]) -> f64 {
        SparseAffinity::quadratic_form(self, x)
    }
    fn uniform_density(&self, members: &[u32]) -> f64 {
        SparseAffinity::uniform_density(self, members)
    }
    fn for_row(&self, i: usize, f: &mut dyn FnMut(usize, f64)) {
        let (cols, vals) = self.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            f(c as usize, v);
        }
    }
    fn degree(&self, i: usize) -> usize {
        SparseAffinity::degree(self, i)
    }
}

/// When the full-graph peeling loops may stop early.
///
/// The paper peels until every item is gone and then keeps clusters with
/// `π(x) >= 0.75` (Section 4.4). Exhausting pure noise that way is
/// `O(n)` detections of near-empty clusters, which only *adds* runtime
/// to the baselines; [`HaltPolicy::StopBelowDensity`] lets the
/// scalability harness stop a baseline once detections sink below the
/// dominance threshold — a strictly favourable adjustment for the
/// baselines, making ALID's measured advantage conservative (see
/// EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HaltPolicy {
    /// Peel every item (paper-faithful).
    PeelAll,
    /// Stop after `patience` consecutive detections with density below
    /// the threshold.
    StopBelowDensity {
        /// Density threshold.
        threshold: f64,
        /// Consecutive low-density detections tolerated.
        patience: usize,
    },
}

impl HaltPolicy {
    /// Tracks whether peeling should stop, fed one detection at a time.
    pub fn tracker(&self) -> HaltTracker {
        HaltTracker { policy: *self, low_streak: 0 }
    }
}

/// Stateful evaluator of a [`HaltPolicy`].
#[derive(Clone, Copy, Debug)]
pub struct HaltTracker {
    policy: HaltPolicy,
    low_streak: usize,
}

impl HaltTracker {
    /// Records a detection's density; returns `true` when peeling should
    /// stop.
    pub fn observe(&mut self, density: f64) -> bool {
        match self.policy {
            HaltPolicy::PeelAll => false,
            HaltPolicy::StopBelowDensity { threshold, patience } => {
                if density < threshold {
                    self.low_streak += 1;
                } else {
                    self.low_streak = 0;
                }
                self.low_streak > patience
            }
        }
    }
}

/// Convergence check on two weight vectors: `max_i |a_i - b_i| < tol`.
pub fn converged(a: &[f64], b: &[f64], tol: f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_affinity::kernel::LaplacianKernel;
    use alid_affinity::sparse::SparseBuilder;
    use alid_affinity::vector::Dataset;

    fn fixture() -> (Dataset, LaplacianKernel) {
        (Dataset::from_flat(1, vec![0.0, 1.0, 2.5, 4.0]), LaplacianKernel::l2(0.8))
    }

    #[test]
    fn dense_and_sparse_graph_views_agree() {
        let (ds, k) = fixture();
        let dense = DenseAffinity::build(&ds, &k, CostModel::shared());
        let mut b = SparseBuilder::new(4);
        for i in 0..4u32 {
            for j in (i + 1)..4u32 {
                b.add_edge(i, j);
            }
        }
        let sparse = b.build(&ds, &k, CostModel::shared());
        let mut col_d = vec![0.0; 4];
        let mut col_s = vec![0.0; 4];
        for j in 0..4 {
            Graph::column_into(&dense, j, &mut col_d);
            Graph::column_into(&sparse, j, &mut col_s);
            for i in 0..4 {
                assert!((col_d[i] - col_s[i]).abs() < 1e-12);
                assert!((Graph::get(&dense, i, j) - Graph::get(&sparse, i, j)).abs() < 1e-12);
            }
        }
        let x = vec![0.1, 0.2, 0.3, 0.4];
        assert!(
            (Graph::quadratic_form(&dense, &x) - Graph::quadratic_form(&sparse, &x)).abs() < 1e-12
        );
    }

    #[test]
    fn for_row_skips_zeros() {
        let (ds, k) = fixture();
        let mut b = SparseBuilder::new(4);
        b.add_edge(0, 2);
        let sparse = b.build(&ds, &k, CostModel::shared());
        let mut visited = Vec::new();
        Graph::for_row(&sparse, 0, &mut |j, v| visited.push((j, v)));
        assert_eq!(visited.len(), 1);
        assert_eq!(visited[0].0, 2);
    }

    #[test]
    fn halt_policy_peel_all_never_stops() {
        let mut t = HaltPolicy::PeelAll.tracker();
        for _ in 0..100 {
            assert!(!t.observe(0.0));
        }
    }

    #[test]
    fn halt_policy_stops_after_patience() {
        let mut t = HaltPolicy::StopBelowDensity { threshold: 0.5, patience: 2 }.tracker();
        assert!(!t.observe(0.9));
        assert!(!t.observe(0.1)); // streak 1
        assert!(!t.observe(0.1)); // streak 2
        assert!(t.observe(0.1)); // streak 3 > patience
    }

    #[test]
    fn halt_policy_streak_resets_on_dense_detection() {
        let mut t = HaltPolicy::StopBelowDensity { threshold: 0.5, patience: 1 }.tracker();
        assert!(!t.observe(0.2));
        assert!(!t.observe(0.8)); // reset
        assert!(!t.observe(0.2));
        assert!(t.observe(0.2));
    }

    #[test]
    fn converged_detects_small_changes() {
        assert!(converged(&[1.0, 2.0], &[1.0, 2.0 + 1e-12], 1e-9));
        assert!(!converged(&[1.0, 2.0], &[1.0, 2.1], 1e-9));
    }
}
