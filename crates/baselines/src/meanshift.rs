//! Mean shift (Comaniciu & Meer, TPAMI 2002) — the density-seeking
//! baseline of the noise-resistance study (Appendix C).
//!
//! Every point ascends the Gaussian kernel-density estimate by iterating
//! the mean-shift update; points whose ascents end at the same mode form
//! a cluster. The paper highlights MS's Achilles heel: a single global
//! bandwidth cannot fit clusters of different scales, which is exactly
//! what Fig. 11(b) shows on the image features.

use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_affinity::kernel::LpNorm;
use alid_affinity::vector::Dataset;

/// Mean-shift tunables.
#[derive(Clone, Copy, Debug)]
pub struct MeanShiftParams {
    /// Gaussian kernel bandwidth `h`.
    pub bandwidth: f64,
    /// Ascent iteration cap per point.
    pub max_iters: usize,
    /// Ascent stops when the shift length drops below `tol * h`.
    pub tol: f64,
    /// Modes within `merge_radius * h` collapse into one cluster.
    pub merge_radius: f64,
}

impl MeanShiftParams {
    /// Defaults for a given bandwidth.
    pub fn with_bandwidth(h: f64) -> Self {
        assert!(h > 0.0, "bandwidth must be positive");
        Self { bandwidth: h, max_iters: 200, tol: 1e-3, merge_radius: 0.5 }
    }
}

/// Runs mean shift over the whole data set and returns the clustering
/// (every item assigned to its mode's cluster; densities left at 1.0,
/// matching the Fig. 11 protocol for non-affinity methods).
pub fn meanshift_detect_all(ds: &Dataset, params: &MeanShiftParams) -> Clustering {
    let n = ds.len();
    let dim = ds.dim();
    let norm = LpNorm::L2;
    let h = params.bandwidth;
    let inv_2h2 = 1.0 / (2.0 * h * h);
    let mut modes: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut current = vec![0.0; dim];
    let mut next = vec![0.0; dim];
    for i in 0..n {
        current.copy_from_slice(ds.get(i));
        for _ in 0..params.max_iters {
            // Weighted mean of all points under the Gaussian kernel.
            next.fill(0.0);
            let mut wsum = 0.0;
            for j in 0..n {
                let vj = ds.get(j);
                let d = norm.distance(&current, vj);
                let w = (-d * d * inv_2h2).exp();
                if w > 1e-12 {
                    wsum += w;
                    for (o, &v) in next.iter_mut().zip(vj) {
                        *o += w * v;
                    }
                }
            }
            if wsum <= 0.0 {
                break; // isolated point: it is its own mode
            }
            for o in next.iter_mut() {
                *o /= wsum;
            }
            let shift = norm.distance(&current, &next);
            current.copy_from_slice(&next);
            if shift < params.tol * h {
                break;
            }
        }
        modes.push(current.clone());
    }
    // Merge modes within merge_radius * h (greedy single-link).
    let merge_d = params.merge_radius * h;
    let mut representative: Vec<usize> = Vec::new(); // item index of each cluster's mode
    let mut assignment = vec![0usize; n];
    for (i, mode) in modes.iter().enumerate() {
        let found = representative.iter().position(|&r| norm.distance(mode, &modes[r]) <= merge_d);
        match found {
            Some(c) => assignment[i] = c,
            None => {
                representative.push(i);
                assignment[i] = representative.len() - 1;
            }
        }
    }
    let mut clustering = Clustering::new(n);
    for c in 0..representative.len() {
        let members: Vec<u32> = (0..n).filter(|&i| assignment[i] == c).map(|i| i as u32).collect();
        clustering.clusters.push(DetectedCluster::uniform(members, 1.0));
    }
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut ds = Dataset::new(1);
        for i in 0..8 {
            ds.push(&[i as f64 * 0.05]);
        }
        for i in 0..8 {
            ds.push(&[10.0 + i as f64 * 0.05]);
        }
        ds
    }

    #[test]
    fn finds_two_modes_with_a_fitting_bandwidth() {
        let ds = blobs();
        let clustering = meanshift_detect_all(&ds, &MeanShiftParams::with_bandwidth(0.5));
        assert_eq!(clustering.len(), 2);
        assert_eq!(clustering.clusters[0].members, (0..8).collect::<Vec<u32>>());
        assert_eq!(clustering.clusters[1].members, (8..16).collect::<Vec<u32>>());
    }

    #[test]
    fn oversized_bandwidth_merges_everything() {
        let ds = blobs();
        let clustering = meanshift_detect_all(&ds, &MeanShiftParams::with_bandwidth(50.0));
        assert_eq!(clustering.len(), 1);
        assert_eq!(clustering.clusters[0].len(), 16);
    }

    #[test]
    fn tiny_bandwidth_shatters_clusters() {
        let ds = blobs();
        let few = meanshift_detect_all(&ds, &MeanShiftParams::with_bandwidth(0.5)).len();
        let many = meanshift_detect_all(&ds, &MeanShiftParams::with_bandwidth(0.005)).len();
        assert!(many > few, "bandwidth sensitivity: {many} <= {few}");
    }

    #[test]
    fn every_item_lands_in_exactly_one_cluster() {
        let ds = blobs();
        let clustering = meanshift_detect_all(&ds, &MeanShiftParams::with_bandwidth(1.0));
        let mut seen = vec![false; ds.len()];
        for c in &clustering.clusters {
            for &m in &c.members {
                assert!(!seen[m as usize]);
                seen[m as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rejects_non_positive_bandwidth() {
        let _ = MeanShiftParams::with_bandwidth(0.0);
    }
}
