//! Spectral clustering baselines of the noise-resistance study
//! (Appendix C): SC-FL on the full affinity matrix (Ng, Jordan & Weiss,
//! NIPS 2002) and SC-NYS with the Nyström approximation (Fowlkes,
//! Belongie, Chung & Malik, TPAMI 2004).
//!
//! Both embed the items with the top-K eigenvectors of the normalised
//! affinity `D^{-1/2} A D^{-1/2}`, row-normalise, and run k-means in the
//! embedding. SC-FL extracts the eigenvectors by orthogonal iteration on
//! the full matrix; SC-NYS approximates them from an `m`-landmark sample
//! using the one-shot method of Fowlkes et al.

use alid_affinity::clustering::Clustering;
use alid_affinity::dense::DenseAffinity;
use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::vector::Dataset;
use alid_exec::{ExecPolicy, SharedSlice};
use alid_linalg::eigen::jacobi_eigh;
use alid_linalg::matrix::Mat;
use alid_linalg::power::simultaneous_iteration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kmeans::{kmeans_detect_all, KmeansParams};

/// Spectral clustering tunables.
#[derive(Clone, Copy, Debug)]
pub struct SpectralParams {
    /// Cluster count `K` (partitioning methods need it up front).
    pub k: usize,
    /// Power-iteration cap (SC-FL).
    pub max_power_iters: usize,
    /// Landmark count `m` (SC-NYS).
    pub landmarks: usize,
    /// RNG seed (landmark sampling, start block, k-means).
    pub seed: u64,
    /// Execution policy for the matrix work: the dense affinity build
    /// and power-iteration mat-vecs (SC-FL), the cross-block kernel
    /// evaluations and matrix products (SC-NYS). Byte-identical output
    /// for any worker count.
    pub exec: ExecPolicy,
}

impl SpectralParams {
    /// Defaults for a given `K`.
    pub fn with_k(k: usize) -> Self {
        assert!(k >= 1, "need at least one cluster");
        Self { k, max_power_iters: 300, landmarks: 150, seed: 0x5c, exec: ExecPolicy::sequential() }
    }
}

/// SC-FL: full-matrix normalised spectral clustering.
pub fn sc_full_detect_all(
    ds: &Dataset,
    kernel: &LaplacianKernel,
    params: &SpectralParams,
    cost: &std::sync::Arc<alid_affinity::cost::CostModel>,
) -> Clustering {
    let n = ds.len();
    if n == 0 {
        return Clustering::new(0);
    }
    let k = params.k.min(n);
    let affinity = DenseAffinity::build_with(ds, kernel, std::sync::Arc::clone(cost), params.exec);
    // Degrees (add a floor so isolated rows do not blow up the scaling).
    let deg: Vec<f64> = (0..n).map(|i| affinity.row(i).iter().sum::<f64>().max(1e-12)).collect();
    let dinv_sqrt: Vec<f64> = deg.iter().map(|d| 1.0 / d.sqrt()).collect();
    // Operator x -> D^{-1/2} A D^{-1/2} x (the mat-vec dominates SC-FL
    // after the build; both run on the exec layer).
    let matvec = |x: &[f64], out: &mut [f64]| {
        let scaled: Vec<f64> = x.iter().zip(&dinv_sqrt).map(|(v, s)| v * s).collect();
        affinity.matvec_with(&scaled, out, params.exec);
        for (o, s) in out.iter_mut().zip(&dinv_sqrt) {
            *o *= s;
        }
    };
    let (_vals, vecs) =
        simultaneous_iteration(matvec, n, k, params.max_power_iters, 1e-12, params.seed);
    let embedding = row_normalized_embedding(&vecs, n, k);
    kmeans_detect_all(&embedding, &KmeansParams { seed: params.seed, ..KmeansParams::with_k(k) })
}

/// SC-NYS: Nyström-approximated spectral clustering. Only the
/// `n x m` kernel block is ever computed.
pub fn sc_nystrom_detect_all(
    ds: &Dataset,
    kernel: &LaplacianKernel,
    params: &SpectralParams,
    cost: &std::sync::Arc<alid_affinity::cost::CostModel>,
) -> Clustering {
    let n = ds.len();
    if n == 0 {
        return Clustering::new(0);
    }
    let k = params.k.min(n);
    let m = params.landmarks.clamp(k, n);
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Sample m distinct landmarks.
    let mut ids: Vec<usize> = (0..n).collect();
    for i in 0..m {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    let landmarks = &ids[..m];
    let rest = &ids[m..];
    // W: m x m landmark block; B: m x (n-m) cross block. W is small
    // (m^2); B is the dominant kernel cost and fans out per landmark
    // row on the exec layer.
    let mut w = Mat::zeros(m, m);
    for (a, &i) in landmarks.iter().enumerate() {
        for (b, &j) in landmarks.iter().enumerate().skip(a + 1) {
            let v = kernel.eval(ds.get(i), ds.get(j));
            w[(a, b)] = v;
            w[(b, a)] = v;
        }
    }
    let bmat = {
        let rest_n = n - m;
        let mut bdata = vec![0.0f64; m * rest_n];
        let shared = SharedSlice::new(&mut bdata);
        params.exec.for_each_index(m, |a| {
            let vi = ds.get(landmarks[a]);
            for (b, &j) in rest.iter().enumerate() {
                // SAFETY: row a is written only by the worker that owns
                // index a.
                unsafe { shared.write(a * rest_n + b, kernel.eval(vi, ds.get(j))) };
            }
        });
        Mat::from_vec(m, rest_n, bdata)
    };
    cost.record_kernel_evals((m * (m - 1) / 2 + m * (n - m)) as u64);
    cost.alloc_entries((m * m + m * (n - m)) as u64);
    // ---- Approximate degrees (Fowlkes et al., one-shot) -------------
    // d1 = W 1 + B 1 ; d2 = Bᵀ 1 + Bᵀ W^{-1} (B 1).
    let ones_m = vec![1.0; m];
    let mut w_row = vec![0.0; m];
    w.matvec(&ones_m, &mut w_row);
    let b_row: Vec<f64> = (0..m).map(|i| bmat.row(i).iter().sum()).collect();
    let d1: Vec<f64> = (0..m).map(|i| (w_row[i] + b_row[i]).max(1e-12)).collect();
    let w_eig = jacobi_eigh(&w, 1e-12, 60);
    let w_pinv = w_eig.apply_function(|l| if l.abs() > 1e-10 { 1.0 / l } else { 0.0 });
    let mut winv_brow = vec![0.0; m];
    w_pinv.matvec(&b_row, &mut winv_brow);
    let bt = bmat.transpose();
    let mut d2 = vec![0.0; n - m];
    for (b, d) in d2.iter_mut().enumerate() {
        let row = bt.row(b);
        let col_sum: f64 = row.iter().sum();
        let corr: f64 = row.iter().zip(&winv_brow).map(|(x, y)| x * y).sum();
        *d = (col_sum + corr).max(1e-12);
    }
    // ---- Normalise W and B by the approximate degrees ----------------
    let mut wn = w.clone();
    for i in 0..m {
        for j in 0..m {
            wn[(i, j)] /= (d1[i] * d1[j]).sqrt();
        }
    }
    let mut bn = bmat.clone();
    for i in 0..m {
        for j in 0..(n - m) {
            bn[(i, j)] /= (d1[i] * d2[j]).sqrt();
        }
    }
    // ---- One-shot orthogonalisation ----------------------------------
    // S = Wn + Wn^{-1/2} Bn Bnᵀ Wn^{-1/2}; eigendecompose S; embed
    // V = [Wn; Bnᵀ] Wn^{-1/2} U Λ^{-1/2}.
    let wn_eig = jacobi_eigh(&wn, 1e-12, 60);
    let wn_inv_sqrt = wn_eig.apply_function(|l| if l > 1e-10 { 1.0 / l.sqrt() } else { 0.0 });
    let bbt = bn.matmul_with(&bn.transpose(), params.exec);
    let mut s = wn.clone();
    let corr = wn_inv_sqrt.matmul_with(&bbt, params.exec).matmul_with(&wn_inv_sqrt, params.exec);
    for i in 0..m {
        for j in 0..m {
            s[(i, j)] += corr[(i, j)];
        }
    }
    // Jacobi needs exact symmetry; the matmuls leave ~1e-15 asymmetry.
    for i in 0..m {
        for j in (i + 1)..m {
            let avg = 0.5 * (s[(i, j)] + s[(j, i)]);
            s[(i, j)] = avg;
            s[(j, i)] = avg;
        }
    }
    let s_eig = jacobi_eigh(&s, 1e-12, 60);
    // Top-k eigenpairs of S.
    // proj = Wn^{-1/2} U_k Λ_k^{-1/2}
    let proj = {
        let mut uk = Mat::zeros(m, k);
        for j in 0..k {
            let col = s_eig.vectors.col(j);
            let lam = s_eig.values[j].max(1e-12);
            for i in 0..m {
                uk[(i, j)] = col[i] / lam.sqrt();
            }
        }
        wn_inv_sqrt.matmul(&uk)
    };
    // Embedding rows: landmarks via Wn * proj, the rest via Bnᵀ * proj.
    let land_emb = wn.matmul_with(&proj, params.exec);
    let rest_emb = bn.transpose().matmul_with(&proj, params.exec);
    let mut embedding_rows = vec![vec![0.0; k]; n];
    for (a, &i) in landmarks.iter().enumerate() {
        embedding_rows[i].copy_from_slice(land_emb.row(a));
    }
    for (b, &j) in rest.iter().enumerate() {
        embedding_rows[j].copy_from_slice(rest_emb.row(b));
    }
    // Row-normalise and cluster.
    let mut flat = Vec::with_capacity(n * k);
    for row in &embedding_rows {
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            flat.extend(row.iter().map(|v| v / norm));
        } else {
            flat.extend(row.iter());
        }
    }
    cost.free_entries((m * m + m * (n - m)) as u64);
    let embedding = Dataset::from_flat(k, flat);
    kmeans_detect_all(&embedding, &KmeansParams { seed: params.seed, ..KmeansParams::with_k(k) })
}

/// Row-normalises the `n x k` eigenvector matrix into a [`Dataset`].
fn row_normalized_embedding(vecs: &Mat, n: usize, k: usize) -> Dataset {
    let mut flat = Vec::with_capacity(n * k);
    for i in 0..n {
        let row = vecs.row(i);
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            flat.extend(row.iter().map(|v| v / norm));
        } else {
            flat.extend(row.iter());
        }
    }
    Dataset::from_flat(k, flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;

    /// Three well-separated 2-d blobs.
    fn blobs() -> Dataset {
        let mut ds = Dataset::new(2);
        for c in 0..3 {
            let cx = c as f64 * 20.0;
            for i in 0..12 {
                ds.push(&[cx + (i % 4) as f64 * 0.1, (i / 4) as f64 * 0.1]);
            }
        }
        ds
    }

    fn assert_partitions_blobs(clustering: &Clustering) {
        // Each blob must land in a single cluster.
        let labels = clustering.labels();
        for blob in 0..3 {
            let first = labels[blob * 12].expect("assigned");
            for i in 0..12 {
                assert_eq!(labels[blob * 12 + i], Some(first), "blob {blob} split at item {i}");
            }
        }
    }

    #[test]
    fn sc_full_separates_three_blobs() {
        let ds = blobs();
        let kernel = LaplacianKernel::l2(1.0);
        let clustering =
            sc_full_detect_all(&ds, &kernel, &SpectralParams::with_k(3), &CostModel::shared());
        assert_eq!(clustering.covered(), 36);
        assert_partitions_blobs(&clustering);
    }

    #[test]
    fn sc_nystrom_separates_three_blobs() {
        let ds = blobs();
        let kernel = LaplacianKernel::l2(1.0);
        let mut p = SpectralParams::with_k(3);
        p.landmarks = 12;
        let clustering = sc_nystrom_detect_all(&ds, &kernel, &p, &CostModel::shared());
        assert_eq!(clustering.covered(), 36);
        assert_partitions_blobs(&clustering);
    }

    #[test]
    fn nystrom_computes_far_fewer_kernel_entries() {
        let ds = blobs();
        let kernel = LaplacianKernel::l2(1.0);
        let full_cost = CostModel::shared();
        let _ = sc_full_detect_all(&ds, &kernel, &SpectralParams::with_k(3), &full_cost);
        let nys_cost = CostModel::shared();
        let mut p = SpectralParams::with_k(3);
        p.landmarks = 6;
        let _ = sc_nystrom_detect_all(&ds, &kernel, &p, &nys_cost);
        assert!(
            nys_cost.snapshot().kernel_evals < full_cost.snapshot().kernel_evals,
            "Nyström must evaluate fewer kernels"
        );
        assert!(nys_cost.snapshot().entries_peak < full_cost.snapshot().entries_peak);
    }

    #[test]
    fn parallel_policies_are_byte_identical() {
        let ds = blobs();
        let kernel = LaplacianKernel::l2(1.0);
        let mut base = SpectralParams::with_k(3);
        base.landmarks = 12;
        let full_seq = sc_full_detect_all(&ds, &kernel, &base, &CostModel::shared());
        let nys_seq = sc_nystrom_detect_all(&ds, &kernel, &base, &CostModel::shared());
        for workers in [2usize, 4] {
            let mut p = base;
            p.exec = ExecPolicy::workers(workers);
            let full_par = sc_full_detect_all(&ds, &kernel, &p, &CostModel::shared());
            let nys_par = sc_nystrom_detect_all(&ds, &kernel, &p, &CostModel::shared());
            assert_eq!(full_seq.labels(), full_par.labels(), "SC-FL diverged at {workers}");
            assert_eq!(nys_seq.labels(), nys_par.labels(), "SC-NYS diverged at {workers}");
        }
    }

    #[test]
    fn landmark_count_is_clamped() {
        let ds = blobs();
        let kernel = LaplacianKernel::l2(1.0);
        let mut p = SpectralParams::with_k(2);
        p.landmarks = 10_000; // > n: clamp to n
        let clustering = sc_nystrom_detect_all(&ds, &kernel, &p, &CostModel::shared());
        assert_eq!(clustering.covered(), 36);
    }

    #[test]
    fn k_one_collapses_everything() {
        let ds = blobs();
        let kernel = LaplacianKernel::l2(1.0);
        let clustering =
            sc_full_detect_all(&ds, &kernel, &SpectralParams::with_k(1), &CostModel::shared());
        assert_eq!(clustering.len(), 1);
        assert_eq!(clustering.clusters[0].len(), 36);
    }
}
