//! The IID baseline — Infection Immunization Dynamics on the *full*
//! affinity matrix (Rota Bulò, Pelillo & Bomze, CVIU 2011).
//!
//! Per iteration IID is `O(n)` — the selection scan and the product
//! update both touch one column — but it needs the whole matrix
//! materialised up front, which is the `O(n^2)` wall the ALID paper
//! knocks down. The peeling protocol mirrors Section 4.4: converge from
//! the barycenter of the remaining items, record the support as a
//! cluster, peel it, repeat.

use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_affinity::simplex;

use crate::common::{Graph, HaltPolicy};

/// IID tunables.
#[derive(Clone, Copy, Debug)]
pub struct IidParams {
    /// Iteration cap per detection. Converging from the barycenter
    /// zeroes weak vertices roughly one per iteration, so the cap should
    /// comfortably exceed `n`.
    pub max_iters: usize,
    /// Relative immunity tolerance.
    pub tol: f64,
    /// When the peeling loop may stop early.
    pub halt: HaltPolicy,
}

impl Default for IidParams {
    fn default() -> Self {
        Self { max_iters: 200_000, tol: 1e-9, halt: HaltPolicy::PeelAll }
    }
}

/// Outcome of one full-graph IID convergence.
#[derive(Clone, Copy, Debug)]
pub struct IidOutcome {
    /// Iterations executed.
    pub iterations: usize,
    /// Final density.
    pub density: f64,
    /// Whether the infective set emptied before the cap.
    pub converged: bool,
}

/// Runs IID to convergence over the alive subset. `x` must be a simplex
/// vector supported on alive items and `gvec = A x` (both full length);
/// they are updated in place. `col` is an `n`-sized scratch buffer.
pub fn iid_converge<G: Graph>(
    graph: &G,
    alive: &[bool],
    x: &mut [f64],
    gvec: &mut [f64],
    col: &mut [f64],
    params: &IidParams,
) -> IidOutcome {
    let mut iterations = 0;
    let mut converged = false;
    while iterations < params.max_iters {
        let pi = simplex::dot(x, gvec);
        let scale = params.tol * (1.0 + pi.abs());
        // Select M(x) over the alive range (Eq. 6 of the ALID paper).
        let mut best_infect: Option<(usize, f64)> = None;
        let mut best_weak: Option<(usize, f64)> = None;
        for i in 0..x.len() {
            if !alive[i] {
                continue;
            }
            let d = gvec[i] - pi;
            if d > scale {
                if best_infect.is_none_or(|(_, b)| d > b) {
                    best_infect = Some((i, d));
                }
            } else if d < -scale
                && x[i] > simplex::SUPPORT_EPS
                && best_weak.is_none_or(|(_, b)| -d > b)
            {
                best_weak = Some((i, -d));
            }
        }
        let choice = match (best_infect, best_weak) {
            (None, None) => {
                converged = true;
                break;
            }
            (Some(inf), None) => Ok(inf),
            (None, Some(weak)) => Err(weak),
            (Some(inf), Some(weak)) => {
                if inf.1 >= weak.1 {
                    Ok(inf)
                } else {
                    Err(weak)
                }
            }
        };
        match choice {
            Ok((i, d)) => {
                // Infection by vertex s_i.
                let denom = -2.0 * gvec[i] + pi;
                let eps = if denom < 0.0 { (-d / denom).min(1.0) } else { 1.0 };
                graph.column_into(i, col);
                for (g, &c) in gvec.iter_mut().zip(col.iter()) {
                    *g = (1.0 - eps) * *g + eps * c;
                }
                simplex::invade_vertex(x, i, eps);
            }
            Err((i, neg_d)) => {
                // Immunization by the co-vertex s_i(x).
                let xi = x[i];
                let mu = xi / (xi - 1.0);
                let num = mu * (-neg_d);
                let den = mu * mu * (-2.0 * gvec[i] + pi);
                let eps = if den < 0.0 { (-num / den).min(1.0) } else { 1.0 };
                graph.column_into(i, col);
                let step = mu * eps;
                for (g, &c) in gvec.iter_mut().zip(col.iter()) {
                    *g += step * (c - *g);
                }
                simplex::invade_covertex(x, i, eps);
            }
        }
        iterations += 1;
    }
    simplex::renormalize(x);
    IidOutcome { iterations, density: simplex::dot(x, gvec), converged }
}

/// Detects all clusters by barycenter restarts and peeling.
pub fn iid_detect_all<G: Graph>(graph: &G, params: &IidParams) -> Clustering {
    let n = graph.n();
    let mut clustering = Clustering::new(n);
    if n == 0 {
        return clustering;
    }
    let mut alive = vec![true; n];
    let mut alive_count = n;
    // Row sums over alive columns, maintained incrementally so each
    // barycenter restart costs O(n) instead of a fresh O(n^2) mat-vec.
    let mut alive_rowsum = vec![0.0; n];
    for (i, slot) in alive_rowsum.iter_mut().enumerate() {
        let mut acc = 0.0;
        graph.for_row(i, &mut |_, v| acc += v);
        *slot = acc;
    }
    let mut x = vec![0.0; n];
    let mut gvec = vec![0.0; n];
    let mut col = vec![0.0; n];
    let mut tracker = params.halt.tracker();
    while alive_count > 0 {
        let w = 1.0 / alive_count as f64;
        for i in 0..n {
            x[i] = if alive[i] { w } else { 0.0 };
            gvec[i] = if alive[i] { alive_rowsum[i] * w } else { 0.0 };
        }
        let out = iid_converge(graph, &alive, &mut x, &mut gvec, &mut col, params);
        let members: Vec<u32> =
            (0..n).filter(|&i| alive[i] && x[i] > simplex::SUPPORT_EPS).map(|i| i as u32).collect();
        // Progress guarantee even if the dynamics collapsed numerically.
        let members = if members.is_empty() {
            vec![(0..n).find(|&i| alive[i]).expect("alive_count > 0") as u32]
        } else {
            members
        };
        let weights: Vec<f64> = {
            let raw: Vec<f64> = members.iter().map(|&m| x[m as usize]).collect();
            let s: f64 = raw.iter().sum();
            if s > 0.0 {
                raw.into_iter().map(|v| v / s).collect()
            } else {
                vec![1.0 / members.len() as f64; members.len()]
            }
        };
        for &m in &members {
            alive[m as usize] = false;
            alive_count -= 1;
            graph.for_row(m as usize, &mut |j, v| alive_rowsum[j] -= v);
        }
        let density = out.density;
        clustering.clusters.push(DetectedCluster { members, weights, density });
        if tracker.observe(density) {
            break;
        }
    }
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_affinity::dense::DenseAffinity;
    use alid_affinity::kernel::LaplacianKernel;
    use alid_affinity::vector::Dataset;

    fn two_clusters() -> DenseAffinity {
        let mut flat = Vec::new();
        for i in 0..5 {
            flat.push(i as f64 * 0.05);
        }
        for i in 0..4 {
            flat.push(10.0 + i as f64 * 0.05);
        }
        flat.extend([40.0, -30.0]); // noise
        let ds = Dataset::from_flat(1, flat);
        DenseAffinity::build(&ds, &LaplacianKernel::l2(1.0), CostModel::shared())
    }

    #[test]
    fn finds_both_clusters_then_noise() {
        let g = two_clusters();
        let clustering = iid_detect_all(&g, &IidParams::default());
        // The 4-clique's uniform density is ~0.69 ((m-1)/m cap).
        let dominant = clustering.dominant(0.65, 3);
        assert_eq!(dominant.len(), 2);
        assert_eq!(dominant.clusters[0].members, vec![0, 1, 2, 3, 4]);
        assert_eq!(dominant.clusters[1].members, vec![5, 6, 7, 8]);
        // Everything peeled exactly once.
        let total: usize = clustering.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn densest_cluster_is_detected_first() {
        let g = two_clusters();
        let clustering = iid_detect_all(&g, &IidParams::default());
        // The 5-clique has higher pi than the 4-clique ((m-1)/m factor).
        assert!(clustering.clusters[0].density >= clustering.clusters[1].density);
        assert_eq!(clustering.clusters[0].members.len(), 5);
    }

    #[test]
    fn converge_reaches_immunity() {
        let g = two_clusters();
        let n = g.n();
        let alive = vec![true; n];
        let mut x = vec![1.0 / n as f64; n];
        let mut gvec = vec![0.0; n];
        let support: Vec<usize> = (0..n).collect();
        g.matvec_support(&x, &support, &mut gvec);
        let mut col = vec![0.0; n];
        let out = iid_converge(&g, &alive, &mut x, &mut gvec, &mut col, &IidParams::default());
        assert!(out.converged);
        let pi = out.density;
        for (i, &g) in gvec.iter().enumerate() {
            assert!(g - pi <= 1e-6 * (1.0 + pi), "vertex {i} still infective");
        }
    }

    #[test]
    fn incremental_gvec_matches_direct_product() {
        let g = two_clusters();
        let n = g.n();
        let alive = vec![true; n];
        let mut x = vec![1.0 / n as f64; n];
        let mut gvec = vec![0.0; n];
        let support: Vec<usize> = (0..n).collect();
        g.matvec_support(&x, &support, &mut gvec);
        let mut col = vec![0.0; n];
        let p = IidParams { max_iters: 25, ..Default::default() };
        let _ = iid_converge(&g, &alive, &mut x, &mut gvec, &mut col, &p);
        let sup: Vec<usize> = (0..n).filter(|&i| x[i] > 0.0).collect();
        let mut fresh = vec![0.0; n];
        g.matvec_support(&x, &sup, &mut fresh);
        for i in 0..n {
            assert!((gvec[i] - fresh[i]).abs() < 1e-8, "gvec[{i}] drifted");
        }
    }

    #[test]
    fn halt_policy_cuts_the_noise_tail() {
        let g = two_clusters();
        let p = IidParams {
            halt: HaltPolicy::StopBelowDensity { threshold: 0.5, patience: 0 },
            ..Default::default()
        };
        let clustering = iid_detect_all(&g, &p);
        // Two dense detections, then the first sub-threshold one stops
        // the loop.
        assert!(clustering.len() <= 4);
        let full = iid_detect_all(&g, &IidParams::default());
        assert!(full.len() >= clustering.len());
    }

    #[test]
    fn empty_graph_yields_empty_clustering() {
        let ds = Dataset::from_flat(1, vec![]);
        let g = DenseAffinity::build(&ds, &LaplacianKernel::l2(1.0), CostModel::shared());
        let clustering = iid_detect_all(&g, &IidParams::default());
        assert!(clustering.is_empty());
    }
}
