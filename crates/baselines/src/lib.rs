//! Every comparator from the ALID paper's evaluation, implemented from
//! the original publications.
//!
//! Affinity-based methods (run on a [`common::Graph`], dense or
//! LSH-sparsified):
//!
//! * [`iid`] — Infection Immunization Dynamics on the full matrix
//!   (Rota Bulò et al. 2011), `O(n)` per iteration but `O(n^2)` matrix;
//! * [`rd`] — replicator dynamics / Dominant Sets (Pavan & Pelillo 2007);
//! * [`sea`] — Shrinking and Expansion Algorithm (Liu et al. 2013);
//! * [`ap`] — Affinity Propagation (Frey & Dueck 2007).
//!
//! Partitioning / density methods (Appendix C, Fig. 11):
//!
//! * [`kmeans`] — Lloyd + k-means++;
//! * [`spectral`] — SC-FL (Ng et al. 2002) and SC-NYS (Fowlkes et al.
//!   2004, Nyström);
//! * [`meanshift`] — Gaussian mean shift (Comaniciu & Meer 2002).

#![warn(missing_docs)]
pub mod ap;
pub mod common;
pub mod iid;
pub mod kmeans;
pub mod meanshift;
pub mod rd;
pub mod sea;
pub mod spectral;

pub use ap::{ap_detect_all, ApParams};
pub use common::{Graph, HaltPolicy};
pub use iid::{iid_detect_all, IidParams};
pub use kmeans::{kmeans_detect_all, KmeansParams};
pub use meanshift::{meanshift_detect_all, MeanShiftParams};
pub use rd::{ds_detect_all, RdParams};
pub use sea::{sea_detect_all, SeaParams};
pub use spectral::{sc_full_detect_all, sc_nystrom_detect_all, SpectralParams};
