//! Affinity Propagation (Frey & Dueck, Science 2007).
//!
//! AP exchanges responsibility/availability messages until a stable set
//! of exemplars emerges; every item is then assigned to its best
//! exemplar. It detects an unknown number of clusters and resists noise,
//! but passing messages over all edges is expensive — the ALID paper
//! singles it out as the slowest baseline once the matrix gets dense
//! (Fig. 6(c)). This implementation runs on any [`Graph`]: dense
//! matrices exchange `O(n^2)` messages per sweep, LSH-sparsified ones
//! `O(|E|)`.

use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_affinity::cost::CostModel;
use alid_affinity::fx::FxHashMap;

use crate::common::Graph;

/// AP tunables.
#[derive(Clone, Copy, Debug)]
pub struct ApParams {
    /// Damping factor `λ` (0.5–0.9; higher damps oscillations).
    pub damping: f64,
    /// Maximum message sweeps.
    pub max_iters: usize,
    /// Sweeps the exemplar set must stay unchanged to declare
    /// convergence.
    pub convits: usize,
    /// Exemplar preference `s(k,k)`; `None` uses the median stored
    /// similarity (the standard default).
    pub preference: Option<f64>,
}

impl Default for ApParams {
    fn default() -> Self {
        // Frey & Dueck's reference settings; heavier damping (0.9) can
        // freeze oscillation into split exemplars on tight cliques.
        Self { damping: 0.5, max_iters: 1000, convits: 50, preference: None }
    }
}

/// Edge list in CSR-ish form for message passing (includes the self
/// edges that carry the preferences).
struct Edges {
    /// (i, k, s_ik) triples, grouped by i.
    src: Vec<u32>,
    dst: Vec<u32>,
    sim: Vec<f64>,
    /// Responsibilities / availabilities, parallel to the triples.
    r: Vec<f64>,
    a: Vec<f64>,
    /// Edge ranges per source row.
    row_ptr: Vec<usize>,
    /// Edge ids grouped by destination (for the availability update).
    by_dst: Vec<Vec<u32>>,
    /// Self-edge id per vertex.
    self_edge: Vec<u32>,
}

fn build_edges<G: Graph>(graph: &G, preference: f64, cost: &CostModel) -> Edges {
    let n = graph.n();
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut sim = Vec::new();
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0);
    for i in 0..n {
        graph.for_row(i, &mut |j, v| {
            src.push(i as u32);
            dst.push(j as u32);
            sim.push(v);
        });
        // Self edge (preference).
        src.push(i as u32);
        dst.push(i as u32);
        sim.push(preference);
        row_ptr.push(src.len());
    }
    let m = src.len();
    let mut by_dst: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut self_edge = vec![0u32; n];
    for e in 0..m {
        by_dst[dst[e] as usize].push(e as u32);
        if src[e] == dst[e] {
            self_edge[src[e] as usize] = e as u32;
        }
    }
    // Message storage is part of AP's memory footprint: 2 floats/edge.
    cost.alloc_entries(2 * m as u64);
    Edges { src, dst, sim, r: vec![0.0; m], a: vec![0.0; m], row_ptr, by_dst, self_edge }
}

/// Runs affinity propagation and returns the clustering (one cluster per
/// exemplar; cluster density = average intra-cluster affinity, so the
/// usual dominant filter applies downstream).
pub fn ap_detect_all<G: Graph>(graph: &G, params: &ApParams, cost: &CostModel) -> Clustering {
    let n = graph.n();
    if n == 0 {
        return Clustering::new(0);
    }
    let preference = params.preference.unwrap_or_else(|| median_similarity(graph));
    let mut e = build_edges(graph, preference, cost);
    let m = e.src.len();
    let lam = params.damping;
    let mut exemplars_prev: Vec<bool> = vec![false; n];
    let mut stable = 0usize;
    for _sweep in 0..params.max_iters {
        // ---- Responsibilities --------------------------------------
        // r(i,k) <- s(i,k) - max_{k' != k} (a(i,k') + s(i,k')).
        for i in 0..n {
            let lo = e.row_ptr[i];
            let hi = e.row_ptr[i + 1];
            // Track the best and second-best a+s over the row.
            let mut best = f64::NEG_INFINITY;
            let mut second = f64::NEG_INFINITY;
            let mut best_edge = usize::MAX;
            for idx in lo..hi {
                let v = e.a[idx] + e.sim[idx];
                if v > best {
                    second = best;
                    best = v;
                    best_edge = idx;
                } else if v > second {
                    second = v;
                }
            }
            for idx in lo..hi {
                let competitor = if idx == best_edge { second } else { best };
                let newr = e.sim[idx] - competitor;
                e.r[idx] = lam * e.r[idx] + (1.0 - lam) * newr;
            }
        }
        // ---- Availabilities ----------------------------------------
        // a(i,k) <- min(0, r(k,k) + sum_{i' not in {i,k}} max(0, r(i',k)))
        // a(k,k) <- sum_{i' != k} max(0, r(i',k)).
        for k in 0..n {
            let selfe = e.self_edge[k] as usize;
            let rkk = e.r[selfe];
            let mut pos_sum = 0.0;
            for &eid in &e.by_dst[k] {
                let eid = eid as usize;
                if eid != selfe {
                    pos_sum += e.r[eid].max(0.0);
                }
            }
            for &eid in &e.by_dst[k] {
                let eid = eid as usize;
                let newa = if eid == selfe {
                    pos_sum
                } else {
                    let without_i = pos_sum - e.r[eid].max(0.0);
                    (rkk + without_i).min(0.0)
                };
                e.a[eid] = lam * e.a[eid] + (1.0 - lam) * newa;
            }
        }
        // ---- Exemplar decisions ------------------------------------
        let mut exemplars = vec![false; n];
        for (k, flag) in exemplars.iter_mut().enumerate() {
            let selfe = e.self_edge[k] as usize;
            *flag = e.r[selfe] + e.a[selfe] > 0.0;
        }
        if exemplars == exemplars_prev {
            stable += 1;
            if stable >= params.convits && exemplars.iter().any(|&x| x) {
                break;
            }
        } else {
            stable = 0;
            exemplars_prev = exemplars;
        }
    }
    // ---- Assignment -------------------------------------------------
    let exemplars: Vec<usize> = (0..n)
        .filter(|&k| {
            let selfe = e.self_edge[k] as usize;
            e.r[selfe] + e.a[selfe] > 0.0
        })
        .collect();
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    for &k in &exemplars {
        assignment[k] = Some(k);
    }
    if !exemplars.is_empty() {
        for i in 0..n {
            if assignment[i].is_some() {
                continue;
            }
            // Best exemplar among i's stored edges.
            let lo = e.row_ptr[i];
            let hi = e.row_ptr[i + 1];
            let mut best: Option<(f64, usize)> = None;
            for idx in lo..hi {
                let k = e.dst[idx] as usize;
                if k != i && assignment[k] == Some(k) {
                    let s = e.sim[idx];
                    if best.is_none_or(|(b, _)| s > b) {
                        best = Some((s, k));
                    }
                }
            }
            // Items with no edge to any exemplar stay their own cluster
            // (typical for isolated noise on sparse graphs).
            assignment[i] = Some(best.map_or(i, |(_, k)| k));
        }
    } else {
        // Degenerate run (no exemplar emerged): every item is its own
        // exemplar, which downstream density filtering discards.
        for (i, a) in assignment.iter_mut().enumerate() {
            *a = Some(i);
        }
    }
    cost.free_entries(2 * m as u64);
    let mut groups: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
    for (i, a) in assignment.iter().enumerate() {
        groups.entry(a.expect("assigned above")).or_default().push(i as u32);
    }
    let mut keys: Vec<usize> = groups.keys().copied().collect();
    keys.sort_unstable();
    let mut clustering = Clustering::new(n);
    for k in keys {
        let members = groups.remove(&k).expect("key present");
        let density = graph.uniform_density(&members);
        clustering.clusters.push(DetectedCluster::uniform(members, density));
    }
    clustering
}

/// Median stored off-diagonal similarity (the canonical preference).
fn median_similarity<G: Graph>(graph: &G) -> f64 {
    let n = graph.n();
    let mut sims = Vec::new();
    for i in 0..n {
        graph.for_row(i, &mut |_, v| sims.push(v));
    }
    if sims.is_empty() {
        return 0.0;
    }
    let mid = sims.len() / 2;
    *sims.select_nth_unstable_by(mid, |a, b| a.total_cmp(b)).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::cost::CostModel;
    use alid_affinity::dense::DenseAffinity;
    use alid_affinity::kernel::LaplacianKernel;
    use alid_affinity::vector::Dataset;

    fn graph(points: Vec<f64>) -> DenseAffinity {
        let ds = Dataset::from_flat(1, points);
        DenseAffinity::build(&ds, &LaplacianKernel::l2(1.0), CostModel::shared())
    }

    #[test]
    fn separates_two_obvious_clusters() {
        let g = graph(vec![0.0, 0.1, 0.2, 10.0, 10.1, 10.2]);
        let clustering = ap_detect_all(&g, &ApParams::default(), &CostModel::new());
        // AP partitions everything; the two tight triples must appear.
        let sets: Vec<&[u32]> = clustering.clusters.iter().map(|c| c.members.as_slice()).collect();
        assert!(sets.contains(&&[0u32, 1, 2][..]), "missing {{0,1,2}} in {sets:?}");
        assert!(sets.contains(&&[3u32, 4, 5][..]), "missing {{3,4,5}} in {sets:?}");
    }

    #[test]
    fn every_item_is_assigned_exactly_once() {
        let g = graph(vec![0.0, 0.5, 1.0, 5.0, 5.5, 20.0, -7.0]);
        let clustering = ap_detect_all(&g, &ApParams::default(), &CostModel::new());
        let mut seen = vec![false; 7];
        for c in &clustering.clusters {
            for &m in &c.members {
                assert!(!seen[m as usize], "duplicate assignment of {m}");
                seen[m as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s), "some item unassigned");
    }

    #[test]
    fn low_preference_yields_fewer_clusters() {
        let pts = vec![0.0, 0.2, 0.4, 3.0, 3.2, 3.4, 6.0, 6.2];
        let g = graph(pts);
        let few = ap_detect_all(
            &g,
            &ApParams { preference: Some(0.01), ..Default::default() },
            &CostModel::new(),
        );
        let many = ap_detect_all(
            &g,
            &ApParams { preference: Some(0.95), ..Default::default() },
            &CostModel::new(),
        );
        assert!(few.len() <= many.len(), "{} > {}", few.len(), many.len());
    }

    #[test]
    fn noise_forms_loose_clusters_filtered_by_density() {
        let g = graph(vec![0.0, 0.05, 0.1, 0.15, 30.0, -25.0, 80.0]);
        // AP assigns *every* item to its best exemplar; a preference
        // above the far-noise affinities lets isolated noise points
        // self-exemplar instead of glomming onto the tight quad.
        let params = ApParams { preference: Some(0.01), ..Default::default() };
        let clustering = ap_detect_all(&g, &params, &CostModel::new());
        let dominant = clustering.dominant(0.6, 3);
        assert_eq!(dominant.len(), 1);
        assert_eq!(dominant.clusters[0].members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn message_memory_is_accounted_and_released() {
        let g = graph(vec![0.0, 1.0, 2.0]);
        let cost = CostModel::new();
        let _ = ap_detect_all(&g, &ApParams::default(), &cost);
        let snap = cost.snapshot();
        assert_eq!(snap.entries_current, 0);
        // 3x3 dense rows minus diagonal plus self edges = 9 edges, 2
        // floats each.
        assert_eq!(snap.entries_peak, 18);
    }

    #[test]
    fn empty_graph_is_fine() {
        let ds = Dataset::from_flat(1, vec![]);
        let g = DenseAffinity::build(&ds, &LaplacianKernel::l2(1.0), CostModel::shared());
        let clustering = ap_detect_all(&g, &ApParams::default(), &CostModel::new());
        assert!(clustering.is_empty());
    }
}
