//! k-means (Lloyd 1982) with k-means++ seeding — the canonical
//! partitioning baseline of the noise-resistance study (Appendix C).
//!
//! Partitioning methods need the cluster count up front and force every
//! item — noise included — into some cluster, which is exactly the
//! failure mode Fig. 11 demonstrates. Following Liu et al., the harness
//! passes `K = true clusters + 1`, counting noise as one extra cluster.

use alid_affinity::clustering::{Clustering, DetectedCluster};
use alid_affinity::kernel::LpNorm;
use alid_affinity::vector::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// k-means tunables.
#[derive(Clone, Copy, Debug)]
pub struct KmeansParams {
    /// Cluster count `K`.
    pub k: usize,
    /// Lloyd iteration cap per restart.
    pub max_iters: usize,
    /// Restarts (best inertia wins).
    pub n_init: usize,
    /// Relative centroid-movement tolerance.
    pub tol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl KmeansParams {
    /// Defaults for a given `K`.
    pub fn with_k(k: usize) -> Self {
        assert!(k >= 1, "need at least one cluster");
        Self { k, max_iters: 100, n_init: 4, tol: 1e-6, seed: 0x6d5 }
    }
}

/// One k-means run's result.
#[derive(Clone, Debug)]
pub struct KmeansFit {
    /// Per-item cluster index.
    pub labels: Vec<usize>,
    /// `k x dim` centroids, row-major.
    pub centroids: Vec<f64>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

/// Runs k-means++ / Lloyd with restarts and returns the best fit.
///
/// # Panics
/// Panics if `k > n` or the data set is empty.
pub fn kmeans_fit(ds: &Dataset, params: &KmeansParams) -> KmeansFit {
    let n = ds.len();
    assert!(n > 0, "empty data set");
    assert!(params.k <= n, "k = {} exceeds n = {n}", params.k);
    let mut best: Option<KmeansFit> = None;
    for restart in 0..params.n_init.max(1) {
        let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(restart as u64));
        let fit = lloyd(ds, params, &mut rng);
        if best.as_ref().is_none_or(|b| fit.inertia < b.inertia) {
            best = Some(fit);
        }
    }
    best.expect("at least one restart")
}

/// Converts a fit into the shared [`Clustering`] vocabulary. Densities
/// are left at 1.0: the Fig. 11 protocol evaluates partitioning methods
/// on all their clusters without a dominance filter.
pub fn kmeans_detect_all(ds: &Dataset, params: &KmeansParams) -> Clustering {
    let fit = kmeans_fit(ds, params);
    let mut clustering = Clustering::new(ds.len());
    for c in 0..params.k {
        let members: Vec<u32> = fit
            .labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(i, _)| i as u32)
            .collect();
        if !members.is_empty() {
            clustering.clusters.push(DetectedCluster::uniform(members, 1.0));
        }
    }
    clustering
}

fn lloyd(ds: &Dataset, params: &KmeansParams, rng: &mut StdRng) -> KmeansFit {
    let n = ds.len();
    let dim = ds.dim();
    let k = params.k;
    let norm = LpNorm::L2;
    // ---- k-means++ seeding ------------------------------------------
    let mut centroids = vec![0.0; k * dim];
    let first = rng.gen_range(0..n);
    centroids[..dim].copy_from_slice(ds.get(first));
    let mut d2: Vec<f64> = (0..n)
        .map(|i| {
            let d = norm.distance(ds.get(i), &centroids[..dim]);
            d * d
        })
        .collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids[c * dim..(c + 1) * dim].copy_from_slice(ds.get(pick));
        for (i, d) in d2.iter_mut().enumerate() {
            let nd = norm.distance(ds.get(i), &centroids[c * dim..(c + 1) * dim]);
            *d = d.min(nd * nd);
        }
    }
    // ---- Lloyd iterations -------------------------------------------
    let mut labels = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    for _iter in 0..params.max_iters {
        // Assign.
        let mut new_inertia = 0.0;
        for (i, label) in labels.iter_mut().enumerate() {
            let v = ds.get(i);
            let mut best = (f64::INFINITY, 0usize);
            for c in 0..k {
                let d = norm.distance(v, &centroids[c * dim..(c + 1) * dim]);
                let d2 = d * d;
                if d2 < best.0 {
                    best = (d2, c);
                }
            }
            *label = best.1;
            new_inertia += best.0;
        }
        // Update.
        let mut sums = vec![0.0; k * dim];
        let mut counts = vec![0usize; k];
        for (i, &c) in labels.iter().enumerate() {
            counts[c] += 1;
            for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(ds.get(i)) {
                *s += v;
            }
        }
        let mut moved = 0.0f64;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the worst-fit point.
                let worst = (0..n)
                    .max_by(|&a, &b| {
                        let da = norm.distance(
                            ds.get(a),
                            &centroids[labels[a] * dim..labels[a] * dim + dim],
                        );
                        let db = norm.distance(
                            ds.get(b),
                            &centroids[labels[b] * dim..labels[b] * dim + dim],
                        );
                        da.total_cmp(&db)
                    })
                    .expect("n > 0");
                centroids[c * dim..(c + 1) * dim].copy_from_slice(ds.get(worst));
                moved = f64::INFINITY;
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            for (d, s) in (0..dim).zip(sums[c * dim..(c + 1) * dim].iter()) {
                let newv = s * inv;
                moved = moved.max((centroids[c * dim + d] - newv).abs());
                centroids[c * dim + d] = newv;
            }
        }
        let done = moved <= params.tol * (1.0 + inertia.abs().min(1e300))
            || (inertia.is_finite()
                && (inertia - new_inertia).abs() <= params.tol * inertia.max(1.0));
        inertia = new_inertia;
        if done {
            break;
        }
    }
    // Final assignment pass: the loop may exit right after a centroid
    // update, leaving labels one step stale; callers rely on "every item
    // is at its nearest centroid".
    let mut final_inertia = 0.0;
    for (i, label) in labels.iter_mut().enumerate() {
        let v = ds.get(i);
        let mut best = (f64::INFINITY, 0usize);
        for c in 0..k {
            let d = norm.distance(v, &centroids[c * dim..(c + 1) * dim]);
            let d2 = d * d;
            if d2 < best.0 {
                best = (d2, c);
            }
        }
        *label = best.1;
        final_inertia += best.0;
    }
    KmeansFit { labels, centroids, inertia: final_inertia }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut ds = Dataset::new(2);
        for i in 0..10 {
            ds.push(&[i as f64 * 0.01, 0.0]);
        }
        for i in 0..10 {
            ds.push(&[10.0 + i as f64 * 0.01, 5.0]);
        }
        ds
    }

    #[test]
    fn two_blobs_two_clusters() {
        let ds = blobs();
        let fit = kmeans_fit(&ds, &KmeansParams::with_k(2));
        // All of blob A shares a label, all of blob B the other.
        let a = fit.labels[0];
        assert!(fit.labels[..10].iter().all(|&l| l == a));
        let b = fit.labels[10];
        assert!(fit.labels[10..].iter().all(|&l| l == b));
        assert_ne!(a, b);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let ds = blobs();
        let one = kmeans_fit(&ds, &KmeansParams::with_k(1)).inertia;
        let two = kmeans_fit(&ds, &KmeansParams::with_k(2)).inertia;
        assert!(two < one);
    }

    #[test]
    fn detect_all_covers_everything() {
        let ds = blobs();
        let clustering = kmeans_detect_all(&ds, &KmeansParams::with_k(3));
        let total: usize = clustering.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let ds = Dataset::from_flat(1, vec![0.0, 5.0, 10.0]);
        let fit = kmeans_fit(&ds, &KmeansParams::with_k(3));
        assert!((fit.inertia).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = blobs();
        let a = kmeans_fit(&ds, &KmeansParams::with_k(2));
        let b = kmeans_fit(&ds, &KmeansParams::with_k(2));
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_k_above_n() {
        let ds = Dataset::from_flat(1, vec![0.0]);
        let _ = kmeans_fit(&ds, &KmeansParams::with_k(2));
    }
}
