//! Property-based tests of the baseline dynamics on random instances:
//! monotonicity/fixed-point laws that must hold regardless of geometry.

use alid_affinity::cost::CostModel;
use alid_affinity::dense::DenseAffinity;
use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::simplex;
use alid_affinity::vector::Dataset;
use alid_baselines::common::Graph;
use alid_baselines::iid::{iid_converge, iid_detect_all, IidParams};
use alid_baselines::kmeans::{kmeans_fit, KmeansParams};
use alid_baselines::rd::{rd_converge, RdParams};
use proptest::prelude::*;

fn points() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(0.0f64..6.0, 2 * 4..=2 * 10).prop_map(|flat| {
        let n = flat.len() / 2;
        Dataset::from_flat(2, flat[..2 * n].to_vec())
    })
}

fn graph(ds: &Dataset, k: f64) -> DenseAffinity {
    DenseAffinity::build(ds, &LaplacianKernel::l2(k), CostModel::shared())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RD's fundamental theorem: π never decreases along the trajectory.
    #[test]
    fn rd_is_monotone(ds in points(), k in 0.2f64..2.0) {
        let g = graph(&ds, k);
        let n = g.n();
        let mut x = vec![1.0 / n as f64; n];
        let mut last = Graph::quadratic_form(&g, &x);
        for _ in 0..50 {
            let p = RdParams { max_iters: 1, tol: 0.0, ..Default::default() };
            let (_, pi) = rd_converge(&g, &mut x, &p);
            prop_assert!(pi >= last - 1e-9, "π dropped: {pi} < {last}");
            last = pi;
            prop_assert!(simplex::is_on_simplex(&x, 1e-8));
        }
    }

    /// IID's converged state is immune against every vertex, and its x
    /// stays on the simplex.
    #[test]
    fn iid_reaches_immunity(ds in points(), k in 0.2f64..2.0) {
        let g = graph(&ds, k);
        let n = g.n();
        let alive = vec![true; n];
        let mut x = vec![1.0 / n as f64; n];
        let mut gvec = vec![0.0; n];
        let support: Vec<usize> = (0..n).collect();
        Graph::matvec_support(&g, &x, &support, &mut gvec);
        let mut col = vec![0.0; n];
        let out = iid_converge(&g, &alive, &mut x, &mut gvec, &mut col, &IidParams::default());
        prop_assume!(out.converged);
        // Verify against the full matrix (not the incremental gvec).
        let mut ax = vec![0.0; n];
        let sup: Vec<usize> = (0..n).filter(|&i| x[i] > 0.0).collect();
        Graph::matvec_support(&g, &x, &sup, &mut ax);
        let pi = Graph::quadratic_form(&g, &x);
        for (i, &a) in ax.iter().enumerate() {
            prop_assert!(a - pi <= 1e-6 * (1.0 + pi), "vertex {i} infective after convergence");
        }
        prop_assert!(simplex::is_on_simplex(&x, 1e-8));
    }

    /// Peeling partitions the items: every item in exactly one cluster.
    #[test]
    fn iid_peeling_partitions(ds in points(), k in 0.2f64..2.0) {
        let g = graph(&ds, k);
        let clustering = iid_detect_all(&g, &IidParams::default());
        let mut seen = vec![false; g.n()];
        for c in &clustering.clusters {
            for &m in &c.members {
                prop_assert!(!seen[m as usize], "item {m} peeled twice");
                seen[m as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s), "item never peeled");
    }

    /// Densities reported by peeling are the quadratic form of the
    /// reported weights.
    #[test]
    fn iid_densities_are_consistent(ds in points(), k in 0.2f64..2.0) {
        let g = graph(&ds, k);
        let clustering = iid_detect_all(&g, &IidParams::default());
        for c in &clustering.clusters {
            let mut x = vec![0.0; g.n()];
            for (&m, &w) in c.members.iter().zip(&c.weights) {
                x[m as usize] = w;
            }
            let pi = Graph::quadratic_form(&g, &x);
            prop_assert!(
                (pi - c.density).abs() < 1e-6 * (1.0 + pi),
                "density {} vs quadratic form {pi}",
                c.density
            );
        }
    }

    /// k-means: inertia of the returned fit never beats a random
    /// assignment's... the other way: the fit's inertia is minimal among
    /// single Lloyd descents we can cheaply generate — weaker check:
    /// every item is assigned to its *nearest* returned centroid.
    #[test]
    fn kmeans_assignments_are_nearest_centroid(ds in points(), k in 1usize..4) {
        let k = k.min(ds.len());
        let fit = kmeans_fit(&ds, &KmeansParams::with_k(k));
        let dim = ds.dim();
        for i in 0..ds.len() {
            let v = ds.get(i);
            let d = |c: usize| -> f64 {
                v.iter()
                    .zip(&fit.centroids[c * dim..(c + 1) * dim])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum()
            };
            let assigned = d(fit.labels[i]);
            for c in 0..k {
                prop_assert!(assigned <= d(c) + 1e-9, "item {i} not at nearest centroid");
            }
        }
    }
}
