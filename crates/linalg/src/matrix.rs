//! A plain row-major dense matrix with the handful of operations the
//! spectral baselines need. Not a general-purpose BLAS: sizes here are
//! `n x K` embeddings and landmark blocks of a few hundred rows.

use alid_exec::{ExecPolicy, SharedSlice, TuneState};

/// Chunk autotuner for the parallel row fan-out of
/// [`Mat::matmul_with`] — one handle for this call site. Row cost
/// scales with the inner dimension, which the timing feedback picks up
/// without the caller passing shape hints. Public for harness
/// telemetry.
pub static MATMUL_TUNE: TuneState = TuneState::new();

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` out.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Sets column `j` from a slice.
    ///
    /// # Panics
    /// Panics if `v.len() != rows`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self[(i, j)] = x;
        }
    }

    /// The underlying buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// `self * other`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            Self::accumulate_row(arow, other, orow);
        }
        out
    }

    /// `self * other` with output rows fanned out over the exec layer.
    /// Row `i` is accumulated in the identical `k`-then-`j` order by
    /// exactly one worker, so every policy produces the byte-identical
    /// product of [`Self::matmul`] (the Nyström spectral baseline's
    /// parity depends on this).
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul_with(&self, other: &Mat, exec: ExecPolicy) -> Mat {
        if exec.is_sequential() {
            return self.matmul(other);
        }
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        alid_exec::tune::export_tune("matmul", &MATMUL_TUNE);
        let mut out = Mat::zeros(self.rows, other.cols);
        let cols = other.cols;
        {
            let shared = SharedSlice::new(&mut out.data);
            exec.for_each_index_tuned_with(
                &MATMUL_TUNE,
                self.rows,
                || vec![0.0f64; cols],
                |orow, i| {
                    orow.fill(0.0);
                    Self::accumulate_row(self.row(i), other, orow);
                    for (j, &v) in orow.iter().enumerate() {
                        // SAFETY: row i's slots are written only by the
                        // worker that owns index i.
                        unsafe { shared.write(i * cols + j, v) };
                    }
                },
            );
        }
        out
    }

    /// One output row of a matrix product: `orow += arow * other`,
    /// iterating `k` ascending then `j` ascending — the accumulation
    /// order both [`Self::matmul`] and [`Self::matmul_with`] share.
    #[inline]
    fn accumulate_row(arow: &[f64], other: &Mat, orow: &mut [f64]) {
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = other.row(k);
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }

    /// `out = self * x` for a vector.
    ///
    /// # Panics
    /// Panics in debug builds on length mismatches.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (a, &xv) in self.row(i).iter().zip(x) {
                acc += a * xv;
            }
            *o = acc;
        }
    }

    /// Maximum absolute off-diagonal entry (Jacobi convergence check).
    pub fn max_offdiag(&self) -> f64 {
        let mut m: f64 = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// Frobenius norm of `self - other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn frobenius_distance(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eye_times_anything_is_identity_map() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Mat::eye(2);
        assert_eq!(i.matmul(&a), a);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_with_is_byte_identical_across_policies() {
        let n = 23;
        let a =
            Mat::from_vec(n, n, (0..n * n).map(|v| ((v as f64) * 0.37).sin()).collect::<Vec<_>>());
        let b =
            Mat::from_vec(n, n, (0..n * n).map(|v| ((v as f64) * 0.73).cos()).collect::<Vec<_>>());
        let serial = a.matmul(&b);
        for workers in [1usize, 2, 3, 8] {
            let par = a.matmul_with(&b, ExecPolicy::workers(workers));
            let sb: Vec<u64> = serial.as_slice().iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u64> = par.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, pb, "{workers} workers diverged");
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], a[(1, 2)]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_vec(2, 2, vec![1.0, -1.0, 2.0, 0.5]);
        let x = vec![3.0, 4.0];
        let mut out = vec![0.0; 2];
        a.matvec(&x, &mut out);
        assert_eq!(out, vec![-1.0, 8.0]);
    }

    #[test]
    fn column_get_set_roundtrip() {
        let mut a = Mat::zeros(3, 2);
        a.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(a.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(a.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn max_offdiag_ignores_diagonal() {
        let a = Mat::from_vec(2, 2, vec![9.0, 0.5, -0.7, 9.0]);
        assert_eq!(a.max_offdiag(), 0.7);
    }

    #[test]
    fn frobenius_distance_zero_iff_equal() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.frobenius_distance(&a), 0.0);
        let mut b = a.clone();
        b[(0, 0)] += 3.0;
        b[(1, 1)] -= 4.0;
        assert!((b.frobenius_distance(&a) - 5.0).abs() < 1e-12);
    }
}
