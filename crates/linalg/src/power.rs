//! Orthogonal (simultaneous / block power) iteration for the top-K
//! eigenpairs of a large symmetric operator.
//!
//! SC-FL needs the K leading eigenvectors of the normalised affinity
//! `D^{-1/2} A D^{-1/2}` where `n` is the data-set size; materialising a
//! dense eigensolver there would dwarf the clustering itself. This
//! routine only needs the operator's mat-vec, converging linearly at
//! rate `|lambda_{K+1} / lambda_K|`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Mat;

/// Computes the top-`k` eigenpairs of a symmetric operator given through
/// its mat-vec closure.
///
/// Returns eigenvalues (descending by magnitude of Rayleigh quotient)
/// and an `n x k` matrix of orthonormal eigenvector columns. Stops when
/// the subspace rotation between iterations drops below `tol` or after
/// `max_iters`.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn simultaneous_iteration(
    matvec: impl Fn(&[f64], &mut [f64]),
    n: usize,
    k: usize,
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> (Vec<f64>, Mat) {
    assert!(k >= 1, "need at least one eigenpair");
    assert!(k <= n, "cannot extract {k} eigenpairs from an order-{n} operator");
    let mut rng = StdRng::seed_from_u64(seed);
    // Column-major basis: q[j] is the j-th basis vector.
    let mut q: Vec<Vec<f64>> =
        (0..k).map(|_| (0..n).map(|_| rng.gen::<f64>() - 0.5).collect()).collect();
    orthonormalize(&mut q);
    let mut z: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
    let mut prev_overlap = 0.0f64;
    for _iter in 0..max_iters {
        for (zj, qj) in z.iter_mut().zip(&q) {
            matvec(qj, zj);
        }
        std::mem::swap(&mut q, &mut z);
        orthonormalize(&mut q);
        // Subspace change: 1 - mean |<q_j, z_j>| (z holds the previous
        // basis after the swap).
        let mut overlap = 0.0;
        for (qj, zj) in q.iter().zip(&z) {
            overlap += dot(qj, zj).abs();
        }
        overlap /= k as f64;
        if (overlap - prev_overlap).abs() < tol && overlap > 1.0 - 1e-6 {
            break;
        }
        prev_overlap = overlap;
    }
    // Rayleigh quotients as the eigenvalue estimates.
    let mut values: Vec<f64> = q
        .iter()
        .map(|qj| {
            let mut aq = vec![0.0; n];
            matvec(qj, &mut aq);
            dot(qj, &aq)
        })
        .collect();
    // Sort by descending eigenvalue, carrying the vectors along.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
    values = order.iter().map(|&i| values[i]).collect();
    let mut vectors = Mat::zeros(n, k);
    for (newj, &oldj) in order.iter().enumerate() {
        vectors.set_col(newj, &q[oldj]);
    }
    (values, vectors)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Modified Gram–Schmidt, re-randomising columns that collapse to zero.
fn orthonormalize(q: &mut [Vec<f64>]) {
    let k = q.len();
    for j in 0..k {
        for i in 0..j {
            // Split at j so we can borrow q[i] (in `head`) while mutating q[j].
            let (head, tail) = q.split_at_mut(j);
            let proj = dot(&tail[0], &head[i]);
            for (t, &h) in tail[0].iter_mut().zip(&head[i]) {
                *t -= proj * h;
            }
        }
        let norm = dot(&q[j], &q[j]).sqrt();
        if norm < 1e-14 {
            // Degenerate column: replace with a deterministic perturbation
            // and renormalise (rare; happens if the start block is rank
            // deficient).
            for (p, v) in q[j].iter_mut().enumerate() {
                *v = ((p + 7 * j + 1) as f64).sin();
            }
            let n2 = dot(&q[j], &q[j]).sqrt();
            for v in q[j].iter_mut() {
                *v /= n2;
            }
        } else {
            for v in q[j].iter_mut() {
                *v /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Operator for a fixed symmetric matrix.
    fn op(m: Mat) -> impl Fn(&[f64], &mut [f64]) {
        move |x, out| m.matvec(x, out)
    }

    fn diag(values: &[f64]) -> Mat {
        let n = values.len();
        let mut m = Mat::zeros(n, n);
        for (i, &v) in values.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    #[test]
    fn recovers_diagonal_spectrum() {
        let m = diag(&[5.0, 4.0, 1.0, 0.5]);
        let (vals, vecs) = simultaneous_iteration(op(m), 4, 2, 500, 1e-12, 3);
        assert!((vals[0] - 5.0).abs() < 1e-6);
        assert!((vals[1] - 4.0).abs() < 1e-6);
        // Leading eigenvector is e_0 (up to sign).
        assert!(vecs[(0, 0)].abs() > 0.999);
    }

    #[test]
    fn agrees_with_jacobi_on_dense_symmetric() {
        use crate::eigen::jacobi_eigh;
        let n = 8;
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                m[(i, j)] = v;
            }
        }
        let exact = jacobi_eigh(&m, 1e-12, 100);
        let (vals, _) = simultaneous_iteration(op(m), n, 3, 2000, 1e-13, 9);
        for (t, &v) in vals.iter().enumerate().take(3) {
            assert!(
                (v - exact.values[t]).abs() < 1e-6,
                "eigenvalue {t}: power {} vs jacobi {}",
                vals[t],
                exact.values[t]
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = diag(&[3.0, 2.5, 2.0, 1.0, 0.1]);
        let (_, vecs) = simultaneous_iteration(op(m), 5, 3, 500, 1e-12, 1);
        for a in 0..3 {
            for b in 0..3 {
                let d = dot(&vecs.col(a), &vecs.col(b));
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-8, "col {a} . col {b} = {d}");
            }
        }
    }

    #[test]
    fn handles_k_equals_n() {
        let m = diag(&[2.0, 1.0]);
        let (vals, _) = simultaneous_iteration(op(m), 2, 2, 500, 1e-12, 5);
        assert!((vals[0] - 2.0).abs() < 1e-8);
        assert!((vals[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "cannot extract")]
    fn rejects_k_above_n() {
        let m = diag(&[1.0]);
        let _ = simultaneous_iteration(op(m), 1, 2, 10, 1e-6, 0);
    }
}
