//! Cyclic Jacobi eigensolver for real symmetric matrices.
//!
//! Used by SC-NYS for the landmark block `W` and the one-shot Nyström
//! matrix `S` (both `m x m` with `m` a few hundred), where exactness and
//! robustness matter more than asymptotics.

use crate::matrix::Mat;

/// Eigenvalues (descending) and the matching eigenvectors (columns of
/// `vectors`).
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// `n x n` matrix whose `j`-th column is the eigenvector of
    /// `values[j]`; orthonormal.
    pub vectors: Mat,
}

impl EigenDecomposition {
    /// Reconstructs `V diag(f(lambda)) V^T` — the standard way to apply a
    /// scalar function to the matrix (used for `W^{-1/2}` in Nyström).
    pub fn apply_function(&self, f: impl Fn(f64) -> f64) -> Mat {
        let n = self.values.len();
        let mut scaled = Mat::zeros(n, n);
        // scaled = V * diag(f(lambda))
        for i in 0..n {
            for j in 0..n {
                scaled[(i, j)] = self.vectors[(i, j)] * f(self.values[j]);
            }
        }
        scaled.matmul(&self.vectors.transpose())
    }
}

/// Diagonalises the symmetric matrix `a` by cyclic Jacobi rotations.
///
/// Stops when the largest off-diagonal magnitude falls below `tol`
/// (absolute) or after `max_sweeps` full sweeps. For affinity-derived
/// matrices (entries in `[0, 1]`) a tolerance of `1e-10` converges in a
/// handful of sweeps.
///
/// # Panics
/// Panics if `a` is not square or not symmetric (to `1e-8`).
pub fn jacobi_eigh(a: &Mat, tol: f64, max_sweeps: usize) -> EigenDecomposition {
    let n = a.rows();
    assert_eq!(n, a.cols(), "matrix must be square");
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (a[(i, j)] - a[(j, i)]).abs() < 1e-8,
                "matrix must be symmetric (a[{i}][{j}] != a[{j}][{i}])"
            );
        }
    }
    let mut m = a.clone();
    let mut v = Mat::eye(n);
    for _sweep in 0..max_sweeps {
        if m.max_offdiag() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * 1e-3 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Rotation angle: tan(2θ) = 2 a_pq / (a_pp - a_qq).
                let theta = 0.5 * (2.0 * apq).atan2(app - aqq);
                let c = theta.cos();
                let s = theta.sin();
                // Update rows/columns p and q of m (m := Jᵀ m J).
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp + s * mkq;
                    m[(k, q)] = -s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk + s * mqk;
                    m[(q, k)] = -s * mpk + c * mqk;
                }
                // Accumulate the rotation into v.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp + s * vkq;
                    v[(k, q)] = -s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&x, &y| diag[y].total_cmp(&diag[x]));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Mat::zeros(n, n);
    for (newj, &oldj) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, newj)] = v[(i, oldj)];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: usize, f: impl Fn(usize, usize) -> f64) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = if i <= j { f(i, j) } else { f(j, i) };
            }
        }
        m
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let m = sym(3, |i, j| if i == j { (3 - i) as f64 } else { 0.0 });
        let e = jacobi_eigh(&m, 1e-12, 30);
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = sym(2, |i, j| if i == j { 2.0 } else { 1.0 });
        let e = jacobi_eigh(&m, 1e-12, 30);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let m = sym(5, |i, j| 1.0 / (1.0 + i as f64 + j as f64)); // Hilbert-like
        let e = jacobi_eigh(&m, 1e-12, 50);
        // V Λ Vᵀ == M
        let recon = e.apply_function(|l| l);
        assert!(m.frobenius_distance(&recon) < 1e-8);
        // Vᵀ V == I
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.frobenius_distance(&Mat::eye(5)) < 1e-8);
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let m = sym(4, |i, j| ((i * j) as f64).sin().abs() + if i == j { 2.0 } else { 0.0 });
        let e = jacobi_eigh(&m, 1e-12, 50);
        for j in 0..4 {
            let v = e.vectors.col(j);
            let mut mv = vec![0.0; 4];
            m.matvec(&v, &mut mv);
            for i in 0..4 {
                assert!((mv[i] - e.values[j] * v[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn inverse_square_root_via_apply_function() {
        let m = sym(3, |i, j| if i == j { (i + 1) as f64 * 4.0 } else { 0.5 });
        let e = jacobi_eigh(&m, 1e-12, 50);
        let inv_sqrt = e.apply_function(|l| 1.0 / l.sqrt());
        // (M^{-1/2})² M should be the identity.
        let should_be_eye = inv_sqrt.matmul(&inv_sqrt).matmul(&m);
        assert!(should_be_eye.frobenius_distance(&Mat::eye(3)) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_input() {
        let m = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let _ = jacobi_eigh(&m, 1e-10, 10);
    }

    #[test]
    fn trace_is_preserved() {
        let m = sym(6, |i, j| ((i + 2 * j) as f64 * 0.37).cos());
        let e = jacobi_eigh(&m, 1e-12, 60);
        let trace: f64 = (0..6).map(|i| m[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }
}
