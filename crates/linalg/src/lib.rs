//! Small dense linear-algebra substrate for the spectral-clustering
//! baselines of the ALID paper's noise-resistance study (Appendix C,
//! Fig. 11).
//!
//! SC-FL (Ng, Jordan & Weiss 2002) needs the top-K eigenvectors of the
//! normalised affinity matrix; SC-NYS (Fowlkes et al. 2004) additionally
//! needs full eigendecompositions and inverse square roots of small
//! landmark matrices. Two solvers cover both:
//!
//! * [`eigen::jacobi_eigh`] — a cyclic Jacobi eigensolver for symmetric
//!   matrices, exact and robust, `O(n^3)` per sweep, used for the
//!   Nyström landmark blocks (a few hundred rows);
//! * [`power::simultaneous_iteration`] — orthogonal (block power)
//!   iteration retrieving the top-K eigenpairs of a large symmetric
//!   operator given only its mat-vec, used for the full `n x n`
//!   normalised affinity.

#![warn(missing_docs)]
pub mod eigen;
pub mod matrix;
pub mod power;

pub use eigen::{jacobi_eigh, EigenDecomposition};
pub use matrix::Mat;
pub use power::simultaneous_iteration;
